"""Ablation — the two-layer lookup guarantee vs naive d-probe lookup.

The design alternative the paper rejects (Section V-A opening): keep
``d`` subtables but let every key live in *any* of them, so FIND must
probe up to ``d`` buckets.  The two-layer scheme pins each key to a
2-subtable pair, capping FIND at two probes for every ``d``.

We measure actual bucket reads per FIND for both schemes at d = 2..8.
Expected shape: naive probing grows roughly linearly with d (misses scan
all d buckets); two-layer stays <= 2 flat.
"""

import numpy as np

from repro.bench import format_table, shape_check
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable, encode_keys

from benchmarks.common import once

TABLE_COUNTS = (2, 3, 4, 6, 8)
NUM_KEYS = 8_000
NUM_QUERIES = 4_000


def _naive_probe_reads(table: DyCuckooTable, queries: np.ndarray) -> int:
    """Bucket reads for a FIND that may probe all d subtables.

    Simulates the rejected design over the same storage: probe
    subtables in order until the key is found (misses probe all d).
    """
    codes = encode_keys(queries)
    reads = 0
    found = np.zeros(len(codes), dtype=bool)
    for t in range(table.num_tables):
        pending = np.flatnonzero(~found)
        if len(pending) == 0:
            break
        st = table.subtables[t]
        buckets = table.table_hashes[t].bucket(codes[pending], st.n_buckets)
        reads += len(pending)
        hit = st.contains(buckets, codes[pending])
        found[pending[hit]] = True
    return reads


def _run_all():
    rng = np.random.default_rng(17)
    keys = np.unique(rng.integers(1, 1 << 62, int(NUM_KEYS * 1.3)
                                  ).astype(np.uint64))[:NUM_KEYS]
    hits = rng.choice(keys, NUM_QUERIES // 2)
    misses = rng.integers(1 << 62, (1 << 63) - 1,
                          NUM_QUERIES - len(hits)).astype(np.uint64)
    queries = np.concatenate([hits, misses])
    rng.shuffle(queries)

    rows = []
    for d in TABLE_COUNTS:
        table = DyCuckooTable(DyCuckooConfig(
            num_tables=d, bucket_capacity=16, initial_buckets=64))
        table.insert(keys, keys)
        before = table.stats.snapshot()
        table.find(queries)
        two_layer_reads = table.stats.delta(before)["bucket_reads"]
        naive_reads = _naive_probe_reads(table, queries)
        rows.append((d, two_layer_reads / len(queries),
                     naive_reads / len(queries)))
    return rows


def test_ablation_two_layer_lookup(benchmark):
    rows = once(benchmark, _run_all)

    print()
    print(format_table(
        ["d", "two-layer reads/find", "naive d-probe reads/find"],
        rows, title="Ablation: two-layer vs naive d-probe FIND",
        float_fmt="{:.2f}"))

    two_layer = [row[1] for row in rows]
    naive = [row[2] for row in rows]
    checks = [
        ("two-layer never exceeds 2 reads per find",
         max(two_layer) <= 2.0 + 1e-9),
        ("two-layer flat in d",
         max(two_layer) - min(two_layer) < 0.1),
        ("naive probing grows with d",
         naive[-1] > naive[0] * 1.5),
        (f"at d=8 two-layer saves {naive[-1] / two_layer[-1]:.1f}x reads",
         naive[-1] > 2 * two_layer[-1]),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
