"""Figure 15 — dynamic throughput while varying the upper bound beta.

The paper's finding: beta barely moves the needle for either approach —
a higher beta slows inserts (denser tables) but triggers fewer resizes,
and the two effects cancel.  DyCuckoo keeps its lead throughout.
"""

from repro.bench import format_table, run_dynamic, shape_check
from repro.workloads import ALL_DATASETS, DynamicWorkload

from benchmarks.common import (BATCH_SIZE, COST_MODEL, SCALE,
                               make_dycuckoo_dynamic, make_megakv_dynamic,
                               once)

BETAS = (0.70, 0.80, 0.90)


def _run_all():
    results = {}
    for spec in ALL_DATASETS:
        keys, values = spec.generate(scale=SCALE, seed=15)
        for beta in BETAS:
            for factory in (make_dycuckoo_dynamic, make_megakv_dynamic):
                table = factory(beta=beta)
                workload = DynamicWorkload(keys, values,
                                           batch_size=BATCH_SIZE, seed=7)
                run = run_dynamic(table, workload, cost_model=COST_MODEL)
                results[(spec.name, beta, table.NAME)] = run.mops
    return results


def test_fig15_vary_beta(benchmark):
    results = once(benchmark, _run_all)
    datasets = [spec.name for spec in ALL_DATASETS]

    for beta in BETAS:
        rows = [[name] + [results[(ds, beta, name)] for ds in datasets]
                for name in ("DyCuckoo", "MegaKV")]
        print()
        print(format_table(["approach"] + datasets, rows,
                           title=f"Figure 15: dynamic Mops at beta = "
                                 f"{beta:.0%}"))

    checks = []
    for ds in datasets:
        dy = [results[(ds, beta, "DyCuckoo")] for beta in BETAS]
        mega = [results[(ds, beta, "MegaKV")] for beta in BETAS]
        checks.append((f"{ds}: DyCuckoo stable across beta",
                       max(dy) / min(dy) < 1.20))
        checks.append((f"{ds}: MegaKV stable across beta",
                       max(mega) / min(mega) < 1.35))
        checks.append((f"{ds}: DyCuckoo leads at every beta",
                       all(d > m * 0.98 for d, m in zip(dy, mega))))

    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
