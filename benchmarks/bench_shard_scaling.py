"""Shard scaling — simulated speedup of the sharded front-end.

Runs the same mixed workload (insert, find, delete) through
:class:`~repro.shard.ShardedDyCuckoo` at S in {1, 2, 4, 8} and prices
each run two ways with :func:`~repro.shard.simulate_shard_speedup`:
serially on the whole simulated GTX 1080, and in parallel with one SM
group per shard (the front-end's execution model).

Expected shapes: S=1 is exactly the serial schedule (speedup 1.0);
larger S parallelizes round-synchronization, compute, and lock
contention while the memory-bound fraction stays tied to the shared
DRAM bus, so speedup grows with S but stays well short of linear.  All
shard counts remain differentially equal to a single reference table.

With ``REPRO_BENCH_JSON`` set, results are also dumped as
``BENCH_shard.json`` for regression tracking.
"""

import numpy as np

from repro.bench import format_table, shape_check
from repro.bench.artifacts import maybe_dump
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.shard import ShardedDyCuckoo, simulate_shard_speedup

from benchmarks.common import BATCH_SIZE, once

#: Shard counts swept (powers of two; 8 groups on 20 SMs still splits).
SHARD_COUNTS = (1, 2, 4, 8)

#: Distinct keys driven through each table (paper's 1e7, scaled).
NUM_KEYS = 10_000

#: Subtables per shard (the paper's default geometry).
NUM_TABLES = 4


def _shard_config() -> DyCuckooConfig:
    """Per-shard geometry: start small, grow with the workload."""
    return DyCuckooConfig(num_tables=NUM_TABLES, bucket_capacity=32,
                          initial_buckets=8, min_buckets=8)


def _workload(rng: np.random.Generator):
    """One deterministic mixed stream shared by every shard count."""
    keys = rng.choice(np.arange(1, NUM_KEYS * 20, dtype=np.uint64),
                      size=NUM_KEYS, replace=False)
    values = rng.integers(1, 1 << 40, size=NUM_KEYS, dtype=np.uint64)
    return keys, values


def _drive(table, keys: np.ndarray, values: np.ndarray) -> int:
    """Insert everything, find everything, delete half; return op count."""
    for start in range(0, len(keys), BATCH_SIZE):
        segment = slice(start, start + BATCH_SIZE)
        table.insert(keys[segment], values[segment])
    _found_values, found = table.find(keys)
    assert bool(found.all()), "driven keys must all be findable"
    removed = table.delete(keys[: len(keys) // 2])
    assert bool(removed.all()), "driven deletes must all hit"
    return len(keys) * 2 + len(keys) // 2


def _run_one(num_shards: int, keys: np.ndarray, values: np.ndarray,
             reference: dict) -> dict:
    table = ShardedDyCuckoo(num_shards=num_shards, config=_shard_config())
    before = [stats.snapshot() for stats in table.shard_stats()]
    total_ops = _drive(table, keys, values)
    table.validate()
    assert table.to_dict() == reference, (
        f"S={num_shards} diverged from the single-table reference")

    # Every op routes by key, so per-shard op counts follow the routing
    # of the driven key stream (inserts + finds + deletes).
    op_keys = np.concatenate([keys, keys, keys[: len(keys) // 2]])
    shard_ops = np.bincount(table.shard_ids(op_keys),
                            minlength=num_shards).tolist()
    deltas = [stats.delta(snap)
              for stats, snap in zip(table.shard_stats(), before)]
    report = simulate_shard_speedup(deltas, shard_ops,
                                    num_tables=NUM_TABLES)
    assert report.num_ops == total_ops
    return report.to_dict()


def _run_all() -> dict:
    rng = np.random.default_rng(1080)
    keys, values = _workload(rng)

    reference_table = DyCuckooTable(_shard_config())
    _drive(reference_table, keys, values)
    reference = reference_table.to_dict()

    return {num_shards: _run_one(num_shards, keys, values, reference)
            for num_shards in SHARD_COUNTS}


def test_shard_scaling(benchmark):
    results = once(benchmark, _run_all)
    maybe_dump("BENCH_shard", results)

    print()
    print(format_table(
        ["S", "serial Mops", "parallel Mops", "speedup", "lock fraction"],
        [[s, r["serial_mops"], r["parallel_mops"], r["speedup"],
          r["resize_lock_fraction"]] for s, r in results.items()],
        title="Shard scaling: serial device vs one SM group per shard"))

    speedups = {s: results[s]["speedup"] for s in SHARD_COUNTS}
    checks = [
        ("S=1 is the serial schedule (speedup == 1.0)",
         abs(speedups[1] - 1.0) < 1e-9),
        (f"sharding helps at S=4 ({speedups[4]:.2f}x > 1.2x)",
         speedups[4] > 1.2),
        (f"speedup grows from S=1 to S=4 "
         f"({speedups[1]:.2f} < {speedups[2]:.2f} < {speedups[4]:.2f})",
         speedups[1] < speedups[2] < speedups[4]),
        ("sub-linear: the memory-bound fraction shares the DRAM bus",
         all(speedups[s] < s for s in SHARD_COUNTS if s > 1)),
        ("a resize locks 1/(S*d) of the data",
         all(results[s]["resize_lock_fraction"] == 1.0 / (s * NUM_TABLES)
             for s in SHARD_COUNTS)),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
