"""Shard scaling — simulated speedup of the sharded front-end.

Runs the same mixed workload (insert, find, delete) through
:class:`~repro.shard.ShardedDyCuckoo` at S in {1, 2, 4, 8} and prices
each run two ways with :func:`~repro.shard.simulate_shard_speedup`:
serially on the whole simulated GTX 1080, and in parallel with one SM
group per shard (the front-end's execution model).

Expected shapes: S=1 is exactly the serial schedule (speedup 1.0);
larger S parallelizes round-synchronization, compute, and lock
contention while the memory-bound fraction stays tied to the shared
DRAM bus, so speedup grows with S but stays well short of linear.  All
shard counts remain differentially equal to a single reference table.

A final ``executor`` leg runs one cohort mixed batch through the
*process-pool* shard executor (``parallel_workers``) and through the
serial path, asserting the executor's determinism contract —
bit-identical results, runs, merged kernel counters, and final
storage.  Wall-clock for both paths is reported (keys named
``*_seconds`` / ``*speedup*`` so the strict perf gate skips them: the
win depends on host core count, which is 1 on some CI shapes).

With ``REPRO_BENCH_JSON`` set, results are also dumped as
``BENCH_shard.json`` for regression tracking.
"""

import time

import numpy as np

from repro.bench import format_table, shape_check
from repro.bench.artifacts import maybe_dump
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.shard import ShardedDyCuckoo, simulate_shard_speedup

from benchmarks.common import BATCH_SIZE, once

#: Shard counts swept (powers of two; 8 groups on 20 SMs still splits).
SHARD_COUNTS = (1, 2, 4, 8)

#: Distinct keys driven through each table (paper's 1e7, scaled).
NUM_KEYS = 10_000

#: Subtables per shard (the paper's default geometry).
NUM_TABLES = 4


def _shard_config() -> DyCuckooConfig:
    """Per-shard geometry: start small, grow with the workload."""
    return DyCuckooConfig(num_tables=NUM_TABLES, bucket_capacity=32,
                          initial_buckets=8, min_buckets=8)


def _workload(rng: np.random.Generator):
    """One deterministic mixed stream shared by every shard count."""
    keys = rng.choice(np.arange(1, NUM_KEYS * 20, dtype=np.uint64),
                      size=NUM_KEYS, replace=False)
    values = rng.integers(1, 1 << 40, size=NUM_KEYS, dtype=np.uint64)
    return keys, values


def _drive(table, keys: np.ndarray, values: np.ndarray) -> int:
    """Insert everything, find everything, delete half; return op count."""
    for start in range(0, len(keys), BATCH_SIZE):
        segment = slice(start, start + BATCH_SIZE)
        table.insert(keys[segment], values[segment])
    _found_values, found = table.find(keys)
    assert bool(found.all()), "driven keys must all be findable"
    removed = table.delete(keys[: len(keys) // 2])
    assert bool(removed.all()), "driven deletes must all hit"
    return len(keys) * 2 + len(keys) // 2


def _run_one(num_shards: int, keys: np.ndarray, values: np.ndarray,
             reference: dict) -> dict:
    table = ShardedDyCuckoo(num_shards=num_shards, config=_shard_config())
    before = [stats.snapshot() for stats in table.shard_stats()]
    total_ops = _drive(table, keys, values)
    table.validate()
    assert table.to_dict() == reference, (
        f"S={num_shards} diverged from the single-table reference")

    # Every op routes by key, so per-shard op counts follow the routing
    # of the driven key stream (inserts + finds + deletes).
    op_keys = np.concatenate([keys, keys, keys[: len(keys) // 2]])
    shard_ops = np.bincount(table.shard_ids(op_keys),
                            minlength=num_shards).tolist()
    deltas = [stats.delta(snap)
              for stats, snap in zip(table.shard_stats(), before)]
    report = simulate_shard_speedup(deltas, shard_ops,
                                    num_tables=NUM_TABLES)
    assert report.num_ops == total_ops
    return report.to_dict()


#: Executor leg geometry: low fill keeps the cohort kernels fast, so
#: the leg stays cheap in the CI bench-smoke job.
EXEC_OPS = 40_000
EXEC_SHARDS = 4
EXEC_WORKERS = 4


def _run_executor_leg() -> dict:
    """Serial vs process-pool execute_mixed: the determinism contract."""
    config = DyCuckooConfig(num_tables=NUM_TABLES, bucket_capacity=32,
                            initial_buckets=32, min_buckets=8)
    rng = np.random.default_rng(77)
    ops = np.empty(EXEC_OPS, dtype=np.int64)
    pos = 0
    while pos < EXEC_OPS:  # long homogeneous runs, the kernels' regime
        kind = rng.choice(np.array([0, 1, 2], dtype=np.int64),
                          p=[0.5, 0.3, 0.2])
        length = min(int(rng.integers(2_000, 6_000)), EXEC_OPS - pos)
        ops[pos:pos + length] = kind
        pos += length
    keys = rng.integers(1, 2000, size=EXEC_OPS).astype(np.uint64)
    values = rng.integers(1, 1 << 40, size=EXEC_OPS, dtype=np.uint64)

    serial = ShardedDyCuckoo(num_shards=EXEC_SHARDS, config=config)
    start = time.perf_counter()
    rs = serial.execute_mixed(ops, keys, values, engine="cohort")
    serial_s = time.perf_counter() - start

    with ShardedDyCuckoo(num_shards=EXEC_SHARDS, config=config,
                         parallel_workers=EXEC_WORKERS) as parallel:
        start = time.perf_counter()
        rp = parallel.execute_mixed(ops, keys, values, engine="cohort")
        parallel_s = time.perf_counter() - start
        identical = (np.array_equal(rs.values, rp.values)
                     and np.array_equal(rs.found, rp.found)
                     and np.array_equal(rs.removed, rp.removed)
                     and rs.runs == rp.runs
                     and rs.kernel == rp.kernel
                     and serial.to_dict() == parallel.to_dict()
                     and all(a._victim_counter == b._victim_counter
                             for a, b in zip(serial.shards,
                                             parallel.shards)))
    return {
        "ops": EXEC_OPS,
        "workers": EXEC_WORKERS,
        "num_shards": EXEC_SHARDS,
        "runs": rs.runs,
        "identical": identical,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "wall_speedup": serial_s / parallel_s,
    }


def _run_all() -> dict:
    rng = np.random.default_rng(1080)
    keys, values = _workload(rng)

    reference_table = DyCuckooTable(_shard_config())
    _drive(reference_table, keys, values)
    reference = reference_table.to_dict()

    results = {num_shards: _run_one(num_shards, keys, values, reference)
               for num_shards in SHARD_COUNTS}
    results["executor"] = _run_executor_leg()
    return results


def test_shard_scaling(benchmark):
    results = once(benchmark, _run_all)
    maybe_dump("BENCH_shard", results)

    print()
    print(format_table(
        ["S", "serial Mops", "parallel Mops", "speedup", "lock fraction"],
        [[s, r["serial_mops"], r["parallel_mops"], r["speedup"],
          r["resize_lock_fraction"]]
         for s, r in results.items() if s != "executor"],
        title="Shard scaling: serial device vs one SM group per shard"))

    executor = results["executor"]
    print(f"\nprocess-pool executor ({executor['workers']} workers, "
          f"S={executor['num_shards']}, {executor['ops']:,} cohort ops): "
          f"serial {executor['serial_seconds']:.3f}s, "
          f"parallel {executor['parallel_seconds']:.3f}s "
          f"({executor['wall_speedup']:.2f}x wall)")

    speedups = {s: results[s]["speedup"] for s in SHARD_COUNTS}
    checks = [
        ("process-pool executor is bit-identical to serial",
         executor["identical"]),
        ("S=1 is the serial schedule (speedup == 1.0)",
         abs(speedups[1] - 1.0) < 1e-9),
        (f"sharding helps at S=4 ({speedups[4]:.2f}x > 1.2x)",
         speedups[4] > 1.2),
        (f"speedup grows from S=1 to S=4 "
         f"({speedups[1]:.2f} < {speedups[2]:.2f} < {speedups[4]:.2f})",
         speedups[1] < speedups[2] < speedups[4]),
        ("sub-linear: the memory-bound fraction shares the DRAM bus",
         all(speedups[s] < s for s in SHARD_COUNTS if s > 1)),
        ("a resize locks 1/(S*d) of the data",
         all(results[s]["resize_lock_fraction"] == 1.0 / (s * NUM_TABLES)
             for s in SHARD_COUNTS)),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
