"""Figure 14 — dynamic throughput while varying the lower bound alpha.

Only DyCuckoo and MegaKV participate (SlabHash cannot control its filled
factor at all).  Expected shapes:

* DyCuckoo's throughput is essentially flat in alpha (downsizing touches
  one subtable at a time);
* MegaKV suffers as alpha rises — more threshold crossings mean more
  whole-table rehashes — so DyCuckoo's margin is at least as large at
  alpha = 40% as at 20%.
"""

from repro.bench import format_table, run_dynamic, shape_check
from repro.workloads import ALL_DATASETS, DynamicWorkload

from benchmarks.common import (BATCH_SIZE, COST_MODEL, SCALE,
                               make_dycuckoo_dynamic, make_megakv_dynamic,
                               once)

ALPHAS = (0.20, 0.30, 0.40)


def _run_all():
    results = {}
    for spec in ALL_DATASETS:
        keys, values = spec.generate(scale=SCALE, seed=14)
        for alpha in ALPHAS:
            for factory, kwargs in (
                    (make_dycuckoo_dynamic, {"alpha": alpha}),
                    (make_megakv_dynamic, {"alpha": alpha})):
                table = factory(**kwargs)
                workload = DynamicWorkload(keys, values,
                                           batch_size=BATCH_SIZE, seed=6)
                run = run_dynamic(table, workload, cost_model=COST_MODEL)
                results[(spec.name, alpha, table.NAME)] = run.mops
    return results


def test_fig14_vary_alpha(benchmark):
    results = once(benchmark, _run_all)
    datasets = [spec.name for spec in ALL_DATASETS]

    for alpha in ALPHAS:
        rows = [[name] + [results[(ds, alpha, name)] for ds in datasets]
                for name in ("DyCuckoo", "MegaKV")]
        print()
        print(format_table(["approach"] + datasets, rows,
                           title=f"Figure 14: dynamic Mops at alpha = "
                                 f"{alpha:.0%}"))

    checks = []
    for ds in datasets:
        dy = [results[(ds, alpha, "DyCuckoo")] for alpha in ALPHAS]
        mega = [results[(ds, alpha, "MegaKV")] for alpha in ALPHAS]
        checks.append((f"{ds}: DyCuckoo roughly flat in alpha",
                       max(dy) / min(dy) < 1.15))
        checks.append((f"{ds}: DyCuckoo leads MegaKV at every alpha",
                       all(d > m * 0.98 for d, m in zip(dy, mega))))
        margin_low = dy[0] / mega[0]
        margin_high = dy[-1] / mega[-1]
        checks.append((f"{ds}: margin at alpha=40% >= margin at 20% "
                       f"({margin_low:.2f} -> {margin_high:.2f})",
                       margin_high >= margin_low * 0.95))

    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
