"""Ablation — voter coordination vs spin-locking (Section V-B).

Runs the lane-level insert kernels (near-literal Algorithm 1) on a
hot-key workload — the paper's retweet-counter scenario where celebrity
keys concentrate many inserts onto few buckets.  The voter variant
switches leaders after a failed lock; the spin variant hammers the same
lock.  Expected shape: the voter scheme suffers fewer lock conflicts
(and therefore less of Figure 5's atomic serialization cost).
"""


from repro.bench import format_table, shape_check
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.gpusim import GTX_1080
from repro.gpusim.atomics import effective_atomic_ns
from repro.kernels import run_spin_insert_kernel, run_voter_insert_kernel
from repro.workloads import hot_cold_keys

from benchmarks.common import once

SEEDS = range(6)
OPS_PER_RUN = 600


def _conflict_cost_ns(result) -> float:
    degree = 1.0 + result.lock_conflicts / max(1, result.lock_acquisitions)
    return (result.lock_conflicts
            * effective_atomic_ns(degree, GTX_1080, cas=True))


def _run_all():
    totals = {"voter": [0, 0, 0.0], "spin": [0, 0, 0.0]}
    for seed in SEEDS:
        keys = hot_cold_keys(OPS_PER_RUN, num_hot=12, hot_fraction=0.5,
                             seed=seed)
        for label, kernel in (("voter", run_voter_insert_kernel),
                              ("spin", run_spin_insert_kernel)):
            table = DyCuckooTable(DyCuckooConfig(
                initial_buckets=256, bucket_capacity=16, auto_resize=False))
            result = kernel(table, keys, keys)
            totals[label][0] += result.lock_conflicts
            totals[label][1] += result.rounds
            totals[label][2] += _conflict_cost_ns(result)
    return totals


def test_ablation_voter_vs_spin(benchmark):
    totals = once(benchmark, _run_all)

    rows = [[label, conflicts, rounds, cost / 1e3]
            for label, (conflicts, rounds, cost) in totals.items()]
    print()
    print(format_table(
        ["scheme", "lock conflicts", "device rounds", "conflict cost (us)"],
        rows, title="Ablation: voter coordination vs spin-lock insert "
                    f"(hot-key workload, {len(list(SEEDS))} seeds)"))

    voter_conflicts = totals["voter"][0]
    spin_conflicts = totals["spin"][0]
    checks = [
        (f"voter suffers no more lock conflicts than spinning "
         f"({voter_conflicts} vs {spin_conflicts})",
         voter_conflicts <= spin_conflicts),
        ("voter's modeled conflict cost is no higher",
         totals["voter"][2] <= totals["spin"][2] * 1.02),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
