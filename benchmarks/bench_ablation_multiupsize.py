"""Ablation — anticipatory upsizing (the paper's noted future work).

Section VI-D observes that DyCuckoo's filled factor sometimes "drops
sharply" because a single upsize is not enough and insertion failures
trigger another round immediately; the authors leave the fix as future
work.  Our extension (``anticipatory_upsize``) keeps doubling the
smallest subtable after an insert-failure until the projected filled
factor reaches the [alpha, beta] midpoint.

We drive both variants with failure-heavy insert bursts (tiny eviction
budget forces failure-triggered upsizes) and compare the upsize cascade
counts and the depth of the fill dips.
"""

import numpy as np

from repro.bench import format_table, shape_check
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable

from benchmarks.common import once

BURSTS = 30
BURST_SIZE = 2_000


def _run_variant(anticipatory: bool) -> dict:
    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=8, bucket_capacity=16,
        max_eviction_rounds=4,  # small budget: stress the failure path
        anticipatory_upsize=anticipatory))
    rng = np.random.default_rng(23)
    fills = []
    for _burst in range(BURSTS):
        keys = rng.integers(1, 1 << 62, BURST_SIZE).astype(np.uint64)
        table.insert(keys, keys)
        fills.append(table.load_factor)
    table.validate()
    return {
        "upsizes": table.stats.upsizes,
        "rehashed": table.stats.rehashed_entries,
        "min_fill": min(fills),
        "final_fill": fills[-1],
    }


def _run_all():
    return {
        "single (paper)": _run_variant(False),
        "anticipatory (extension)": _run_variant(True),
    }


def test_ablation_anticipatory_upsize(benchmark):
    results = once(benchmark, _run_all)

    rows = [[name, r["upsizes"], r["rehashed"], r["min_fill"],
             r["final_fill"]]
            for name, r in results.items()]
    print()
    print(format_table(
        ["variant", "upsizes", "entries rehashed", "min fill", "final fill"],
        rows, title="Ablation: single vs anticipatory upsizing",
        float_fmt="{:.3f}"))

    single = results["single (paper)"]
    anticipatory = results["anticipatory (extension)"]
    checks = [
        ("both variants keep every key (fills comparable at the end)",
         abs(single["final_fill"] - anticipatory["final_fill"]) < 0.25),
        ("anticipatory upsizing performs no more resize events",
         anticipatory["upsizes"] <= single["upsizes"]),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
