"""Figure 13 — dynamic throughput while varying the batch size.

The paper sweeps the processing batch size from 2e5 to 1e6 (scaled here
to 200..1000).  Expected shapes:

* SlabHash trails the cuckoo schemes (its chains lengthen as the stream
  accumulates into a fixed hash range);
* DyCuckoo beats MegaKV, and the margin does not shrink as batches grow
  (the paper reports it growing with batch size);
* absolute throughput grows with batch size for everyone (fixed per-
  batch overheads amortize).
"""

import numpy as np

from repro.bench import format_table, run_dynamic, shape_check
from repro.workloads import ALL_DATASETS, DynamicWorkload

from benchmarks.common import (COST_MODEL, SCALE, make_dycuckoo_dynamic,
                               make_megakv_dynamic, make_slab_dynamic, once)

BATCH_SIZES = (200, 600, 1000)
APPROACHES = ("DyCuckoo", "MegaKV", "SlabHash")


def _run_all():
    results = {}
    for spec in ALL_DATASETS:
        keys, values = spec.generate(scale=SCALE, seed=13)
        expected_live = len(np.unique(keys)) // 2
        for batch_size in BATCH_SIZES:
            for factory in (make_dycuckoo_dynamic, make_megakv_dynamic,
                            lambda: make_slab_dynamic(expected_live)):
                table = factory()
                workload = DynamicWorkload(keys, values,
                                           batch_size=batch_size, seed=5)
                run = run_dynamic(table, workload, cost_model=COST_MODEL)
                results[(spec.name, batch_size, table.NAME)] = run.mops
    return results


def test_fig13_vary_batch_size(benchmark):
    results = once(benchmark, _run_all)
    datasets = [spec.name for spec in ALL_DATASETS]

    for batch_size in BATCH_SIZES:
        rows = [[name] + [results[(ds, batch_size, name)] for ds in datasets]
                for name in APPROACHES]
        print()
        print(format_table(
            ["approach"] + datasets, rows,
            title=f"Figure 13: dynamic Mops at batch size {batch_size} "
                  f"(paper scale {int(batch_size / SCALE):,})"))

    checks = []
    for ds in datasets:
        for batch_size in BATCH_SIZES:
            dy = results[(ds, batch_size, "DyCuckoo")]
            slab = results[(ds, batch_size, "SlabHash")]
            mega = results[(ds, batch_size, "MegaKV")]
            checks.append((f"{ds} batch={batch_size}: DyCuckoo beats MegaKV",
                           dy > mega * 0.98))
            checks.append((f"{ds} batch={batch_size}: SlabHash trails "
                           "DyCuckoo", dy > slab * 0.98))
    gains = sum(
        results[(ds, BATCH_SIZES[-1], "DyCuckoo")]
        > results[(ds, BATCH_SIZES[0], "DyCuckoo")] * 0.98
        for ds in datasets)
    checks.append((f"larger batches amortize overheads on most datasets "
                   f"({gains}/{len(datasets)})", gains >= 3))

    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
