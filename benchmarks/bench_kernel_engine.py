"""Kernel execution engines — warp reference vs vectorized cohort.

Drives mixed batches (insert/find/delete in long homogeneous runs, the
bulk-synchronous shape of the paper's dynamic workloads) through the
lane-faithful kernels under both execution engines (see
``docs/performance.md``), across three legs:

* ``mixed`` — the classic 100k-op run-structured batch;
* ``dup_heavy`` — a high-fill, duplicate-majority insert stream that
  forces the cohort engine through its vectorized key-coincidence
  (hazard) resolver; the hazard rate is reported alongside speedup;
* ``faulty`` — the mixed batch under a chaos fault plan, exercising
  the SoA fault windows (historically this leg delegated to the warp
  interpreter, i.e. 1x by construction).

Expected shapes: the engines return identical results and identical
aggregate cost counters on every leg (the bit-for-bit conformance
contract), and the cohort engine clears the gated speedup floors.

With ``REPRO_BENCH_JSON`` set, results are also dumped as
``BENCH_kernel_engine.json`` for regression tracking.
"""

import time

import numpy as np

from repro.bench import format_table, shape_check
from repro.bench.artifacts import maybe_dump
from repro.core.batch_ops import OP_DELETE, OP_FIND, OP_INSERT
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.faults import default_chaos_plan
from repro.telemetry import Profiler

from benchmarks.common import once

#: Operations in the mixed batch (paper-scale sweeps use 1e7; scaled).
NUM_OPS = 100_000

#: Bounds on one homogeneous run's length.  Long runs are the
#: bulk-synchronous regime the engines are built for; the cohort
#: engine amortizes per-launch setup over each run.
RUN_LENGTH = (2_000, 8_000)

#: Table geometry: 4 x 256 x 32 = 32,768 slots, which pushes the ~30k
#: distinct live keys toward high fill so eviction chains actually fire
#: (kernels never resize).
NUM_TABLES = 4
BUCKETS = 256
BUCKET_CAPACITY = 32

#: Duplicate-heavy leg: a small keyspace against a small table drives
#: fill to ~75%, so evictions retarget duplicate carriers into foreign
#: buckets — the condition that makes key-coincidence hazards real.
DUP_OPS = 30_000
DUP_BUCKETS = 16
DUP_CAPACITY = 8

#: Gated speedup floors (``perf_gate`` skips wall-clock keys; these
#: asserts are the enforcement).  The mixed floor was 10x before the
#: vectorized hazard/fault work landed.
MIXED_FLOOR = 12.0
DUP_FLOOR = 8.0
FAULT_FLOOR = 8.0

ENGINES = ("warp", "cohort")

COUNTER_FIELDS = ("rounds", "memory_transactions", "lock_acquisitions",
                  "lock_conflicts", "evictions", "completed_ops", "votes")


def _workload(rng: np.random.Generator):
    """Run-structured mixed op stream: (ops, keys, values)."""
    ops = np.empty(NUM_OPS, dtype=np.int64)
    pos = 0
    while pos < NUM_OPS:
        kind = rng.choice([OP_INSERT, OP_FIND, OP_DELETE],
                          p=[0.5, 0.3, 0.2])
        length = min(int(rng.integers(*RUN_LENGTH)), NUM_OPS - pos)
        ops[pos:pos + length] = kind
        pos += length
    keyspace = NUM_OPS // 2
    keys = rng.integers(1, keyspace + 1, NUM_OPS).astype(np.uint64)
    values = rng.integers(1, 1 << 40, NUM_OPS).astype(np.uint64)
    return ops, keys, values


def _dup_workload(rng: np.random.Generator):
    """Insert-only stream where every warp is duplicate-majority."""
    slots = NUM_TABLES * DUP_BUCKETS * DUP_CAPACITY
    keyspace = slots * 3 // 4
    ops = np.full(DUP_OPS, OP_INSERT, dtype=np.int64)
    keys = rng.integers(1, keyspace + 1, DUP_OPS).astype(np.uint64)
    values = rng.integers(1, 1 << 40, DUP_OPS).astype(np.uint64)
    return ops, keys, values


def _fresh_table(buckets=BUCKETS, capacity=BUCKET_CAPACITY) -> DyCuckooTable:
    return DyCuckooTable(DyCuckooConfig(
        num_tables=NUM_TABLES, initial_buckets=buckets,
        bucket_capacity=capacity, auto_resize=False, seed=1080))


def _run_leg(ops, keys, values, *, buckets=BUCKETS,
             capacity=BUCKET_CAPACITY, fault_seed=None,
             num_ops=None) -> dict:
    """Drive one leg through both engines; assert conformance."""
    num_ops = num_ops if num_ops is not None else len(ops)
    outcomes = {}
    plans = {}
    for engine in ENGINES:
        table = _fresh_table(buckets, capacity)
        if fault_seed is not None:
            plans[engine] = table.set_fault_plan(
                default_chaos_plan(seed=fault_seed))
        start = time.perf_counter()
        result = table.execute_mixed(ops, keys, values, engine=engine)
        elapsed = time.perf_counter() - start
        outcomes[engine] = (table, result, elapsed)

    # Conformance: identical outputs, storage, cost counters, and
    # (when armed) fault decisions.
    tw, rw, _ = outcomes["warp"]
    tc, rc, _ = outcomes["cohort"]
    assert np.array_equal(rw.values, rc.values), "FIND values diverged"
    assert np.array_equal(rw.found, rc.found), "FIND hits diverged"
    assert np.array_equal(rw.removed, rc.removed), "DELETE masks diverged"
    assert rw.kernel == rc.kernel, (
        f"cost counters diverged: {rw.kernel} != {rc.kernel}")
    assert tw._victim_counter == tc._victim_counter
    for sw, sc in zip(tw.subtables, tc.subtables):
        assert np.array_equal(sw.keys, sc.keys), "storage diverged"
        assert np.array_equal(sw.values, sc.values), "values diverged"
    if fault_seed is not None:
        assert plans["warp"].fired == plans["cohort"].fired, \
            "fault decisions diverged"
        assert plans["warp"].invocations() == plans["cohort"].invocations()

    # Hazard telemetry: a separate profiled cohort pass (the profiler
    # adds per-round bookkeeping, so it stays out of the timed run).
    prof_table = _fresh_table(buckets, capacity)
    if fault_seed is not None:
        prof_table.set_fault_plan(default_chaos_plan(seed=fault_seed))
    prof = prof_table.set_profiler(Profiler())
    prof_table.execute_mixed(ops, keys, values, engine="cohort")

    leg = {"ops": num_ops, "runs": rw.runs, "conformant": True,
           "hazard_rounds": prof.hazard_rounds,
           "hazard_lanes": prof.hazard_lanes,
           "hazard_lane_rate": prof.hazard_lanes / num_ops}
    if fault_seed is not None:
        leg["faults_injected"] = len(plans["cohort"].fired)
    for engine in ENGINES:
        _table, result, elapsed = outcomes[engine]
        leg[engine] = {
            "seconds": elapsed,
            "ops_per_sec": num_ops / elapsed,
            **{f: getattr(result.kernel, f) for f in COUNTER_FIELDS},
        }
    leg["speedup"] = leg["warp"]["seconds"] / leg["cohort"]["seconds"]
    return leg


def _run_all() -> dict:
    rng = np.random.default_rng(1080)
    mixed = _run_leg(*_workload(rng))
    dup = _run_leg(*_dup_workload(rng), buckets=DUP_BUCKETS,
                   capacity=DUP_CAPACITY)
    faulty = _run_leg(*_workload(np.random.default_rng(2080)),
                      fault_seed=7)
    # Top-level keys keep the historic layout for the perf gate; the
    # new legs nest under their own names.
    results = {"ops": mixed["ops"], "runs": mixed["runs"],
               "conformant": True, "speedup": mixed["speedup"],
               "warp": mixed["warp"], "cohort": mixed["cohort"],
               "hazard_rounds": mixed["hazard_rounds"],
               "hazard_lanes": mixed["hazard_lanes"],
               "hazard_lane_rate": mixed["hazard_lane_rate"],
               "dup_heavy": dup, "faulty": faulty}
    return results


def test_kernel_engine(benchmark):
    results = once(benchmark, _run_all)
    maybe_dump("BENCH_kernel_engine", results)

    legs = {"mixed": results, "dup_heavy": results["dup_heavy"],
            "faulty": results["faulty"]}
    print()
    print(format_table(
        ["leg", "engine", "seconds", "ops/sec", "rounds", "transactions",
         "evictions", "hazard rate"],
        [[leg, engine, data[engine]["seconds"],
          data[engine]["ops_per_sec"], data[engine]["rounds"],
          data[engine]["memory_transactions"], data[engine]["evictions"],
          data["hazard_lane_rate"] if engine == "cohort" else 0.0]
         for leg, data in legs.items() for engine in ENGINES],
        title=f"Kernel engines: mixed {results['ops']:,} ops, "
              f"dup-heavy {results['dup_heavy']['ops']:,} ops, "
              f"faulty {results['faulty']['ops']:,} ops"))

    identical_counters = all(
        legs[leg][eng][f] == legs[leg]["cohort"][f]
        for leg in legs for eng in ENGINES for f in COUNTER_FIELDS)
    checks = [
        ("every leg returns identical results and storage",
         all(data["conformant"] for data in legs.values())),
        ("aggregate cost counters identical across engines on every leg",
         identical_counters),
        (f"mixed: cohort >= {MIXED_FLOOR:.0f}x faster "
         f"({results['speedup']:.1f}x)",
         results["speedup"] >= MIXED_FLOOR),
        (f"dup-heavy: cohort >= {DUP_FLOOR:.0f}x faster "
         f"({legs['dup_heavy']['speedup']:.1f}x)",
         legs["dup_heavy"]["speedup"] >= DUP_FLOOR),
        (f"faulty: cohort >= {FAULT_FLOOR:.0f}x faster "
         f"({legs['faulty']['speedup']:.1f}x)",
         legs["faulty"]["speedup"] >= FAULT_FLOOR),
        ("dup-heavy leg exercises the hazard resolver "
         f"({legs['dup_heavy']['hazard_rounds']} rounds, "
         f"{legs['dup_heavy']['hazard_lanes']} lanes)",
         legs["dup_heavy"]["hazard_rounds"] > 0),
        ("faulty leg injects faults "
         f"({legs['faulty']['faults_injected']})",
         legs["faulty"]["faults_injected"] > 0),
        ("the mixed batch exercises evictions (insert pressure is real)",
         results["warp"]["evictions"] > 0),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
