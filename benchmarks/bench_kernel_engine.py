"""Kernel execution engines — warp reference vs vectorized cohort.

Drives one 100k-operation mixed batch (insert/find/delete in long
homogeneous runs, the bulk-synchronous shape of the paper's dynamic
workloads) through the lane-faithful kernels under both execution
engines (see ``docs/performance.md``):

* ``warp`` — the per-warp Python interpreter (the readable reference),
* ``cohort`` — the structure-of-arrays engine of
  :mod:`repro.gpusim.cohort`.

Expected shapes: the two engines return identical results and identical
aggregate cost counters (the bit-for-bit conformance contract), and the
cohort engine is at least 10x faster in wall-clock on this batch.

With ``REPRO_BENCH_JSON`` set, results are also dumped as
``BENCH_kernel_engine.json`` for regression tracking.
"""

import time

import numpy as np

from repro.bench import format_table, shape_check
from repro.bench.artifacts import maybe_dump
from repro.core.batch_ops import OP_DELETE, OP_FIND, OP_INSERT
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable

from benchmarks.common import once

#: Operations in the mixed batch (paper-scale sweeps use 1e7; scaled).
NUM_OPS = 100_000

#: Bounds on one homogeneous run's length.  Long runs are the
#: bulk-synchronous regime the engines are built for; the cohort
#: engine amortizes per-launch setup over each run.
RUN_LENGTH = (2_000, 8_000)

#: Table geometry: 4 x 256 x 32 = 32,768 slots, which pushes the ~30k
#: distinct live keys toward high fill so eviction chains actually fire
#: (kernels never resize).
NUM_TABLES = 4
BUCKETS = 256
BUCKET_CAPACITY = 32

ENGINES = ("warp", "cohort")

COUNTER_FIELDS = ("rounds", "memory_transactions", "lock_acquisitions",
                  "lock_conflicts", "evictions", "completed_ops", "votes")


def _workload(rng: np.random.Generator):
    """Run-structured mixed op stream: (ops, keys, values)."""
    ops = np.empty(NUM_OPS, dtype=np.int64)
    pos = 0
    while pos < NUM_OPS:
        kind = rng.choice([OP_INSERT, OP_FIND, OP_DELETE],
                          p=[0.5, 0.3, 0.2])
        length = min(int(rng.integers(*RUN_LENGTH)), NUM_OPS - pos)
        ops[pos:pos + length] = kind
        pos += length
    keyspace = NUM_OPS // 2
    keys = rng.integers(1, keyspace + 1, NUM_OPS).astype(np.uint64)
    values = rng.integers(1, 1 << 40, NUM_OPS).astype(np.uint64)
    return ops, keys, values


def _fresh_table() -> DyCuckooTable:
    return DyCuckooTable(DyCuckooConfig(
        num_tables=NUM_TABLES, initial_buckets=BUCKETS,
        bucket_capacity=BUCKET_CAPACITY, auto_resize=False, seed=1080))


def _run_all() -> dict:
    rng = np.random.default_rng(1080)
    ops, keys, values = _workload(rng)

    outcomes = {}
    for engine in ENGINES:
        table = _fresh_table()
        start = time.perf_counter()
        result = table.execute_mixed(ops, keys, values, engine=engine)
        elapsed = time.perf_counter() - start
        outcomes[engine] = (table, result, elapsed)

    # Conformance: identical outputs, storage, and cost counters.
    tw, rw, _ = outcomes["warp"]
    tc, rc, _ = outcomes["cohort"]
    assert np.array_equal(rw.values, rc.values), "FIND values diverged"
    assert np.array_equal(rw.found, rc.found), "FIND hits diverged"
    assert np.array_equal(rw.removed, rc.removed), "DELETE masks diverged"
    assert rw.kernel == rc.kernel, (
        f"cost counters diverged: {rw.kernel} != {rc.kernel}")
    assert tw._victim_counter == tc._victim_counter
    for sw, sc in zip(tw.subtables, tc.subtables):
        assert np.array_equal(sw.keys, sc.keys), "storage diverged"
        assert np.array_equal(sw.values, sc.values), "values diverged"

    results = {"ops": NUM_OPS, "runs": rw.runs, "conformant": True}
    for engine in ENGINES:
        _table, result, elapsed = outcomes[engine]
        results[engine] = {
            "seconds": elapsed,
            "ops_per_sec": NUM_OPS / elapsed,
            **{f: getattr(result.kernel, f) for f in COUNTER_FIELDS},
        }
    results["speedup"] = (results["warp"]["seconds"]
                          / results["cohort"]["seconds"])
    return results


def test_kernel_engine(benchmark):
    results = once(benchmark, _run_all)
    maybe_dump("BENCH_kernel_engine", results)

    print()
    print(format_table(
        ["engine", "seconds", "ops/sec", "rounds", "transactions",
         "evictions", "lock conflicts"],
        [[engine, results[engine]["seconds"],
          results[engine]["ops_per_sec"], results[engine]["rounds"],
          results[engine]["memory_transactions"],
          results[engine]["evictions"],
          results[engine]["lock_conflicts"]] for engine in ENGINES],
        title=f"Kernel engines on a {NUM_OPS:,}-op mixed batch "
              f"({results['runs']} runs)"))

    speedup = results["speedup"]
    identical_counters = all(
        results["warp"][f] == results["cohort"][f] for f in COUNTER_FIELDS)
    checks = [
        ("engines return identical results and storage",
         results["conformant"]),
        ("aggregate cost counters identical across engines",
         identical_counters),
        (f"cohort is >= 10x faster on 100k mixed ops ({speedup:.1f}x)",
         speedup >= 10.0),
        ("the batch exercises evictions (insert pressure is real)",
         results["warp"]["evictions"] > 0),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
