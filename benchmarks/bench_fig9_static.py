"""Figure 9 — static throughput of all approaches over all datasets.

The static experiment inserts every dataset KV pair, then issues random
FIND queries (the paper's 1M, scaled).  Expected shapes:

* DyCuckoo posts the best INSERT throughput (fewer evictions than
  MegaKV's 2-choice/8-slot geometry, coalesced unlike CUDPP, no chain
  walks unlike SlabHash);
* MegaKV posts the best FIND (two plain probes, no extra hash layer),
  with DyCuckoo a close second;
* SlabHash trails both cuckoo bucketized schemes on FIND.
"""

from repro.bench import format_table, run_static, shape_check
from repro.workloads import ALL_DATASETS

import numpy as np

from benchmarks.common import (COST_MODEL, SCALE, STATIC_FINDS,
                               largest_power_of_two_at_most, once,
                               static_suite_for_slots,
                               trim_stream_to_unique)

THETA = 0.85


def _run_all():
    results = {}
    for spec in ALL_DATASETS:
        keys, values = spec.generate(scale=SCALE, seed=9)
        unique_total = len(np.unique(keys))
        slots = largest_power_of_two_at_most(int(unique_total / THETA))
        quota = int(slots * THETA)
        keys, values = trim_stream_to_unique(keys, values, quota)
        suite = static_suite_for_slots(slots, quota, THETA)
        for name, table in suite.items():
            results[(spec.name, name)] = run_static(
                table, keys, values, num_finds=STATIC_FINDS,
                cost_model=COST_MODEL)
    return results


APPROACHES = ("DyCuckoo", "MegaKV", "CUDPP", "SlabHash")


def test_fig9_static_throughput(benchmark):
    results = once(benchmark, _run_all)
    datasets = [spec.name for spec in ALL_DATASETS]

    for metric, attr in (("insert", "insert_mops"), ("find", "find_mops")):
        rows = []
        for name in APPROACHES:
            rows.append([name] + [getattr(results[(ds, name)], attr)
                                  for ds in datasets])
        print()
        print(format_table(["approach"] + datasets, rows,
                           title=f"Figure 9: static {metric} throughput "
                                 f"(Mops)"))

    checks = []
    for ds in datasets:
        dy_ins = results[(ds, "DyCuckoo")].insert_mops
        others_ins = max(results[(ds, name)].insert_mops
                         for name in APPROACHES if name != "DyCuckoo")
        checks.append((f"{ds}: DyCuckoo best insert", dy_ins > others_ins))

        mega_find = results[(ds, "MegaKV")].find_mops
        dy_find = results[(ds, "DyCuckoo")].find_mops
        slab_find = results[(ds, "SlabHash")].find_mops
        checks.append((f"{ds}: MegaKV best find, DyCuckoo close second",
                       mega_find > dy_find > 0.7 * mega_find))
        checks.append((f"{ds}: bucketized cuckoo beats chaining on find",
                       dy_find > slab_find))

    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
