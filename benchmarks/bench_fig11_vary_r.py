"""Figure 11 — dynamic throughput while varying the delete ratio r.

The dynamic protocol (batched inserts + finds + ``r`` deletes per batch,
then the swapped replay) runs over every dataset.  Expected shapes:

* DyCuckoo posts the best throughput at every r on every dataset;
* SlabHash *improves* with r (symbolic deletions create reusable slots);
* DyCuckoo's own throughput declines (or holds) as r grows.

The paper additionally reports the DyCuckoo/MegaKV margin *growing* with
r; under our protocol higher r also shrinks the peak table (deletes are
live-key hits), giving MegaKV fewer doublings — the margin stays roughly
flat.  Recorded as a deviation in EXPERIMENTS.md.
"""

import numpy as np

from repro.bench import format_table, run_dynamic, shape_check
from repro.workloads import ALL_DATASETS, DynamicWorkload

from benchmarks.common import (BATCH_SIZE, COST_MODEL, SCALE,
                               make_dycuckoo_dynamic, make_megakv_dynamic,
                               make_slab_dynamic, once)

RATIOS = (0.1, 0.3, 0.5)
APPROACHES = ("DyCuckoo", "MegaKV", "SlabHash")


def _run_all():
    results = {}
    for spec in ALL_DATASETS:
        keys, values = spec.generate(scale=SCALE, seed=11)
        expected_live = len(np.unique(keys)) // 2
        for r in RATIOS:
            for factory in (make_dycuckoo_dynamic, make_megakv_dynamic,
                            lambda: make_slab_dynamic(expected_live)):
                table = factory()
                workload = DynamicWorkload(keys, values,
                                           batch_size=BATCH_SIZE,
                                           ratio_r=r, seed=3)
                run = run_dynamic(table, workload, cost_model=COST_MODEL)
                results[(spec.name, r, table.NAME)] = run.mops
    return results


def test_fig11_vary_delete_ratio(benchmark):
    results = once(benchmark, _run_all)
    datasets = [spec.name for spec in ALL_DATASETS]

    for r in RATIOS:
        rows = [[name] + [results[(ds, r, name)] for ds in datasets]
                for name in APPROACHES]
        print()
        print(format_table(["approach"] + datasets, rows,
                           title=f"Figure 11: dynamic Mops at r = {r}"))

    checks = []
    for ds in datasets:
        for r in RATIOS:
            dy = results[(ds, r, "DyCuckoo")]
            others = max(results[(ds, r, name)]
                         for name in APPROACHES if name != "DyCuckoo")
            checks.append((f"{ds} r={r}: DyCuckoo best overall",
                           dy > others * 0.98))
        slab_trend = [results[(ds, r, "SlabHash")] for r in RATIOS]
        checks.append((f"{ds}: SlabHash improves with r",
                       slab_trend[-1] > slab_trend[0] * 0.98))

    declines = sum(
        results[(ds, RATIOS[-1], "DyCuckoo")]
        < results[(ds, RATIOS[0], "DyCuckoo")] * 1.05
        for ds in datasets)
    checks.append((f"DyCuckoo declines (or holds) with r on most datasets "
                   f"({declines}/{len(datasets)}; delete-heavy batches are "
                   "cheap per op, which can offset resize churn on "
                   "fully-unique streams)", declines >= 3))

    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
