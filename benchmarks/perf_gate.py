"""Performance gate over dumped ``BENCH_*.json`` artifacts.

Compares the current bench-artifact directory against a baseline
directory with :func:`repro.bench.regression.compare_dirs` and prints
the report.  Two deployment styles:

* **Warn-only trajectory** (the default, baseline restored from the
  previous CI run's cache): perf drift is visible in CI logs without
  blocking unrelated changes on noisy shared runners.
* **Enforcing** (``--strict`` against the committed baseline in
  ``benchmarks/baselines/``): deterministic simulated-cost leaves must
  match; wall-clock and throughput leaves are excluded with ``--skip``
  because they depend on host speed.

Exit status:

* ``0`` — clean, baseline missing/empty (first run), or deviations
  found while warn-only.
* ``1`` — deviations found and ``--strict`` was passed.

Usage::

    python benchmarks/perf_gate.py BASELINE_DIR CURRENT_DIR [--strict]
        [--tolerance 0.05] [--only 'BENCH_kernel_engine*']
        [--skip '*seconds*'] [--skip '*ops_per_sec*']
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.regression import compare_dirs, format_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline artifact directory")
    parser.add_argument("current", help="current artifact directory")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative tolerance per numeric result")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on deviations instead of warning")
    parser.add_argument("--only", action="append", default=[],
                        metavar="PATTERN",
                        help="restrict to artifact file names matching "
                             "this fnmatch pattern (repeatable)")
    parser.add_argument("--skip", action="append", default=[],
                        metavar="PATTERN",
                        help="ignore leaves whose 'artifact:path' matches "
                             "this fnmatch pattern (repeatable)")
    args = parser.parse_args(argv)

    baseline = Path(args.baseline)
    if not baseline.is_dir() or not list(baseline.glob("*.json")):
        print(f"perf gate: no baseline artifacts in {baseline} "
              "(first run?); skipping comparison")
        return 0
    current = Path(args.current)
    if not current.is_dir():
        print(f"perf gate: current directory {current} missing",
              file=sys.stderr)
        return 1

    report = compare_dirs(baseline, current, rel_tolerance=args.tolerance,
                          only=args.only, skip=args.skip)
    print(format_report(report))
    if report.clean:
        return 0
    if args.strict:
        return 1
    print("perf gate: deviations above are WARN-ONLY (pass --strict to "
          "enforce)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
