"""Performance gate over dumped ``BENCH_*.json`` artifacts.

Compares the current bench-artifact directory against a baseline
directory with :func:`repro.bench.regression.compare_dirs` and prints
the report.  Two deployment styles:

* **Warn-only trajectory** (the default, baseline restored from the
  previous CI run's cache): perf drift is visible in CI logs without
  blocking unrelated changes on noisy shared runners.
* **Enforcing** (``--strict`` against the committed baseline in
  ``benchmarks/baselines/``): deterministic simulated-cost leaves must
  match; wall-clock and throughput leaves are excluded with ``--skip``
  because they depend on host speed.

Exit status:

* ``0`` — clean, baseline missing/empty (first run), or deviations
  found while warn-only.
* ``1`` — deviations found and ``--strict`` was passed.

On top of the directory diff, a dedicated **stability gate** watches
the resize tail: when both directories carry
``BENCH_fig12_stability.json``, every ``<dataset>/DyCuckoo`` entry's
``latency.p99`` and ``latency.worst`` must stay within
``--stability-headroom`` (default +25 %) of the committed baseline, at
equal-or-better throughput (``mops`` within the same headroom the
other way).  The baseline was recorded with incremental resize on, so
any change that re-concentrates migration cost into the triggering
batch — a one-shot regression, a drain budget that stopped being
bounded, an epoch that stopped opening — shows up here as a tail
blow-up even when the deterministic cost counters still match.
Latency leaves of that artifact are excluded from the exact diff
(they are gated with headroom instead); the headroom absorbs
placement-order chaos near ``beta``, where eviction storms make tail
batches sensitive to any reordering.

Usage::

    python benchmarks/perf_gate.py BASELINE_DIR CURRENT_DIR [--strict]
        [--tolerance 0.05] [--only 'BENCH_kernel_engine*']
        [--skip '*seconds*'] [--skip '*ops_per_sec*']
        [--stability-headroom 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.regression import compare_dirs, format_report

STABILITY_ARTIFACT = "BENCH_fig12_stability.json"


def check_stability(baseline_dir: Path, current_dir: Path,
                    headroom: float) -> list[str]:
    """Tail-latency violations in the Figure 12 stability artifact.

    Returns human-readable violation strings; empty means the gate
    passed (or the artifact is absent on either side, which is not a
    violation — the directory diff already reports missing files).
    """
    base_path = baseline_dir / STABILITY_ARTIFACT
    cur_path = current_dir / STABILITY_ARTIFACT
    if not base_path.is_file() or not cur_path.is_file():
        return []
    base = json.loads(base_path.read_text())
    cur = json.loads(cur_path.read_text())
    violations = []
    for key, entry in sorted(base.items()):
        if not key.endswith("/DyCuckoo"):
            continue
        if key not in cur:
            violations.append(f"{key}: missing from current artifact")
            continue
        for metric in ("p99", "worst"):
            was = entry["latency"][metric]
            now = cur[key]["latency"][metric]
            if now > was * (1.0 + headroom):
                violations.append(
                    f"{key}: latency.{metric} {now:.6g} exceeds baseline "
                    f"{was:.6g} by more than {headroom:.0%}")
        was_mops = entry["mops"]
        now_mops = cur[key]["mops"]
        if now_mops < was_mops * (1.0 - headroom):
            violations.append(
                f"{key}: mops {now_mops:.3f} below baseline "
                f"{was_mops:.3f} by more than {headroom:.0%}")
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline artifact directory")
    parser.add_argument("current", help="current artifact directory")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative tolerance per numeric result")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on deviations instead of warning")
    parser.add_argument("--only", action="append", default=[],
                        metavar="PATTERN",
                        help="restrict to artifact file names matching "
                             "this fnmatch pattern (repeatable)")
    parser.add_argument("--skip", action="append", default=[],
                        metavar="PATTERN",
                        help="ignore leaves whose 'artifact:path' matches "
                             "this fnmatch pattern (repeatable)")
    parser.add_argument("--stability-headroom", type=float, default=0.25,
                        help="allowed relative growth of fig12 DyCuckoo "
                             "p99/worst latency (and mops shrink) over "
                             "the baseline")
    args = parser.parse_args(argv)

    baseline = Path(args.baseline)
    if not baseline.is_dir() or not list(baseline.glob("*.json")):
        print(f"perf gate: no baseline artifacts in {baseline} "
              "(first run?); skipping comparison")
        return 0
    current = Path(args.current)
    if not current.is_dir():
        print(f"perf gate: current directory {current} missing",
              file=sys.stderr)
        return 1

    # The stability artifact's latency/mops leaves are gated with
    # headroom below, not by the exact diff.
    skip = [*args.skip, "BENCH_fig12_stability*DyCuckoo/latency*",
            "BENCH_fig12_stability*DyCuckoo/mops*"]
    report = compare_dirs(baseline, current, rel_tolerance=args.tolerance,
                          only=args.only, skip=skip)
    print(format_report(report))

    stability = check_stability(baseline, current,
                                headroom=args.stability_headroom)
    if stability:
        print(f"stability gate ({STABILITY_ARTIFACT}, "
              f"headroom {args.stability_headroom:.0%}):")
        for line in stability:
            print(f"  REGRESSION {line}")
    elif (baseline / STABILITY_ARTIFACT).is_file():
        print(f"stability gate ({STABILITY_ARTIFACT}): ok")

    if report.clean and not stability:
        return 0
    if args.strict:
        return 1
    print("perf gate: deviations above are WARN-ONLY (pass --strict to "
          "enforce)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
