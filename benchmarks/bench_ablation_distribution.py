"""Ablation — Theorem-1 weighted routing vs uniform coin-flip routing.

Theorem 1 routes fresh keys to subtable ``i`` with probability
proportional to ``n_i / C(m_i, 2)`` to equalize expected conflicts.  The
effect is visible right after an upsize: the doubled subtable is half
empty, and weighted routing refills it about twice as fast, restoring
balance.  We upsize one subtable of a warm table, stream more inserts
under each policy, and compare how quickly the per-subtable filled
factors re-converge.
"""

import numpy as np

from repro.bench import format_table, shape_check
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable

from benchmarks.common import once

WARM_KEYS = 12_000
REFILL_KEYS = 6_000


def _imbalance(table: DyCuckooTable) -> float:
    """Spread of per-subtable filled factors (max - min)."""
    fills = table.subtable_load_factors
    return max(fills) - min(fills)


def _run_policy(routing: str) -> tuple[float, float, int]:
    rng = np.random.default_rng(19)
    warm = np.unique(rng.integers(1, 1 << 61, int(WARM_KEYS * 1.3)
                                  ).astype(np.uint64))[:WARM_KEYS]
    refill = np.unique(rng.integers(1 << 61, 1 << 62, int(REFILL_KEYS * 1.3)
                                    ).astype(np.uint64))[:REFILL_KEYS]
    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=512, bucket_capacity=16, routing=routing,
        auto_resize=False))
    table.insert(warm, warm)
    table.upsize()  # the doubled subtable is now half as full
    after_upsize = _imbalance(table)
    table.insert(refill, refill)
    after_refill = _imbalance(table)
    return after_upsize, after_refill, table.stats.evictions


def _run_all():
    return {routing: _run_policy(routing)
            for routing in ("weighted", "uniform")}


def test_ablation_distribution_policy(benchmark):
    results = once(benchmark, _run_all)

    rows = [[routing, up, refill, evictions]
            for routing, (up, refill, evictions) in results.items()]
    print()
    print(format_table(
        ["routing", "imbalance after upsize", "imbalance after refill",
         "evictions"],
        rows, title="Ablation: Theorem-1 weighted vs uniform routing",
        float_fmt="{:.3f}"))

    weighted = results["weighted"]
    uniform = results["uniform"]
    recovery_weighted = weighted[0] - weighted[1]
    recovery_uniform = uniform[0] - uniform[1]
    checks = [
        (f"weighted routing re-balances faster after an upsize "
         f"(recovered {recovery_weighted:.3f} vs {recovery_uniform:.3f} "
         "of imbalance)", recovery_weighted > recovery_uniform),
        ("weighted routing ends more balanced",
         weighted[1] < uniform[1]),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
