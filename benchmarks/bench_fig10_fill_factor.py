"""Figure 10 (and the appendix figure) — static throughput vs filled factor.

Sweeps the target filled factor on the RAND dataset for every approach.
Expected shapes:

* cuckoo INSERT degrades mildly at higher theta (more evictions),
  DyCuckoo the most stable (the two-layer relocation freedom);
* cuckoo FIND is flat in theta — except CUDPP, whose automatic function
  count grows with theta and drags FIND down;
* SlabHash degrades on both operations as theta rises (denser slab
  utilization means longer chains); at theta = 90% DyCuckoo leads it by
  a wide margin (the paper reports >2x insert, >2.5x find).
"""


from repro.bench import format_table, run_static, shape_check
from repro.workloads import RAND

from benchmarks.common import (COST_MODEL, SCALE, STATIC_FINDS, once,
                               static_suite_for_slots,
                               trim_stream_to_unique)

THETAS = (0.70, 0.75, 0.80, 0.85, 0.90)
APPROACHES = ("DyCuckoo", "MegaKV", "CUDPP", "SlabHash")

#: Fixed bucketized slot budget; the key count varies with theta.
SLOTS = 64 * 1024


def _run_all():
    all_keys, all_values = RAND.generate(scale=SCALE, seed=10)
    results = {}
    for theta in THETAS:
        quota = int(SLOTS * theta)
        keys, values = trim_stream_to_unique(all_keys, all_values, quota)
        suite = static_suite_for_slots(SLOTS, quota, theta)
        for name, table in suite.items():
            results[(theta, name)] = run_static(
                table, keys, values, num_finds=STATIC_FINDS,
                cost_model=COST_MODEL)
    return results


def test_fig10_vary_filled_factor(benchmark):
    results = once(benchmark, _run_all)

    for metric, attr in (("insert", "insert_mops"), ("find", "find_mops")):
        rows = []
        for name in APPROACHES:
            rows.append([name] + [results[(theta, name)].__getattribute__(attr)
                                  for theta in THETAS])
        print()
        print(format_table(
            ["approach"] + [f"{theta:.0%}" for theta in THETAS], rows,
            title=f"Figure 10: static {metric} Mops vs filled factor (RAND)"))

    def series(name, attr):
        return [getattr(results[(theta, name)], attr) for theta in THETAS]

    dy_find = series("DyCuckoo", "find_mops")
    mega_find = series("MegaKV", "find_mops")
    cudpp_find = series("CUDPP", "find_mops")
    slab_find = series("SlabHash", "find_mops")
    slab_insert = series("SlabHash", "insert_mops")
    dy_insert = series("DyCuckoo", "insert_mops")

    checks = [
        ("DyCuckoo find flat across theta",
         max(dy_find) / min(dy_find) < 1.15),
        ("MegaKV find flat across theta",
         max(mega_find) / min(mega_find) < 1.15),
        ("CUDPP find degrades at high theta (more hash functions)",
         cudpp_find[-1] < cudpp_find[0] * 0.95),
        ("SlabHash find degrades with theta (longer chains)",
         slab_find[-1] < slab_find[0] * 0.9),
        ("SlabHash insert degrades with theta",
         slab_insert[-1] < slab_insert[0] * 0.9),
        (f"theta=90%: DyCuckoo insert leads Slab "
         f"({dy_insert[-1] / slab_insert[-1]:.1f}x; paper reports >2x)",
         dy_insert[-1] > 1.5 * slab_insert[-1]),
        (f"theta=90%: DyCuckoo find leads Slab "
         f"({dy_find[-1] / slab_find[-1]:.1f}x; paper reports >2.5x)",
         dy_find[-1] > 1.5 * slab_find[-1]),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
