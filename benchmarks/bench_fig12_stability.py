"""Figure 12 — filled factor tracked after every batch.

The paper's stability experiment: run the dynamic protocol at default
parameters and plot the filled factor after each batch.  Expected
shapes:

* DyCuckoo stays inside [alpha, beta] after warm-up and moves smoothly
  (one subtable resized at a time);
* MegaKV jumps in large steps at every double/half rehash;
* SlabHash decays as symbolic deletions accumulate — below 25% by the
  end on COM (the paper reports <20%) — and its allocated memory never
  shrinks, which is the "up to 4x memory" headline.

Besides the fill series, the run reports batch-latency percentiles on
the simulated clock (p50/p99/worst batch via
:mod:`repro.telemetry.latency`) — the SLO view of the same stability
story: resizes show up as tail batches, and DyCuckoo's one-subtable
resizing keeps that tail short.  With ``REPRO_BENCH_JSON`` set the
latency summaries land in ``BENCH_fig12_stability.json``.
"""

import numpy as np

from repro.bench import format_series, maybe_dump_trace, run_dynamic, shape_check
from repro.bench.artifacts import maybe_dump
from repro.telemetry import Telemetry, format_summary, summarize_batches
from repro.workloads import ALL_DATASETS, DynamicWorkload

from benchmarks.common import (BATCH_SIZE, COST_MODEL, SCALE,
                               make_dycuckoo_dynamic, make_megakv_dynamic,
                               make_slab_dynamic, once)

APPROACHES = ("DyCuckoo", "MegaKV", "SlabHash")


def _run_all():
    results = {}
    for spec in ALL_DATASETS:
        keys, values = spec.generate(scale=SCALE, seed=12)
        expected_live = len(np.unique(keys)) // 2
        for factory in (make_dycuckoo_dynamic, make_megakv_dynamic,
                        lambda: make_slab_dynamic(expected_live)):
            table = factory()
            if table.NAME == "DyCuckoo":
                # Full-fidelity trace of the stability run: with
                # REPRO_BENCH_JSON set, a Chrome-trace artifact with the
                # resize lifecycle and fill-factor samples lands next to
                # the JSON results.
                telemetry = table.set_telemetry(Telemetry())
            workload = DynamicWorkload(keys, values, batch_size=BATCH_SIZE,
                                       seed=4)
            run = run_dynamic(table, workload, cost_model=COST_MODEL)
            if table.NAME == "DyCuckoo":
                maybe_dump_trace(
                    f"bench_fig12_stability_{spec.name}_dycuckoo",
                    telemetry.tracer,
                    metadata={"dataset": spec.name, "scale": SCALE,
                              "batch_size": BATCH_SIZE})
            results[(spec.name, table.NAME)] = (run, table)
    return results


def test_fig12_fill_factor_stability(benchmark):
    results = once(benchmark, _run_all)

    latencies = {key: summarize_batches(run.batches)
                 for key, (run, _table) in results.items()}
    maybe_dump("BENCH_fig12_stability", {
        f"{ds}/{name}": {"mops": run.mops, "latency": latencies[(ds, name)]}
        for (ds, name), (run, _table) in results.items()})

    checks = []
    for spec in ALL_DATASETS:
        ds = spec.name
        print()
        print(format_series(
            f"Figure 12: filled factor per batch — {ds}",
            {name: results[(ds, name)][0].fill_series
             for name in APPROACHES},
            lo=0.0, hi=1.0))

        for name in APPROACHES:
            print(f"  {name:>8} batch latency: "
                  + format_summary(latencies[(ds, name)]))

        dy_run, dy_table = results[(ds, "DyCuckoo")]
        mega_run, _ = results[(ds, "MegaKV")]
        slab_run, _ = results[(ds, "SlabHash")]

        dy_series = np.asarray(dy_run.fill_series[3:])
        checks.append((f"{ds}: DyCuckoo fill never exceeds beta",
                       bool(np.all(dy_series <= dy_table.config.beta + 1e-9))))
        mega_jumps = np.abs(np.diff(np.asarray(mega_run.fill_series)))
        dy_jumps = np.abs(np.diff(dy_series))
        checks.append((f"{ds}: MegaKV's largest step exceeds DyCuckoo's "
                       "(whole-table vs one-subtable resizing)",
                       mega_jumps.max() > dy_jumps.max()))
        checks.append((f"{ds}: SlabHash memory never shrinks",
                       slab_run.batches[-1].total_slots
                       >= max(b.total_slots for b in slab_run.batches)))

        # Peak-memory headline, sharpest on the skewed COM dataset.
        dy_peak = dy_run.peak_memory_bytes
        others_peak = max(mega_run.peak_memory_bytes,
                          slab_run.peak_memory_bytes)
        checks.append((f"{ds}: DyCuckoo peak memory the smallest "
                       f"({others_peak / dy_peak:.1f}x saved)",
                       dy_peak <= others_peak))

    slab_com = results[("COM", "SlabHash")][0]
    checks.append(("COM: SlabHash fill decays below 25% "
                   f"(ends at {slab_com.fill_series[-1]:.0%})",
                   slab_com.fill_series[-1] < 0.25))

    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
