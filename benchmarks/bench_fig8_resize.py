"""Figure 8 — subtable resize throughput: our strategy vs rehashing.

The paper initializes DyCuckoo at the filled-factor bound, performs one
subtable resize, and compares two mechanisms:

* **resize** — the conflict-free bucket-pair scatter of Section IV-D
  (upsize) / the merge-with-residual-spill (downsize);
* **rehash** — doubling/halving the subtable but relocating its entries
  by *reinserting them with Algorithm 1* into the structure.

Expected shapes: the resize strategy dominates for upsizing (reinsertion
into an almost-full structure triggers eviction storms) and clearly wins
for downsizing too.
"""

import numpy as np

from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.bench import format_table, shape_check

from benchmarks.common import COST_MODEL, once

SLOTS = 64 * 1024


def _make_table(theta: float) -> DyCuckooTable:
    table = DyCuckooTable(DyCuckooConfig(
        num_tables=4, bucket_capacity=32, initial_buckets=SLOTS // (4 * 32),
        auto_resize=False))
    n = int(SLOTS * theta)
    rng = np.random.default_rng(8)
    keys = np.unique(rng.integers(1, 1 << 62, int(n * 1.3)
                                  ).astype(np.uint64))[:n]
    table.insert(keys, keys)
    return table


def _measure(table: DyCuckooTable, action) -> tuple[float, int]:
    """Run ``action``; return (simulated seconds, entries relocated)."""
    before = table.stats.snapshot()
    moved = action()
    delta = table.stats.delta(before)
    seconds = COST_MODEL.batch_seconds(delta, max(1, moved),
                                       compute_ns_per_op=0.3)
    return seconds, moved


def _upsize_strategy():
    table = _make_table(0.85)
    target = 0
    size = table.subtables[target].size

    def action():
        table._resizer._pick_upsize_target = lambda: target
        table.upsize()
        return size

    seconds, moved = _measure(table, action)
    table.validate()
    return moved / seconds / 1e6


def _upsize_rehash():
    """Double subtable 0 but relocate its entries by reinsertion."""
    table = _make_table(0.85)
    st = table.subtables[0]
    codes, values, _ = st.export_entries()

    def action():
        # Empty the doubled subtable, then push its entries through the
        # normal insert path (Algorithm 1) against near-full siblings.
        st.rebuild(st.n_buckets * 2, codes[:0], values[:0],
                   np.zeros(0, dtype=np.int64))
        first, second = table.pair_hash.tables_for(codes)
        targets = table._router.choose(codes, first, second,
                                       table.subtable_sizes(),
                                       table.subtable_loads())
        table._insert_pending(codes, values, targets, excluded=None)
        return len(codes)

    seconds, moved = _measure(table, action)
    table.validate()
    return moved / seconds / 1e6


def _downsize_strategy():
    table = _make_table(0.30)
    target = 0
    size = table.subtables[target].size

    def action():
        table._resizer._pick_downsize_target = lambda: target
        table.downsize()
        return size

    seconds, moved = _measure(table, action)
    table.validate()
    return moved / seconds / 1e6


def _downsize_rehash():
    table = _make_table(0.30)
    st = table.subtables[0]
    codes, values, _ = st.export_entries()

    def action():
        st.rebuild(st.n_buckets // 2, codes[:0], values[:0],
                   np.zeros(0, dtype=np.int64))
        first, second = table.pair_hash.tables_for(codes)
        targets = table._router.choose(codes, first, second,
                                       table.subtable_sizes(),
                                       table.subtable_loads())
        table._insert_pending(codes, values, targets, excluded=None)
        return len(codes)

    seconds, moved = _measure(table, action)
    table.validate()
    return moved / seconds / 1e6


def _run_all():
    return {
        ("upsize", "resize strategy"): _upsize_strategy(),
        ("upsize", "rehash (Algorithm 1)"): _upsize_rehash(),
        ("downsize", "resize strategy"): _downsize_strategy(),
        ("downsize", "rehash (Algorithm 1)"): _downsize_rehash(),
    }


def test_fig8_resize_vs_rehash(benchmark):
    results = once(benchmark, _run_all)

    print()
    print(format_table(
        ["scenario", "mechanism", "Mops (entries relocated/s)"],
        [[scenario, mech, mops] for (scenario, mech), mops
         in results.items()],
        title="Figure 8: single-subtable resize throughput"))

    up_ratio = (results[("upsize", "resize strategy")]
                / results[("upsize", "rehash (Algorithm 1)")])
    down_ratio = (results[("downsize", "resize strategy")]
                  / results[("downsize", "rehash (Algorithm 1)")])
    checks = [
        (f"upsize: resize strategy beats rehash ({up_ratio:.1f}x)",
         up_ratio > 2.0),
        (f"downsize: resize strategy beats rehash ({down_ratio:.1f}x)",
         down_ratio > 1.2),
        ("rehash hurts more for upsizing than downsizing "
         "(eviction storms in a full structure)",
         up_ratio > down_ratio),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
