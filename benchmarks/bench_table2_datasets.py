"""Table 2 — dataset statistics.

Regenerates the paper's dataset summary table from the surrogate
generators and checks each stream matches its published fingerprint
(total pairs, unique keys, duplicate cap) at the benchmark scale.
"""

import numpy as np

from repro.bench import format_table
from repro.workloads import ALL_DATASETS

from benchmarks.common import SCALE, once


def _generate_all():
    rows = []
    for spec in ALL_DATASETS:
        keys, _values = spec.generate(scale=SCALE, seed=2)
        unique = len(np.unique(keys))
        counts = np.unique(keys, return_counts=True)[1]
        rows.append((spec, keys, unique, int(counts.max())))
    return rows


def test_table2_dataset_statistics(benchmark):
    rows = once(benchmark, _generate_all)

    table_rows = []
    for spec, keys, unique, max_dup in rows:
        table_rows.append([
            spec.name,
            f"{spec.total_pairs:,}",
            f"{spec.unique_keys:,}",
            f"{len(keys):,}",
            f"{unique:,}",
            max_dup,
        ])
    print()
    print(format_table(
        ["dataset", "paper KVs", "paper unique", f"KVs @ {SCALE}",
         f"unique @ {SCALE}", "max dup"],
        table_rows, title="Table 2: datasets (paper vs generated surrogate)"))

    for spec, keys, unique, max_dup in rows:
        assert len(keys) == round(spec.total_pairs * SCALE)
        assert unique == min(len(keys), round(spec.unique_keys * SCALE))
        assert max_dup <= spec.max_duplicates
    # RAND is fully unique; COM is the skewed one.
    by_name = {spec.name: (keys, unique, max_dup)
               for spec, keys, unique, max_dup in rows}
    assert by_name["RAND"][2] == 1
    assert by_name["COM"][2] >= 8
