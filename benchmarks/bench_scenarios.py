"""Scenario soaks — latency scorecards for the composed stress matrix.

Runs a representative slice of the scenario registry (a clean YCSB
mix, the chaos soak, and the fully composed kitchen sink) through
:func:`~repro.scenarios.run_scenario` at a reduced scale and reports
the simulated latency profile plus the activity counters the scorecard
grades: fault fires, resize aborts, stash high-water, and memory-budget
evictions.

Expected shapes: every scenario passes its scaled SLO; chaos scenarios
actually fire faults (a chaos soak with zero fires grades nothing);
the kitchen sink exercises storms, churn, pressure, and chaos in one
run.  With ``REPRO_BENCH_JSON`` set, results are also dumped as
``BENCH_scenarios.json`` for regression tracking.
"""

from repro.bench import format_table, shape_check
from repro.bench.artifacts import maybe_dump
from repro.scenarios import get_scenario, run_scenario

from benchmarks.common import once

#: Registry slice benchmarked: clean baseline, resize churn under the
#: tight band, pure chaos, everything.
SCENARIOS = ("ycsb_a_update_heavy", "resize_thrash", "chaos_soak",
             "kitchen_sink")

#: Fraction of the full-scale op counts driven per scenario.  0.08 is
#: the smallest slice where the chaos plan still lands a resize abort
#: on an insert-failure upsize (the stash-degradation witness) now
#: that bound-driven resizes open incremental epochs instead of
#: rehashing in place.
SCALE = 0.08


def _run_all() -> dict:
    return {name: run_scenario(get_scenario(name), scale=SCALE)
            for name in SCENARIOS}


def test_scenario_soak(benchmark):
    cards = once(benchmark, _run_all)
    maybe_dump("BENCH_scenarios", cards)

    print()
    print(format_table(
        ["scenario", "verdict", "p50 ns", "p99 ns", "worst ns",
         "faults", "aborts", "stash hw", "evicted"],
        [[name, card["verdict"], card["latency"]["p50"],
          card["latency"]["p99"], card["latency"]["worst"],
          card["faults"]["fired"], card["resizes"]["aborts"],
          card["stash"]["high_water"], card["memory"]["evictions"]]
         for name, card in cards.items()],
        title=f"Scenario soaks at scale={SCALE}", float_fmt="{:.1f}"))

    chaos = cards["chaos_soak"]
    kitchen = cards["kitchen_sink"]
    thrash = cards["resize_thrash"]
    thrash_slo = get_scenario("resize_thrash").slo
    checks = [
        ("every scenario passes its scaled SLO",
         all(card["verdict"] == "pass" for card in cards.values())),
        (f"resize thrash actually thrashes "
         f"({thrash['resizes']['upsizes']} up, "
         f"{thrash['resizes']['downsizes']} down)",
         thrash["resizes"]["upsizes"] > 0
         and thrash["resizes"]["downsizes"] > 0),
        (f"resize thrash migrates incrementally "
         f"({thrash['resizes']['migration_slices']} slices, "
         f"{thrash['resizes']['migrated_pairs']} pairs)",
         thrash["resizes"]["migration_slices"] > 0
         and thrash["resizes"]["migrated_pairs"] > 0),
        ("resize thrash never hits the capacity ceiling",
         thrash["resizes"]["capacity_blocked"] == 0),
        # Churn waves carry the resize storms; their per-op latency is
        # outside the request SLO but must not blow past the scenario's
        # worst-batch target either (the non-blocking-resize guarantee).
        (f"resize thrash churn waves stay under the worst-batch target "
         f"({thrash['latency_maintenance']['worst']:.1f} ns/op)",
         thrash["latency_maintenance"]["worst"] <= thrash_slo.worst_ns),
        (f"chaos soak fires faults ({chaos['faults']['fired']} fired)",
         chaos["faults"]["fired"] > 0),
        (f"chaos degrades into the stash "
         f"(high-water {chaos['stash']['high_water']})",
         chaos["stash"]["high_water"] > 0),
        (f"kitchen sink composes storm+churn "
         f"({kitchen['ops']['storm_batches']} storm, "
         f"{kitchen['ops']['churn_batches']} churn batches)",
         kitchen["ops"]["storm_batches"] > 0
         and kitchen["ops"]["churn_batches"] > 0),
        (f"kitchen sink evicts under its budget "
         f"({kitchen['memory']['evictions']} entries)",
         kitchen["memory"]["evictions"] > 0
         and kitchen["memory"]["budget_ok"]),
        ("sanitizer stays clean through the chaos",
         chaos["sanitizer"]["ok"] and kitchen["sanitizer"]["ok"]),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
