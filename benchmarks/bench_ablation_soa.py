"""Ablation — separate key/value arrays vs interleaved storage.

Figure 2's design stores keys and values in *separate* arrays ("the
values could take much larger memory space than the keys; storing keys
and values separately avoids the overhead of memory access when
accessing the values is not necessary, e.g., finding a nonexistent KV
pair or deleting a KV pair").

This ablation prices the same measured workload under both layouts:

* **SoA** (implemented): a probe reads the key line only; the value
  line is touched only on a hit that returns a value;
* **AoS** (counterfactual): keys and values interleave, so *every*
  probe drags the value bytes through the memory system — the miss- and
  delete-heavy costs the paper calls out.

The counterfactual is computed from the same event counts (a layout
change does not alter the algorithm), so the comparison is exact.

Two workload families are priced: the classic coincidence-free sweep
(unique keys through the host path) and a **duplicate-heavy** leg —
a high-fill, duplicate-majority upsert stream through the cohort
kernels, where evictions retarget duplicate carriers and the
vectorized key-coincidence (hazard) resolver runs.  The leg asserts
that it actually exercised the resolver, so this ablation can never
silently regress to pricing only the coincidence-free fast path.
"""

import numpy as np

from repro.bench import format_table, shape_check
from repro.core.batch_ops import OP_FIND, OP_INSERT
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.gpusim import GTX_1080
from repro.telemetry import Profiler

from benchmarks.common import once

N_KEYS = 40_000
LINE = GTX_1080.cache_line_bytes
BANDWIDTH = GTX_1080.effective_bandwidth_bytes_per_s

#: Duplicate-heavy leg geometry: 4 x 16 x 8 = 512 slots at ~75% fill,
#: with a keyspace small enough that every warp is duplicate-majority.
DUP_OPS = 8_000
DUP_BUCKETS = 16
DUP_CAPACITY = 8


def _measure(value_bytes_per_slot: int):
    """Run find/delete workloads; price key and value traffic per layout.

    ``value_bytes_per_slot`` scales the value payload (8 = the paper's
    4-byte-key/4-byte-value regime scaled to our 8-byte slots; 32/128 =
    fat values where the SoA argument grows teeth).
    """
    table = DyCuckooTable(DyCuckooConfig(initial_buckets=1024,
                                         bucket_capacity=16,
                                         auto_resize=False))
    rng = np.random.default_rng(41)
    keys = np.unique(rng.integers(1, 1 << 62, int(N_KEYS * 1.3)
                                  ).astype(np.uint64))[:N_KEYS]
    table.insert(keys, keys)

    results = {}
    for workload, run in (
            ("find (hits)", lambda: table.find(keys)),
            ("find (misses)", lambda: table.find(
                rng.integers(1 << 62, (1 << 63) - 1, N_KEYS
                             ).astype(np.uint64))),
            ("delete", lambda: table.delete(keys))):
        before = table.stats.snapshot()
        run()
        delta = table.stats.delta(before)
        probes = delta["bucket_reads"]
        hits = delta["find_hits"] + delta["delete_hits"]
        writes = delta["bucket_writes"]

        key_lines = probes + writes
        # SoA: value lines move only for hits returning/overwriting values.
        value_lines_per_touch = max(1, value_bytes_per_slot * 16 // LINE)
        soa_lines = key_lines + hits * value_lines_per_touch
        # AoS: every probed bucket drags its value bytes too.
        aos_lines = key_lines * (1 + value_lines_per_touch)

        soa_s = soa_lines * LINE / BANDWIDTH
        aos_s = aos_lines * LINE / BANDWIDTH
        results[workload] = (N_KEYS / soa_s / 1e6, N_KEYS / aos_s / 1e6)
        if workload == "delete":
            table.insert(keys, keys)  # restore for any later use
    return results


def _measure_duplicate_heavy(value_bytes_per_slot: int):
    """Price the layouts on a duplicate-majority cohort-kernel stream.

    An upsert-heavy batch where most keys repeat within a warp: under
    SoA an upsert that matches an existing key touches the value line
    once; under AoS every probed bucket drags value bytes along.  The
    stream runs at ~75% fill so evictions retarget duplicate carriers
    — the condition that drives the vectorized hazard resolver — and
    the traffic is taken from the kernel's own transaction counter.
    """
    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=DUP_BUCKETS, bucket_capacity=DUP_CAPACITY,
        auto_resize=False, seed=2))
    prof = table.set_profiler(Profiler())
    rng = np.random.default_rng(43)
    slots = 4 * DUP_BUCKETS * DUP_CAPACITY
    keyspace = slots * 3 // 4
    half = DUP_OPS // 2
    ops = np.concatenate([np.full(half, OP_INSERT),
                          np.full(DUP_OPS - half, OP_FIND)]
                         ).astype(np.int64)
    keys = rng.integers(1, keyspace + 1, DUP_OPS).astype(np.uint64)
    values = rng.integers(1, 1 << 40, DUP_OPS).astype(np.uint64)
    result = table.execute_mixed(ops, keys, values, engine="cohort")

    key_lines = result.kernel.memory_transactions
    value_touches = int(result.kernel.completed_ops
                        + result.found.sum())
    value_lines_per_touch = max(1, value_bytes_per_slot * 16 // LINE)
    soa_lines = key_lines + value_touches * value_lines_per_touch
    aos_lines = key_lines * (1 + value_lines_per_touch)
    soa_s = soa_lines * LINE / BANDWIDTH
    aos_s = aos_lines * LINE / BANDWIDTH
    return {
        "soa_mops": DUP_OPS / soa_s / 1e6,
        "aos_mops": DUP_OPS / aos_s / 1e6,
        "hazard_rounds": prof.hazard_rounds,
        "hazard_lanes": prof.hazard_lanes,
    }


def _run_all():
    results = {payload: _measure(payload) for payload in (8, 32, 128)}
    results["dup_heavy"] = {payload: _measure_duplicate_heavy(payload)
                            for payload in (8, 32, 128)}
    return results


def test_ablation_soa_layout(benchmark):
    all_results = once(benchmark, _run_all)
    dup_heavy = all_results["dup_heavy"]
    by_payload = {payload: results
                  for payload, results in all_results.items()
                  if payload != "dup_heavy"}

    rows = []
    for payload, results in by_payload.items():
        for workload, (soa, aos) in results.items():
            rows.append([f"{payload} B/value", workload, soa, aos,
                         soa / aos])
    for payload, leg in dup_heavy.items():
        rows.append([f"{payload} B/value", "dup-heavy upsert",
                     leg["soa_mops"], leg["aos_mops"],
                     leg["soa_mops"] / leg["aos_mops"]])
    print()
    print(format_table(
        ["value size", "workload", "SoA Mops", "AoS Mops", "SoA gain"],
        rows, title="Ablation: separate key/value arrays (Figure 2)",
        float_fmt="{:.1f}"))

    checks = []
    for payload, results in by_payload.items():
        for workload, (soa, aos) in results.items():
            checks.append(
                (f"{payload}B {workload}: SoA never slower", soa >= aos))
        miss_gain = results["find (misses)"][0] / results["find (misses)"][1]
        hit_gain = results["find (hits)"][0] / results["find (hits)"][1]
        checks.append((f"{payload}B: misses gain more than hits "
                       f"({miss_gain:.1f}x vs {hit_gain:.1f}x)",
                       miss_gain >= hit_gain))
    fat = by_payload[128]["find (misses)"]
    checks.append((f"fat values: SoA saves {fat[0] / fat[1]:.0f}x on "
                   "misses", fat[0] / fat[1] > 1.5))
    hazard_rounds = dup_heavy[8]["hazard_rounds"]
    checks.append(
        (f"dup-heavy leg drives the vectorized hazard resolver "
         f"({hazard_rounds} rounds, {dup_heavy[8]['hazard_lanes']} lanes)",
         hazard_rounds > 0))
    for payload, leg in dup_heavy.items():
        checks.append((f"{payload}B dup-heavy upsert: SoA never slower",
                       leg["soa_mops"] >= leg["aos_mops"]))

    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
