"""GPU profiling comparison (the paper's drafted profiling study).

The paper's evaluation draft profiles the INSERT kernels of all
approaches for warp efficiency and memory-bandwidth behaviour, observing
that the voter mechanism keeps DyCuckoo's warp efficiency high and that
the bucketized designs utilize the cache line where per-slot probing
cannot.  This benchmark reproduces that study with the
:mod:`repro.gpusim.profile` reports:

* DyCuckoo's insert warp efficiency stays high (the voter scheme keeps
  lanes doing useful work);
* the bucketized schemes (DyCuckoo, MegaKV) need fewer transactions per
  insert than per-slot CUDPP;
* FIND kernels profile cleanly for everyone (no atomics, full
  efficiency).
"""

import numpy as np

from repro.bench import format_table, shape_check
from repro.gpusim.profile import profile_operation

from benchmarks.common import (COST_MODEL, once, static_suite_for_slots,
                               trim_stream_to_unique)

TOTAL_SLOTS = 64 * 1024
THETA = 0.80


def _run_all():
    rng = np.random.default_rng(53)
    raw = rng.integers(1, 1 << 62, int(TOTAL_SLOTS * THETA * 1.4)
                       ).astype(np.uint64)
    quota = int(TOTAL_SLOTS * THETA)
    keys, values = trim_stream_to_unique(raw, raw, quota)
    suite = static_suite_for_slots(TOTAL_SLOTS, quota, THETA)

    profiles = {}
    for name, table in suite.items():
        insert_profile = profile_operation(
            table, f"{name}-insert", table.insert, keys, values,
            cost_model=COST_MODEL)
        find_profile = profile_operation(
            table, f"{name}-find", table.find, keys[:10_000],
            cost_model=COST_MODEL)
        profiles[name] = (insert_profile, find_profile)
    return profiles


def test_profiling_insert_kernels(benchmark):
    profiles = once(benchmark, _run_all)

    rows = []
    for name, (ins, find) in profiles.items():
        rows.append([name, ins.warp_efficiency, ins.transactions_per_op,
                     ins.atomics_per_op, find.warp_efficiency,
                     find.transactions_per_op])
    print()
    print(format_table(
        ["approach", "ins warp eff", "ins tx/op", "ins atomics/op",
         "find warp eff", "find tx/op"],
        rows, title="Profiling study: insert/find kernel counters",
        float_fmt="{:.2f}"))

    dy_ins, dy_find = profiles["DyCuckoo"]
    mega_ins, _ = profiles["MegaKV"]
    cudpp_ins, cudpp_find = profiles["CUDPP"]
    slab_ins, _ = profiles["SlabHash"]

    checks = [
        (f"DyCuckoo insert warp efficiency stays high "
         f"({dy_ins.warp_efficiency:.0%}; the voter scheme's claim)",
         dy_ins.warp_efficiency > 0.60),
        ("bucketized inserts need fewer tx/op than per-slot CUDPP",
         dy_ins.transactions_per_op < cudpp_ins.transactions_per_op
         and mega_ins.transactions_per_op < cudpp_ins.transactions_per_op),
        ("FIND kernels are lock-free and fully efficient",
         dy_find.warp_efficiency == 1.0
         and dy_find.atomics_per_op == 0.0),
        ("DyCuckoo is the only insert kernel paying lock atomics; "
         "MegaKV/CUDPP pay exchanges instead",
         dy_ins.atomics_per_op > 0 and mega_ins.atomics_per_op > 0),
        ("chaining pays more insert transactions than DyCuckoo "
         f"({slab_ins.transactions_per_op:.2f} vs "
         f"{dy_ins.transactions_per_op:.2f})",
         slab_ins.transactions_per_op > dy_ins.transactions_per_op),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
