"""Extension — YCSB core workloads across all dynamic approaches.

Not a paper figure: an industry-standard sanity check that the paper's
conclusions generalize beyond its own protocol.  Expected shapes follow
directly from the paper's analysis:

* read-dominated mixes (B, C) favour the plain two-probe schemes, with
  MegaKV's lighter hashing giving it the edge on pure reads;
* update-heavy mixes (A, F) favour DyCuckoo (bigger buckets, fewer
  evictions, update-in-place);
* SlabHash trails everywhere once its chains are sized for a realistic
  filled factor.
"""


from repro.bench import execute_operations, format_table, shape_check
from repro.gpusim.metrics import CostModel
from repro.workloads import CORE_WORKLOADS, YcsbWorkload

from benchmarks.common import (make_dycuckoo_dynamic, make_megakv_dynamic,
                               make_slab_dynamic, once)

NUM_RECORDS = 20_000
NUM_OPERATIONS = 60_000
BATCH = 5_000
COST = CostModel(overhead_scale=0.02)


def _mix_compute_ns(table, operations) -> float:
    costs = table.KERNEL_COSTS
    per_kind = {"insert": costs.insert_ns, "find": costs.find_ns,
                "delete": costs.delete_ns}
    total = sum(len(op) for op in operations)
    return (sum(len(op) * per_kind[op.kind] for op in operations) / total
            if total else costs.find_ns)


def _run_all():
    results = {}
    for name in sorted(CORE_WORKLOADS):
        for factory in (make_dycuckoo_dynamic, make_megakv_dynamic,
                        lambda: make_slab_dynamic(NUM_RECORDS)):
            workload = YcsbWorkload(CORE_WORKLOADS[name],
                                    num_records=NUM_RECORDS,
                                    num_operations=NUM_OPERATIONS,
                                    batch_size=BATCH, seed=3)
            table = factory()
            load = workload.load_phase()
            table.insert(load.keys, load.values)

            seconds = 0.0
            ops_total = 0
            for batch in workload.run_phase():
                before = table.stats.snapshot()
                ops = execute_operations(table, batch.operations)
                delta = table.stats.delta(before)
                seconds += COST.batch_seconds(
                    delta, ops, _mix_compute_ns(table, batch.operations),
                    kernel_launches=len(batch.operations))
                ops_total += ops
            results[(name, table.NAME)] = ops_total / seconds / 1e6
    return results


def test_ycsb_core_workloads(benchmark):
    results = once(benchmark, _run_all)
    workload_names = sorted(CORE_WORKLOADS)
    approaches = ("DyCuckoo", "MegaKV", "SlabHash")

    rows = [[name] + [results[(wl, name)] for wl in workload_names]
            for name in approaches]
    print()
    print(format_table(["approach"] + [f"YCSB-{w}" for w in workload_names],
                       rows, title="Extension: YCSB core workloads (Mops)"))

    checks = []
    for wl in workload_names:
        dy = results[(wl, "DyCuckoo")]
        slab = results[(wl, "SlabHash")]
        checks.append((f"YCSB-{wl}: DyCuckoo beats SlabHash", dy > slab))
    # Update-heavy favours DyCuckoo over MegaKV.
    checks.append(("YCSB-A (update-heavy): DyCuckoo >= MegaKV",
                   results[("A", "DyCuckoo")]
                   >= results[("A", "MegaKV")] * 0.98))
    # Pure reads are where MegaKV's lighter hashing shows; the margin is
    # small either way (Fig. 9's "slightly inferior").
    checks.append(("YCSB-C (read-only): MegaKV within 2% of DyCuckoo",
                   results[("C", "MegaKV")]
                   >= results[("C", "DyCuckoo")] * 0.98))

    print()
    for label, ok in checks:
        print(shape_check(label, ok))
    failures = [label for label, ok in checks if not ok]
    assert not failures, failures
