"""Figure 7 — DyCuckoo throughput while varying the number of subtables.

The paper fixes the total memory (default filled factor) and sweeps the
subtable count ``d``.  FIND stays flat because the two-layer scheme
always probes at most two buckets — reproduced.

The paper additionally reports INSERT throughput *increasing* with
``d``.  Our implementation reproduces d-independent insert throughput
instead, which is what the paper's own Theorem 2 predicts (the
two-layer scheme has the same expected amortized insert complexity as a
plain 2-table cuckoo for every ``d``).  This deviation is recorded in
EXPERIMENTS.md; the benchmark asserts insert throughput does not
*degrade* with ``d``, i.e. the extra subtables that make resizing cheap
(Figure 8) come at no insert cost.
"""

import numpy as np

from repro.baselines import DyCuckooAdapter
from repro.bench import format_table, run_static, shape_check
from repro.core.config import DyCuckooConfig

from benchmarks.common import COST_MODEL, STATIC_FINDS, once

TABLE_COUNTS = (2, 3, 4, 5, 6, 8)
TOTAL_SLOTS = 64 * 1024
THETA = 0.85


def _sweep():
    rows = []
    for d in TABLE_COUNTS:
        # Per-d geometry: 32-slot buckets, per-table bucket count the
        # largest power of two fitting the budget; the key count scales
        # so every configuration runs at exactly THETA.
        per_table = max(8, TOTAL_SLOTS // (d * 32))
        power = 8
        while power * 2 <= per_table:
            power *= 2
        slots = d * power * 32
        n_keys = int(slots * THETA)
        rng = np.random.default_rng(7)
        keys = np.unique(rng.integers(1, 1 << 62, int(n_keys * 1.3)
                                      ).astype(np.uint64))[:n_keys]
        values = keys * np.uint64(3)
        table = DyCuckooAdapter(DyCuckooConfig(
            num_tables=d, bucket_capacity=32, initial_buckets=power,
            auto_resize=False))
        result = run_static(table, keys, values, num_finds=STATIC_FINDS,
                            cost_model=COST_MODEL)
        rows.append((d, result.insert_mops, result.find_mops,
                     table.stats.evictions / n_keys))
    return rows


def test_fig7_vary_number_of_tables(benchmark):
    rows = once(benchmark, _sweep)

    print()
    print(format_table(
        ["d (subtables)", "insert Mops", "find Mops", "evictions/key"],
        rows, title="Figure 7: DyCuckoo throughput vs number of subtables",
        float_fmt="{:.3f}"))

    inserts = [row[1] for row in rows]
    finds = [row[2] for row in rows]

    checks = [
        ("insert throughput does not degrade with d (Theorem 2)",
         min(inserts) / max(inserts) > 0.90),
        ("find throughput flat in d (two-layer: always <= 2 probes)",
         max(finds) / min(finds) < 1.15),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
    print("  [NOTE] paper's Fig. 7 reports insert Mops rising with d; "
          "our two-layer build is d-flat, matching the paper's Theorem 2 "
          "(see EXPERIMENTS.md)")
