"""Figure 5 — atomic-operation throughput under increasing conflicts.

The paper profiles atomicCAS and atomicExch against an equivalent amount
of sequential (coalesced) device IO while raising the number of atomics
that land on the same address.  Expected shape: both atomics degrade
severely as conflicts grow (CAS below Exch throughout), while the
coalesced-IO baseline is flat.
"""

from repro.bench import format_table, shape_check
from repro.gpusim import (atomic_throughput_mops,
                          coalesced_io_throughput_mops)

from benchmarks.common import once

NUM_OPS = 1 << 18
CONFLICT_DEGREES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _profile():
    rows = []
    for degree in CONFLICT_DEGREES:
        rows.append((
            degree,
            atomic_throughput_mops(NUM_OPS, degree, cas=True),
            atomic_throughput_mops(NUM_OPS, degree, cas=False),
            coalesced_io_throughput_mops(NUM_OPS),
        ))
    return rows


def test_fig5_atomic_contention(benchmark):
    rows = once(benchmark, _profile)

    print()
    print(format_table(
        ["conflicts/address", "atomicCAS Mops", "atomicExch Mops",
         "coalesced IO Mops"],
        rows, title="Figure 5: atomic throughput vs conflict degree"))

    cas = [row[1] for row in rows]
    exch = [row[2] for row in rows]
    io = [row[3] for row in rows]

    checks = [
        ("atomicCAS throughput monotonically degrades",
         all(a >= b for a, b in zip(cas, cas[1:]))),
        ("atomicExch throughput monotonically degrades",
         all(a >= b for a, b in zip(exch, exch[1:]))),
        ("atomicExch outpaces atomicCAS at every degree",
         all(e > c for e, c in zip(exch, cas))),
        ("degradation is severe (>20x from degree 1 to 1024)",
         cas[0] / cas[-1] > 20),
        ("coalesced IO is flat and fastest",
         len(set(io)) == 1 and io[0] > max(cas[0], exch[0])),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
