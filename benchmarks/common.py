"""Shared configuration and factories for the benchmark suite.

Everything runs at :data:`SCALE` of the paper's data sizes (the
simulator executes on a CPU); the cost model scales its fixed overheads
identically so relative results match the full-size system (see
``CostModel.overhead_scale``).  Table geometries follow each design's
native layout at equal total memory:

* DyCuckoo — 4 subtables, 32-slot buckets (Figure 2),
* MegaKV — 2 subtables, 8-slot buckets (its published geometry),
* CUDPP — per-slot, automatic function count,
* SlabHash — 15-pair slabs, bucket count from the target fill.
"""

from __future__ import annotations

import subprocess

import numpy as np

from repro.baselines import (CudppHashTable, DyCuckooAdapter, MegaKVTable,
                             SlabHashTable)
from repro.baselines.slab import slab_buckets_for_fill
from repro.core.config import DyCuckooConfig
from repro.gpusim.metrics import CostModel

#: Fraction of the paper's dataset sizes the benchmarks run at.
SCALE = 0.001

#: Insert batch size (the paper's default 1e6, scaled).
BATCH_SIZE = 1_000

#: FIND queries for the static experiments (the paper's 1e6, scaled).
STATIC_FINDS = 1_000

#: Cost model with overheads scaled to match the data scale.
COST_MODEL = CostModel(overhead_scale=SCALE)


def power_of_two_at_least(n: int) -> int:
    """Smallest power of two >= n (and >= 8)."""
    p = 8
    while p < n:
        p *= 2
    return p


def largest_power_of_two_at_most(n: int) -> int:
    """Largest power of two <= n (and >= 8)."""
    p = 8
    while p * 2 <= n:
        p *= 2
    return p


def trim_stream_to_unique(keys: np.ndarray, values: np.ndarray,
                          unique_quota: int
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Prefix of the stream containing exactly ``unique_quota`` distinct keys.

    The paper sizes its tables freely for the dataset; our bucket counts
    are powers of two, so the static experiments instead trim the stream
    to the largest configuration that fits — every approach then runs at
    *exactly* the target filled factor, which is what the comparison is
    about.  Trimming a prefix preserves the duplicate structure.
    """
    from repro.core.grouping import first_occurrence_mask

    cumulative_unique = np.cumsum(first_occurrence_mask(keys))
    if cumulative_unique[-1] < unique_quota:
        raise ValueError(
            f"stream has {cumulative_unique[-1]} unique keys < quota "
            f"{unique_quota}")
    cut = int(np.searchsorted(cumulative_unique, unique_quota)) + 1
    return keys[:cut], values[:cut]


def static_suite_for_slots(total_slots: int, expected_unique: int,
                           target_fill: float = 0.85) -> dict:
    """All four approaches with ``total_slots`` of bucketized capacity.

    ``total_slots`` must be a multiple of 128 and a power of two so both
    bucketized geometries (DyCuckoo 4x32, MegaKV 2x8) hit it exactly;
    CUDPP and SlabHash size themselves for ``expected_unique`` at the
    same fill.
    """
    return {
        "DyCuckoo": DyCuckooAdapter(DyCuckooConfig(
            num_tables=4, bucket_capacity=32,
            initial_buckets=total_slots // (4 * 32), auto_resize=False)),
        "MegaKV": MegaKVTable(initial_buckets=total_slots // (2 * 8),
                              bucket_capacity=8, auto_resize=False),
        "CUDPP": CudppHashTable(expected_unique, target_fill=target_fill),
        "SlabHash": SlabHashTable(
            n_buckets=slab_buckets_for_fill(expected_unique, target_fill)),
    }


def make_dycuckoo_dynamic(**overrides) -> DyCuckooAdapter:
    """DyCuckoo starting small, growing with the workload."""
    config = dict(num_tables=4, bucket_capacity=32, initial_buckets=8,
                  min_buckets=8)
    config.update(overrides)
    return DyCuckooAdapter(DyCuckooConfig(**config))


def make_megakv_dynamic(**overrides) -> MegaKVTable:
    """MegaKV with the naive double/half resize strategy."""
    config = dict(initial_buckets=32, bucket_capacity=8)
    config.update(overrides)
    return MegaKVTable(**config)


def make_slab_dynamic(expected_live: int, target_fill: float = 0.85
                      ) -> SlabHashTable:
    """SlabHash sized for the expected live set at the target fill."""
    return SlabHashTable(
        n_buckets=slab_buckets_for_fill(max(1, expected_live), target_fill))


def make_static_suite(num_keys: int, target_fill: float = 0.85) -> dict:
    """All four approaches pre-sized for a static experiment.

    Every bucketized table gets the same total slot budget
    (``num_keys / target_fill`` rounded up to its geometry).
    """
    slots_needed = int(num_keys / target_fill)
    dy_buckets = power_of_two_at_least(slots_needed // (4 * 32))
    mega_buckets = power_of_two_at_least(slots_needed // (2 * 8))
    return {
        "DyCuckoo": DyCuckooAdapter(DyCuckooConfig(
            num_tables=4, bucket_capacity=32, initial_buckets=dy_buckets,
            auto_resize=False)),
        "MegaKV": MegaKVTable(initial_buckets=mega_buckets,
                              bucket_capacity=8, auto_resize=False),
        "CUDPP": CudppHashTable(num_keys, target_fill=target_fill),
        "SlabHash": SlabHashTable(
            n_buckets=slab_buckets_for_fill(num_keys, target_fill)),
    }


#: stderr lines containing any of these markers are environment noise
#: from conda activation (e.g. "/root/.condarc: parse error"), not
#: output of the command under test.
_STDERR_NOISE_MARKERS = ("condarc", "conda activate", "CondaError",
                         "EnvironmentNameNotFound")


def clean_stderr(text: str) -> str:
    """Strip conda-activation warning noise from a captured stderr.

    Some container images ship a broken ``~/.condarc``; every
    subprocess then prints parse warnings to stderr that have nothing
    to do with the command being run.  Assertions on stderr (and error
    messages built from it) should see only the real output.
    """
    if not text:
        return text
    kept = [line for line in text.splitlines()
            if not any(marker in line for marker in _STDERR_NOISE_MARKERS)]
    return "\n".join(kept)


def run_quiet(cmd, **kwargs) -> subprocess.CompletedProcess:
    """``subprocess.run`` with output captured and stderr de-noised.

    Returns the completed process with ``stderr`` already passed
    through :func:`clean_stderr`.
    """
    kwargs.setdefault("capture_output", True)
    kwargs.setdefault("text", True)
    result = subprocess.run(cmd, **kwargs)
    result.stderr = clean_stderr(result.stderr)
    return result


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The interesting measurements are the *simulated* GPU times computed
    inside ``fn``; pytest-benchmark wall-clock numbers only document how
    long the simulation itself takes on the host.  With the
    ``REPRO_BENCH_JSON`` environment variable set to a directory, the
    returned results are additionally dumped there as JSON.
    """
    from repro.bench.artifacts import maybe_dump

    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    maybe_dump(getattr(benchmark, "name", fn.__module__), result)
    return result
