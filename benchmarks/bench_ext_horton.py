"""Extension — the Horton-table trade-off the paper cites but skips.

Section III: "Horton table improves the efficiency of FIND over MegaKV
by trading with the cost of introducing a KV remapping mechanism [...]
we do not compare with it since it only improves MegaKV marginally
using a more costly insertion process."

This benchmark quantifies exactly that trade on the static workload:
Horton's FIND should average close to one bucket probe (vs ~1.5 for the
two-probe cuckoos) while its INSERT trails MegaKV's.
"""

import numpy as np

from repro.baselines import DyCuckooAdapter, HortonTable, MegaKVTable
from repro.bench import format_table, run_static, shape_check
from repro.core.config import DyCuckooConfig

from benchmarks.common import COST_MODEL, STATIC_FINDS, once

TOTAL_SLOTS = 64 * 1024
THETA = 0.80


def _run_all():
    n_keys = int(TOTAL_SLOTS * THETA)
    rng = np.random.default_rng(31)
    keys = np.unique(rng.integers(1, 1 << 62, int(n_keys * 1.3)
                                  ).astype(np.uint64))[:n_keys]
    values = keys * np.uint64(3)
    tables = {
        "DyCuckoo": DyCuckooAdapter(DyCuckooConfig(
            num_tables=4, bucket_capacity=32,
            initial_buckets=TOTAL_SLOTS // (4 * 32), auto_resize=False)),
        "MegaKV": MegaKVTable(initial_buckets=TOTAL_SLOTS // (2 * 8),
                              bucket_capacity=8, auto_resize=False),
        "Horton": HortonTable(expected_entries=n_keys, target_fill=THETA),
    }
    results = {}
    for name, table in tables.items():
        run = run_static(table, keys, values, num_finds=STATIC_FINDS,
                         cost_model=COST_MODEL)
        results[name] = (run, table)
    return results


def test_ext_horton_tradeoff(benchmark):
    results = once(benchmark, _run_all)

    rows = [[name, run.insert_mops, run.find_mops, run.fill_factor]
            for name, (run, _table) in results.items()]
    print()
    print(format_table(
        ["approach", "insert Mops", "find Mops", "fill"],
        rows, title="Extension: Horton vs the bucketized cuckoos",
        float_fmt="{:.2f}"))

    # Horton's probe count on a clean hit-only query batch.
    rng = np.random.default_rng(7)
    probes = {}
    horton_table = results["Horton"][1]
    occupied = horton_table.keys[horton_table.keys != 0]
    sample = (rng.choice(occupied, 5000) - np.uint64(1)).astype(np.uint64)
    before = horton_table.stats.snapshot()
    horton_table.find(sample)
    delta = horton_table.stats.delta(before)
    probes["Horton"] = delta["bucket_reads"] / 5000

    horton = results["Horton"][0]
    mega = results["MegaKV"][0]
    horton_table = results["Horton"][1]
    checks = [
        (f"Horton FIND beats MegaKV's "
         f"({horton.find_mops:.0f} vs {mega.find_mops:.0f} Mops)",
         horton.find_mops > mega.find_mops),
        (f"Horton FIND averages near one probe "
         f"({probes.get('Horton', 99):.2f}/find)",
         probes.get("Horton", 99) < 1.35),
        ("Horton pays the remapping machinery: type-B conversions and "
         f"displacement evictions occurred "
         f"({int(horton_table.is_type_b.sum())} conversions, "
         f"{horton_table.stats.evictions} displacements)",
         bool(horton_table.is_type_b.any())),
    ]
    print()
    for label, ok in checks:
        print(shape_check(label, ok))
        assert ok, label
    print("  [NOTE] the cited 'more costly insertion' applies to raw "
          "inserts; under this library's upsert semantics Horton's "
          "miss-fast probes also speed up the duplicate pre-check, so "
          "its batched insert throughput is competitive here.")
