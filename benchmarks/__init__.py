"""Benchmark suite regenerating every table and figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each ``bench_*`` file corresponds to one paper artifact (see DESIGN.md's
experiment index); ``-s`` shows the paper-style result tables.  Shape
assertions run regardless of ``-s``, so a passing suite means every
reproduced qualitative claim held.
"""
