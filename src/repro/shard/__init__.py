"""Sharded front-end: ``S`` independent DyCuckoo tables, one interface.

:class:`ShardedDyCuckoo` partitions the key space over independent
:class:`~repro.core.table.DyCuckooTable` shards using high bits of a
dedicated hash (composing with the two-layer scheme, which consumes low
bits), dispatches batches by vectorized scatter/gather, lets each shard
resize inside its own ``[alpha, beta]`` band — so one resize locks only
``1/(S*d)`` of the data — and rolls per-shard stats and telemetry up
into fleet-wide views.  :func:`simulate_shard_speedup` prices the
sharded schedule on disjoint SM groups of one simulated GPU against
serial execution on the whole device.

See ``docs/sharding.md`` for the routing scheme, the semantics
contract, and the cost-model assumptions.
"""

from repro.shard.cost import (ShardSpeedupReport, simulate_shard_speedup,
                              speedup_for_table)
from repro.shard.sharded import ShardedDyCuckoo

__all__ = [
    "ShardedDyCuckoo",
    "ShardSpeedupReport",
    "simulate_shard_speedup",
    "speedup_for_table",
]
