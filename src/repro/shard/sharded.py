"""The sharded DyCuckoo front-end.

:class:`ShardedDyCuckoo` partitions the key space across ``S``
independent :class:`~repro.core.table.DyCuckooTable` shards.  The shard
id comes from the *high* bits of a dedicated first-level hash, so it
composes cleanly with the per-table machinery, which consumes low bits
(bucket selection masks the low bits of each second-layer hash) and an
independent function (the pair hash) — a key's shard, pair, and buckets
are pairwise-independent decisions.

Why shard a table that already resizes one subtable at a time?  The
same argument DyCuckoo makes for subtables, applied once more: a resize
locks one subtable of one shard, i.e. ``1 / (S * d)`` of the data, so
the rest of the structure keeps serving (DHash makes the equivalent
point with per-partition structural changes, and Maier & Sanders'
dynamic space-efficient hashing grows and shrinks per region).  Each
shard keeps its own ``[alpha, beta]`` band and resizes on its own
schedule, so a hot shard can grow while a cooling shard shrinks.

Semantics are exactly those of a single table:

* all dispatch is vectorized scatter/gather — one boolean-mask pass per
  shard, results written back in input positions;
* duplicate keys land in the same shard, and scatter preserves input
  order, so the batched duplicate rules (insert last-wins, delete
  first-occurrence) carry over verbatim;
* a mixed batch is scattered *whole*: per shard, the key-disjoint
  subsequence runs through :func:`repro.core.batch_ops.execute_mixed`,
  preserving program order per key (operations on different keys
  commute, operations on the same key share a shard).

Observability: each shard carries its own telemetry handle; the
front-end rolls the per-shard registries into one labelled view (see
:func:`repro.telemetry.aggregate.merge_registries`) and merges
:class:`~repro.core.stats.TableStats` on demand.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext

import numpy as np

from repro.baselines.base import GpuHashTable
from repro.core.batch_ops import MixedBatchResult
from repro.core.batch_ops import execute_mixed as _execute_mixed
from repro.core.config import DyCuckooConfig, replace_config
from repro.core.hashing import UniversalHash
from repro.core.stats import MemoryFootprint, TableStats
from repro.core.table import DyCuckooTable, encode_keys
from repro.errors import InvalidConfigError
from repro.gpusim.metrics import KernelCosts
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.aggregate import merge_registries

#: Seed salt deriving the shard-router hash from the table seed.
_SHARD_HASH_SALT = 0x5A4D

#: Infrastructure failures that trip the serial fallback (as opposed to
#: application errors — e.g. ``CapacityError`` — which propagate).
_POOL_ERRORS = (BrokenProcessPool, OSError, pickle.PicklingError)


def _shard_worker(shard: DyCuckooTable, op_codes, keys, values,
                  engine: str | None):
    """Run one shard's mixed subsequence in a worker process.

    The shard table travels by value (pickle), mutates in the worker,
    and is shipped back whole; the parent replaces its copy only after
    every shard's future has resolved, so a failed batch leaves the
    parent's shards untouched.
    """
    result = _execute_mixed(shard, op_codes, keys, values, engine=engine)
    return shard, result


class ShardedDyCuckoo(GpuHashTable):
    """``S`` independent DyCuckoo shards behind the one-table interface.

    Parameters
    ----------
    num_shards:
        Shard count ``S`` (a power of two, so the shard id is exactly
        the top ``log2(S)`` bits of the shard hash).
    config:
        Base configuration applied to every shard.  Each shard's hash
        constants are derived from ``config.seed`` XOR the shard index,
        so no two shards share hash functions — an adversarial key set
        that stresses one shard's functions leaves the others alone.
    shard_configs:
        Optional per-shard configuration overrides (length ``S``).  Use
        this to give shards individual ``[alpha, beta]`` bands or
        capacity ceilings; entries of ``None`` fall back to the derived
        base configuration.
    parallel_workers:
        Worker-process count for :meth:`execute_mixed`.  ``None`` (the
        default), ``0``, or ``1`` keep the serial path; ``>= 2`` runs
        shard subsequences concurrently in a process pool.  Shards
        share nothing by construction, so results, ``runs``, and merged
        kernel counters are bit-identical to serial execution: workers
        resolve behind a barrier and merge strictly in shard-index
        order.  Batches with any instrumentation attached (telemetry,
        sanitizer, fault plan, profiler, flight recorder) run serially
        regardless, since those handles are shared mutable state; pool
        infrastructure failures also fall back to serial (permanently
        for the instance) without losing shard state.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.shard import ShardedDyCuckoo
    >>> table = ShardedDyCuckoo(num_shards=4)
    >>> table.insert(np.arange(100, dtype=np.uint64),
    ...              np.arange(100, dtype=np.uint64) * 2)
    >>> values, found = table.find(np.array([3, 999], dtype=np.uint64))
    >>> bool(found[0]), bool(found[1]), int(values[0])
    (True, False, 6)
    """

    NAME = "ShardedDyCuckoo"
    KERNEL_COSTS = KernelCosts(find_ns=0.44, insert_ns=0.38, delete_ns=0.44)

    def __init__(self, num_shards: int = 4,
                 config: DyCuckooConfig | None = None,
                 shard_configs=None,
                 parallel_workers: int | None = None) -> None:
        if num_shards < 1 or num_shards & (num_shards - 1):
            raise InvalidConfigError(
                f"num_shards must be a positive power of two, got {num_shards}"
            )
        if parallel_workers is not None and parallel_workers < 0:
            raise InvalidConfigError(
                f"parallel_workers must be >= 0, got {parallel_workers}"
            )
        self.num_shards = num_shards
        self.config = config or DyCuckooConfig()
        if shard_configs is not None and len(shard_configs) != num_shards:
            raise InvalidConfigError(
                f"shard_configs must have {num_shards} entries, "
                f"got {len(shard_configs)}"
            )
        self.shards: list[DyCuckooTable] = []
        for idx in range(num_shards):
            override = shard_configs[idx] if shard_configs else None
            shard_config = override or replace_config(
                self.config, seed=self.config.seed ^ (idx << 17))
            self.shards.append(DyCuckooTable(shard_config))
        #: log2(S) — the number of high hash bits consumed by routing.
        self._shard_bits = num_shards.bit_length() - 1
        rng = np.random.default_rng(self.config.seed ^ _SHARD_HASH_SALT)
        self._shard_hash = UniversalHash.random(rng)
        self.telemetry = NULL_TELEMETRY
        #: Requested worker-process count for ``execute_mixed``.
        #: ``None``/0/1 means serial; capped at ``num_shards``.
        self.parallel_workers = parallel_workers
        self._executor: ProcessPoolExecutor | None = None
        self._parallel_broken = False

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------

    def shard_ids(self, keys) -> np.ndarray:
        """Shard index per key: the top ``log2(S)`` bits of the hash."""
        return self._shard_of_codes(encode_keys(keys))

    def _shard_of_codes(self, codes: np.ndarray) -> np.ndarray:
        if self._shard_bits == 0:
            return np.zeros(len(codes), dtype=np.int64)
        raw = self._shard_hash.raw(codes)  # 31-bit values
        return (raw >> np.uint64(31 - self._shard_bits)).astype(np.int64)

    def _scatter(self, keys) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return ``(codes, per-shard index arrays)`` for one batch."""
        codes = encode_keys(keys)
        ids = self._shard_of_codes(codes)
        return codes, [np.flatnonzero(ids == s)
                       for s in range(self.num_shards)]

    # ------------------------------------------------------------------
    # Batched operations (vectorized scatter/gather)
    # ------------------------------------------------------------------

    def insert(self, keys, values) -> None:
        """Upsert a batch; each shard ingests its key-disjoint slice."""
        keys = np.asarray(keys, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        _codes, selections = self._scatter(keys)
        ctx = (self.telemetry.tracer.span("shard.insert", "shard",
                                          n=len(keys))
               if self.telemetry.enabled else nullcontext())
        with ctx:
            for shard, sel in zip(self.shards, selections):
                if len(sel):
                    shard.insert(keys[sel], values[sel])

    def find(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Look up a batch; results gathered back to input positions."""
        keys = np.asarray(keys, dtype=np.uint64)
        _codes, selections = self._scatter(keys)
        values = np.zeros(len(keys), dtype=np.uint64)
        found = np.zeros(len(keys), dtype=bool)
        for shard, sel in zip(self.shards, selections):
            if len(sel):
                shard_values, shard_found = shard.find(keys[sel])
                values[sel] = shard_values
                found[sel] = shard_found
        return values, found

    def delete(self, keys) -> np.ndarray:
        """Delete a batch; removed mask gathered to input positions."""
        keys = np.asarray(keys, dtype=np.uint64)
        _codes, selections = self._scatter(keys)
        removed = np.zeros(len(keys), dtype=bool)
        for shard, sel in zip(self.shards, selections):
            if len(sel):
                removed[sel] = shard.delete(keys[sel])
        return removed

    def contains(self, keys) -> np.ndarray:
        """Membership test for a batch of keys."""
        _values, found = self.find(keys)
        return found

    def get(self, key: int, default: int | None = None):
        """Scalar convenience lookup; returns ``default`` when absent."""
        values, found = self.find(np.asarray([key], dtype=np.uint64))
        return int(values[0]) if bool(found[0]) else default

    def execute_mixed(self, op_codes, keys, values=None,
                      engine: str | None = None) -> MixedBatchResult:
        """Run a mixed insert/find/delete batch across the shards.

        The whole operation stream is scattered by key: each shard
        executes its subsequence (in program order) through the standard
        mixed-batch machinery, and the per-position results are gathered
        back.  Because every operation on a given key maps to the same
        shard, per-key program order — the semantics contract of
        :func:`repro.core.batch_ops.execute_mixed` — is preserved while
        shards proceed independently.  ``runs`` is the total number of
        homogeneous sub-batches summed over shards.

        ``engine`` is forwarded to every shard's mixed executor;
        ``"warp"`` / ``"cohort"`` run the lane-faithful kernels per
        shard, and ``.kernel`` carries the counters summed over shards.
        """
        op_codes = np.asarray(op_codes, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.uint64)
        if op_codes.shape != keys.shape:
            raise InvalidConfigError("op_codes and keys must have equal length")
        if values is not None:
            values = np.asarray(values, dtype=np.uint64)
        n = len(keys)
        out_values = np.zeros(n, dtype=np.uint64)
        out_found = np.zeros(n, dtype=bool)
        out_removed = np.zeros(n, dtype=bool)
        runs = 0
        kernel_total = None
        if n == 0:
            return MixedBatchResult(out_values, out_found, out_removed, runs)
        _codes, selections = self._scatter(keys)
        results = None
        if self._parallel_eligible(selections):
            results = self._execute_shards_parallel(
                selections, op_codes, keys, values, engine)
        if results is None:
            results = [
                _execute_mixed(shard, op_codes[sel], keys[sel],
                               values[sel] if values is not None else None,
                               engine=engine)
                if len(sel) else None
                for shard, sel in zip(self.shards, selections)
            ]
        for sel, result in zip(selections, results):
            if result is None:
                continue
            out_values[sel] = result.values
            out_found[sel] = result.found
            out_removed[sel] = result.removed
            runs += result.runs
            if result.kernel is not None:
                kernel_total = (result.kernel if kernel_total is None
                                else kernel_total.merge(result.kernel))
        return MixedBatchResult(out_values, out_found, out_removed, runs,
                                kernel_total)

    # ------------------------------------------------------------------
    # Parallel shard execution
    # ------------------------------------------------------------------

    def _parallel_eligible(self, selections) -> bool:
        """True when this batch may run on the process pool.

        Requires ``parallel_workers >= 2``, more than one shard with
        work (otherwise the pickling round-trip buys nothing), a
        healthy pool, and no instrumentation anywhere: telemetry,
        sanitizer, fault plans, profilers and recorders are shared
        mutable handles whose event streams are defined by sequential
        shard order, so instrumented batches always take the serial
        path.
        """
        if self._parallel_broken or self.num_shards < 2:
            return False
        if self.parallel_workers is None or self.parallel_workers < 2:
            return False
        if sum(1 for sel in selections if len(sel)) < 2:
            return False
        if self.telemetry.enabled:
            return False
        return not any(
            shard.telemetry.enabled or shard.sanitizer.enabled
            or shard.faults.enabled or shard.profiler.enabled
            or shard.recorder.enabled
            for shard in self.shards
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=min(self.parallel_workers, self.num_shards))
        return self._executor

    def _execute_shards_parallel(self, selections, op_codes, keys, values,
                                 engine):
        """Fan shard subsequences out to the pool; barrier, then merge.

        Returns per-shard results aligned with ``selections`` (``None``
        for idle shards), or ``None`` to request the serial fallback
        after an infrastructure failure.  Shard replacement happens
        only after *every* future resolves, so both an application
        error (which propagates) and a pool failure leave the parent's
        shards exactly as they were.
        """
        try:
            executor = self._ensure_executor()
            futures = [
                executor.submit(
                    _shard_worker, shard, op_codes[sel], keys[sel],
                    values[sel] if values is not None else None, engine)
                if len(sel) else None
                for shard, sel in zip(self.shards, selections)
            ]
            collected = [future.result() if future is not None else None
                         for future in futures]
        except _POOL_ERRORS:
            self._shutdown_pool(broken=True)
            return None
        results = []
        for idx, entry in enumerate(collected):
            if entry is None:
                results.append(None)
                continue
            shard, result = entry
            self.shards[idx] = shard
            results.append(result)
        return results

    def _shutdown_pool(self, broken: bool = False) -> None:
        if broken:
            self._parallel_broken = True
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def close(self) -> None:
        """Release the worker pool (no-op when running serially)."""
        self._shutdown_pool()

    def __enter__(self) -> "ShardedDyCuckoo":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection and roll-ups
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def total_slots(self) -> int:
        """Allocated key slots across all shards."""
        return sum(shard.total_slots for shard in self.shards)

    @property
    def load_factor(self) -> float:
        """Fleet-wide filled factor (live entries / allocated slots)."""
        slots = self.total_slots
        return len(self) / slots if slots else 0.0

    @property
    def shard_load_factors(self) -> list[float]:
        """Per-shard filled factors."""
        return [shard.load_factor for shard in self.shards]

    # The harness samples this name for per-partition fill gauges; for a
    # sharded table the natural partitions are the shards.
    subtable_load_factors = shard_load_factors

    def shard_loads(self) -> list[int]:
        """Live entry count per shard (key-distribution diagnostics)."""
        return [len(shard) for shard in self.shards]

    @property
    def stats(self) -> TableStats:
        """Merged counters across shards (a fresh roll-up per access)."""
        merged = TableStats()
        for shard in self.shards:
            merged.merge(shard.stats)
        return merged

    def shard_stats(self) -> list[TableStats]:
        """The live per-shard stats objects (not copies)."""
        return [shard.stats for shard in self.shards]

    def memory_footprint(self) -> MemoryFootprint:
        """Summed device-memory accounting over all shards."""
        parts = [shard.memory_footprint() for shard in self.shards]
        return MemoryFootprint(
            total_slots=sum(p.total_slots for p in parts),
            live_entries=sum(p.live_entries for p in parts),
            slot_bytes=sum(p.slot_bytes for p in parts),
            overhead_bytes=sum(p.overhead_bytes for p in parts),
        )

    def resize_lock_fraction(self) -> float:
        """Largest data fraction a single resize locks: ``1 / (S * d)``.

        The availability argument for sharding: one resize rebuilds one
        subtable of one shard while everything else keeps serving.
        """
        return 1.0 / (self.num_shards * self.config.num_tables)

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All live ``(keys, values)`` across shards (unspecified order)."""
        parts = [shard.items() for shard in self.shards]
        return (np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]))

    def to_dict(self) -> dict[int, int]:
        """Materialize the whole sharded table as a plain dict."""
        out_keys, out_values = self.items()
        return {int(k): int(v) for k, v in zip(out_keys, out_values)}

    def validate(self) -> None:
        """Check every shard's invariants plus shard-placement.

        Beyond each shard's own :meth:`DyCuckooTable.validate`, asserts
        that every stored key actually routes to the shard holding it
        and that no key is stored in two shards.
        """
        all_keys = []
        for idx, shard in enumerate(self.shards):
            shard.validate()
            shard_keys, _values = shard.items()
            all_keys.append(shard_keys)
            if len(shard_keys):
                routed = self.shard_ids(shard_keys)
                if not bool(np.all(routed == idx)):
                    raise AssertionError(
                        f"shard {idx} stores a key routed to shard "
                        f"{int(routed[routed != idx][0])}"
                    )
        merged = (np.concatenate(all_keys) if all_keys
                  else np.zeros(0, dtype=np.uint64))
        if len(merged) != len(np.unique(merged)):
            raise AssertionError("duplicate key stored across shards")

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def set_telemetry(self, telemetry: Telemetry | None) -> Telemetry:
        """Attach telemetry; every shard gets its own child handle.

        The returned (parent) handle records the front-end's dispatch
        spans; each shard traces into a private handle so per-shard
        behaviour stays separable.  :meth:`merged_metrics` rolls the
        shard registries up into one labelled view.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        for shard in self.shards:
            shard.set_telemetry(Telemetry() if self.telemetry.enabled
                                else None)
        return self.telemetry

    def set_sanitizer(self, sanitizer):
        """Attach one sanitizer shared by every shard (``None`` detaches).

        Shards execute their kernels sequentially within a batch, so a
        single shared access log keeps cross-shard lock ids (already
        disjoint: shards own disjoint tables) and violation dedup in
        one report.  Returns the attached sanitizer.
        """
        for shard in self.shards:
            shard.set_sanitizer(sanitizer)
        return self.shards[0].sanitizer

    def set_fault_plan(self, plan):
        """Attach one fault plan shared by every shard (``None`` detaches).

        Shards execute sequentially within a batch, so a single plan's
        per-site invocation counters stay deterministic: the same keys
        route to the same shards in the same order, hence the same
        fault decisions on replay.  Returns the attached plan.
        """
        for shard in self.shards:
            shard.set_fault_plan(plan)
        return self.shards[0].faults

    def set_profiler(self, profiler):
        """Attach one profiler shared by every shard (``None`` detaches).

        Shards run sequentially within a batch, so one shared profiler
        aggregates naturally: kernel records, lock-heatmap cells (shard
        tables have disjoint lock ids only within a shard, so cells mix
        across shards by design — the heatmap is a contention view, not
        an address map), probe/chain histograms and stash samples all
        roll up into the single instance.  Returns it.
        """
        for shard in self.shards:
            shard.set_profiler(profiler)
        return self.shards[0].profiler

    def set_recorder(self, recorder):
        """Attach one flight recorder shared by every shard.

        One ring, one bundle stream: a trip on any shard dumps a single
        post-mortem covering the shard that tripped.  Returns the
        attached recorder.
        """
        for shard in self.shards:
            shard.set_recorder(recorder)
        return self.shards[0].recorder

    def merged_metrics(self):
        """Labelled + aggregated metrics across shards.

        Returns a :class:`~repro.telemetry.metrics.MetricsRegistry`
        holding ``shard{i}.<name>`` copies and ``<name>`` roll-ups —
        feed it to any exporter (e.g.
        :func:`repro.telemetry.export.prometheus_text`).
        """
        return merge_registries({
            f"shard{idx}": shard.telemetry.metrics
            for idx, shard in enumerate(self.shards)
        })
