"""Simulated parallel speedup for sharded execution.

The sharding front-end's execution model maps each shard onto a
disjoint SM group of one GPU (see
:func:`repro.gpusim.device.partition_device`): shards run concurrently
in separate streams, each owning ``1/S`` of the SMs and a fair ``1/S``
share of DRAM bandwidth.  This module prices that model against serial
execution of the same work on the whole device:

* **serial** — the merged per-shard counter deltas timed by a
  :class:`~repro.gpusim.metrics.CostModel` over the *full* device, i.e.
  what a single unsharded table doing the same work would cost;
* **parallel** — each shard's own delta timed on its SM-group spec;
  wall-clock is the *slowest shard* (a barrier joins the streams), so
  key-distribution skew shows up directly as lost speedup.

Because an SM group gets only its bandwidth share, perfectly
memory-bound work sees no speedup — the honest outcome for hash
probing, which saturates DRAM.  What sharding does buy is the
parallelization of round-synchronization overhead, compute, chain
latency, and lock contention (each shard's conflicts serialize only
against its own lock traffic), plus the availability win measured by
``resize_lock_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import InvalidConfigError
from repro.gpusim.device import DeviceSpec, GTX_1080, partition_device
from repro.gpusim.metrics import DEFAULT_COMPUTE_NS, CostModel


@dataclass(frozen=True)
class ShardSpeedupReport:
    """Outcome of one serial-vs-sharded pricing of a workload."""

    #: Shard count ``S`` the parallel schedule used.
    num_shards: int
    #: Simulated seconds for the same work run serially on the full GPU.
    serial_seconds: float
    #: Simulated seconds for the sharded schedule (slowest SM group).
    parallel_seconds: float
    #: Per-shard seconds on their SM groups (reveals skew).
    shard_seconds: tuple[float, ...]
    #: Operations priced (summed over shards).
    num_ops: int
    #: Largest data fraction a single resize locks, ``1 / (S * d)``.
    resize_lock_fraction: float

    @property
    def speedup(self) -> float:
        """Serial over parallel simulated time (1.0 = no benefit)."""
        if self.parallel_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.parallel_seconds

    @property
    def serial_mops(self) -> float:
        if self.serial_seconds <= 0.0:
            return float("inf")
        return self.num_ops / self.serial_seconds / 1e6

    @property
    def parallel_mops(self) -> float:
        if self.parallel_seconds <= 0.0:
            return float("inf")
        return self.num_ops / self.parallel_seconds / 1e6

    def to_dict(self) -> dict:
        """JSON-friendly view (benchmark artifacts)."""
        return {
            "num_shards": self.num_shards,
            "serial_seconds": self.serial_seconds,
            "parallel_seconds": self.parallel_seconds,
            "shard_seconds": list(self.shard_seconds),
            "num_ops": self.num_ops,
            "speedup": self.speedup,
            "serial_mops": self.serial_mops,
            "parallel_mops": self.parallel_mops,
            "resize_lock_fraction": self.resize_lock_fraction,
        }


def simulate_shard_speedup(shard_deltas: Sequence[Mapping[str, int]],
                           shard_ops: Sequence[int],
                           num_tables: int = 2,
                           device: DeviceSpec = GTX_1080,
                           overhead_scale: float = 1.0,
                           compute_ns_per_op: float = DEFAULT_COMPUTE_NS,
                           ) -> ShardSpeedupReport:
    """Price one batch of sharded work: serial device vs SM groups.

    Parameters
    ----------
    shard_deltas:
        One :meth:`~repro.core.stats.TableStats.delta` mapping per
        shard, covering the work being priced.
    shard_ops:
        Operations each shard executed over the same window (aligned
        with ``shard_deltas``).
    num_tables:
        Subtables per shard ``d`` — only feeds ``resize_lock_fraction``.
    device:
        The whole GPU; the parallel schedule carves it into
        ``len(shard_deltas)`` SM groups.
    overhead_scale:
        Forwarded to both cost models (reduced-scale experiments pass
        their dataset scale, see :class:`CostModel`).
    compute_ns_per_op:
        Average per-op instruction cost for the batch mix.
    """
    if len(shard_deltas) != len(shard_ops):
        raise InvalidConfigError(
            f"{len(shard_deltas)} deltas for {len(shard_ops)} op counts")
    if not shard_deltas:
        raise InvalidConfigError("at least one shard delta is required")
    num_shards = len(shard_deltas)

    merged: dict[str, int] = {}
    for delta in shard_deltas:
        for name, value in delta.items():
            merged[name] = merged.get(name, 0) + value
    total_ops = int(sum(shard_ops))

    serial_model = CostModel(device=device, overhead_scale=overhead_scale)
    # The serial reference launches each shard's batch back-to-back.
    serial_seconds = serial_model.batch_seconds(
        merged, total_ops, compute_ns_per_op=compute_ns_per_op,
        kernel_launches=num_shards)

    group_model = CostModel(device=partition_device(device, num_shards),
                            overhead_scale=overhead_scale)
    shard_seconds = tuple(
        group_model.batch_seconds(delta, int(ops),
                                  compute_ns_per_op=compute_ns_per_op,
                                  kernel_launches=1)
        for delta, ops in zip(shard_deltas, shard_ops))

    return ShardSpeedupReport(
        num_shards=num_shards,
        serial_seconds=serial_seconds,
        parallel_seconds=max(shard_seconds),
        shard_seconds=shard_seconds,
        num_ops=total_ops,
        resize_lock_fraction=1.0 / (num_shards * num_tables),
    )


def speedup_for_table(table, before: Sequence[Mapping[str, int]],
                      shard_ops: Sequence[int],
                      device: DeviceSpec = GTX_1080,
                      overhead_scale: float = 1.0,
                      compute_ns_per_op: float = DEFAULT_COMPUTE_NS,
                      ) -> ShardSpeedupReport:
    """Convenience wrapper taking a live :class:`ShardedDyCuckoo`.

    ``before`` holds one pre-window :meth:`TableStats.snapshot` per
    shard (as returned by iterating ``table.shard_stats()``); the deltas
    are computed against the shards' current counters.
    """
    deltas = [stats.delta(snap)
              for stats, snap in zip(table.shard_stats(), before)]
    return simulate_shard_speedup(
        deltas, shard_ops,
        num_tables=table.config.num_tables,
        device=device, overhead_scale=overhead_scale,
        compute_ns_per_op=compute_ns_per_op)
