"""Self-contained HTML rendering of a profiler report.

One static artifact, no external assets: inline CSS, div-based bar
charts, an HTML-table heatmap and inline-SVG fill timelines, so the
file opens anywhere (CI artifact viewers included) without a network.

The input is the plain-JSON report dict assembled by ``repro profile``
(see :mod:`repro.cli`): profiler snapshots per engine plus latency and
derived per-batch metrics.  Rendering never mutates the report.
"""

from __future__ import annotations

import html
import json

__all__ = ["render_html", "write_html_report"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 72em; color: #1b2733; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em;
     border-bottom: 1px solid #d8dee4; padding-bottom: .25em; }
table { border-collapse: collapse; font-size: .85em; }
td, th { border: 1px solid #d8dee4; padding: .25em .6em; text-align: right; }
th { background: #f3f5f7; }
.meta { color: #5a6a7a; font-size: .9em; }
.bar { display: inline-block; background: #4c8dd6; height: .75em; }
.bar.alt { background: #d6794c; }
.barrow { white-space: nowrap; font-size: .8em; line-height: 1.35; }
.barrow code { display: inline-block; width: 9em; color: #5a6a7a; }
.cell { min-width: 2.2em; }
.ok { color: #1a7f37; font-weight: 600; }
.bad { color: #b42318; font-weight: 600; }
svg { background: #fbfcfd; border: 1px solid #d8dee4; }
"""


def render_html(report: dict, title: str = "repro profile") -> str:
    """Render the profile report dict as one self-contained HTML page."""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        _meta_block(report),
    ]
    snapshot = _primary_snapshot(report)
    if snapshot:
        parts.append(_divergence_section(snapshot))
        parts.append(_heatmap_section(snapshot))
        parts.append(_histogram_section(
            "Probe lengths", snapshot.get("probe_lengths", {}),
            "bucket probes per FIND/DELETE op"))
        parts.append(_histogram_section(
            "Eviction chain depth", snapshot.get("chain_depths", {}),
            "evictions endured before an op completed"))
    fill_snapshot = report.get("dynamic") or snapshot or {}
    parts.append(_fill_section(fill_snapshot))
    parts.append(_stash_section(fill_snapshot))
    parts.append(_latency_section(report.get("latency", {})))
    parts.append(_profiles_section(report.get("profiles", [])))
    parts.append(_recorder_section(report.get("recorder", {})))
    parts.append("</body></html>")
    return "\n".join(p for p in parts if p)


def write_html_report(path: str, report: dict,
                      title: str = "repro profile") -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html(report, title=title))
    return path


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------


def _primary_snapshot(report: dict) -> dict:
    engines = report.get("engines", {})
    for name in ("warp", "cohort"):
        if name in engines:
            return engines[name]
    return next(iter(engines.values()), {})


def _meta_block(report: dict) -> str:
    bits = []
    for key in ("seed", "ops", "keys"):
        if key in report:
            bits.append(f"{key}={report[key]}")
    engines = sorted(report.get("engines", {}))
    if engines:
        bits.append("engines=" + "+".join(engines))
    if "conformant" in report:
        cls = "ok" if report["conformant"] else "bad"
        word = "identical" if report["conformant"] else "DIVERGENT"
        bits.append(f"<span class='{cls}'>engine snapshots {word}</span>")
    return f"<p class='meta'>{' | '.join(bits)}</p>" if bits else ""


def _bar(value: float, scale: float, alt: bool = False) -> str:
    width = 0.0 if scale <= 0 else 280.0 * value / scale
    cls = "bar alt" if alt else "bar"
    return f"<span class='{cls}' style='width:{width:.1f}px'></span>"


def _divergence_section(snapshot: dict, max_rounds: int = 120) -> str:
    rows = []
    for kernel in snapshot.get("kernels", []):
        rounds = kernel.get("rounds", [])
        if not rounds:
            continue
        n = kernel.get("n", 0)
        rows.append(f"<h3>{html.escape(str(kernel.get('op')))} "
                    f"(n={n}, {len(rounds)} rounds)</h3>")
        peak = max(r["active_lanes"] for r in rounds) or 1
        for i, r in enumerate(rounds[:max_rounds]):
            warps = r["active_warps"]
            lanes = r["active_lanes"]
            occ = lanes / (warps * 32) if warps else 0.0
            rows.append(
                "<div class='barrow'>"
                f"<code>round {i:>4} {occ:>6.1%}</code>"
                f"{_bar(lanes, peak)} {lanes} lanes / {warps} warps"
                f" / {r['locked_warps']} locked</div>")
        if len(rounds) > max_rounds:
            rows.append(f"<p class='meta'>… {len(rounds) - max_rounds} "
                        "more rounds elided</p>")
    if not rows:
        return ""
    return ("<h2>Lane occupancy &amp; divergence timelines</h2>"
            "<p class='meta'>occupancy = live lanes / (resident warps x 32);"
            " the decay shape is the eviction-chain divergence the paper's"
            " warp-cooperative design targets.</p>" + "".join(rows))


def _heatmap_section(snapshot: dict) -> str:
    cells = snapshot.get("lock_heatmap", [])
    if not cells:
        return ""
    stripe = snapshot.get("stripe_width", 0)
    subtables = sorted({c["subtable"] for c in cells})
    stripes = sorted({c["stripe"] for c in cells})
    by_key = {(c["subtable"], c["stripe"]): c for c in cells}
    peak = max(c["conflicts"] for c in cells) or 1
    head = "".join(f"<th>stripe {s}</th>" for s in stripes)
    body = []
    for sub in subtables:
        row = [f"<th>subtable {sub}</th>"]
        for s in stripes:
            cell = by_key.get((sub, s))
            if cell is None:
                row.append("<td class='cell'></td>")
                continue
            heat = cell["conflicts"] / peak
            row.append(
                f"<td class='cell' style='background:rgba(214,80,60,"
                f"{0.08 + 0.8 * heat:.2f})' title='grants "
                f"{cell['grants']}, conflicts {cell['conflicts']}'>"
                f"{cell['conflicts']}</td>")
        body.append("<tr>" + "".join(row) + "</tr>")
    return (f"<h2>Lock-contention heatmap</h2><p class='meta'>conflicts per "
            f"(subtable, {stripe}-bucket stripe); hover a cell for grants."
            "</p><table><tr><th></th>" + head + "</tr>"
            + "".join(body) + "</table>")


def _histogram_section(title: str, counts: dict, caption: str) -> str:
    if not counts:
        return ""
    items = sorted(counts.items(), key=lambda kv: float(kv[0]))
    peak = max(v for _, v in items) or 1
    rows = ["<div class='barrow'>"
            f"<code>{html.escape(str(k))}</code>{_bar(v, peak, alt=True)} "
            f"{v}</div>" for k, v in items]
    return (f"<h2>{html.escape(title)}</h2>"
            f"<p class='meta'>{html.escape(caption)}</p>" + "".join(rows))


def _fill_section(snapshot: dict, width: int = 640, height: int = 160) -> str:
    timeline = snapshot.get("fill_timeline", [])
    if not timeline:
        return ""
    num_subtables = len(timeline[0].get("subtables", []))
    palette = ("#4c8dd6", "#d6794c", "#59a86c", "#9268c6", "#c0a030")
    lines = []
    series = [[p["global"] for p in timeline]]
    names = ["global"]
    for i in range(num_subtables):
        series.append([p["subtables"][i] for p in timeline])
        names.append(f"subtable {i}")
    for idx, values in enumerate(series):
        step = width / max(len(values) - 1, 1)
        points = " ".join(
            f"{i * step:.1f},{height - v * height:.1f}"
            for i, v in enumerate(values))
        color = palette[idx % len(palette)]
        dash = "" if idx == 0 else " stroke-dasharray='4 3'"
        lines.append(f"<polyline fill='none' stroke='{color}'"
                     f" stroke-width='1.5'{dash} points='{points}'/>")
    legend = " | ".join(
        f"<span style='color:{palette[i % len(palette)]}'>"
        f"{html.escape(n)}</span>" for i, n in enumerate(names))
    events = [f"{i}:{p['event']}" for i, p in enumerate(timeline)
              if p["event"] not in ("batch",)]
    events_note = (f"<p class='meta'>resize events at samples: "
                   f"{html.escape(', '.join(events[:40]))}</p>"
                   if events else "")
    return (f"<h2>Per-subtable fill-factor timeline</h2>"
            f"<p class='meta'>{legend} — y: 0..1 fill, x: samples</p>"
            f"<svg width='{width}' height='{height}' "
            f"viewBox='0 0 {width} {height}'>" + "".join(lines)
            + "</svg>" + events_note)


def _stash_section(snapshot: dict) -> str:
    stash = snapshot.get("stash", {})
    if not stash.get("samples"):
        return ""
    return ("<h2>Stash</h2><p>high water "
            f"<b>{stash['high_water']}</b> entries over "
            f"{len(stash['samples'])} samples</p>")


def _latency_section(latency: dict) -> str:
    if not latency or not latency.get("count"):
        return ""
    cells = "".join(
        f"<td>{latency[k] * 1e6:.2f}</td>"
        for k in ("p50", "p90", "p99", "worst", "mean"))
    extra = (f" (worst batch index {latency['worst_batch']})"
             if latency.get("worst_batch", -1) >= 0 else "")
    return ("<h2>Batch latency (simulated clock)</h2>"
            "<table><tr><th>p50 us</th><th>p90 us</th><th>p99 us</th>"
            "<th>worst us</th><th>mean us</th></tr>"
            f"<tr>{cells}</tr></table>"
            f"<p class='meta'>{latency['count']} batches{extra}</p>")


def _profiles_section(profiles: list) -> str:
    if not profiles:
        return ""
    rows = []
    for p in profiles:
        rows.append(
            "<tr>"
            f"<td style='text-align:left'>{html.escape(str(p['name']))}</td>"
            f"<td>{p['num_ops']}</td>"
            f"<td>{p['simulated_seconds'] * 1e6:.1f}</td>"
            f"<td>{p['warp_efficiency']:.0%}</td>"
            f"<td>{p['memory_utilization']:.0%}</td>"
            f"<td>{p['atomics_per_op']:.2f}</td>"
            f"<td>{p['transactions_per_op']:.2f}</td></tr>")
    return ("<h2>Derived per-batch metrics</h2>"
            "<table><tr><th>kernel</th><th>ops</th><th>us</th>"
            "<th>warp eff</th><th>mem util</th><th>atomics/op</th>"
            "<th>tx/op</th></tr>" + "".join(rows) + "</table>")


def _recorder_section(recorder: dict) -> str:
    if not recorder:
        return ""
    detail = html.escape(json.dumps(recorder, default=str)[:2000])
    return ("<h2>Flight recorder</h2>"
            f"<p class='meta'>{detail}</p>")
