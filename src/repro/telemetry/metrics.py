"""Metric instruments: counters, gauges, and fixed-bucket histograms.

The registry complements the tracer: where the tracer answers *when did
it happen*, the registry answers *how often and how much* — probe
lengths, cuckoo chain depths, atomic retry counts, per-subtable fill
factors.  Instruments are cheap enough to update from the vectorized
hot paths (histograms accept whole numpy arrays via
:meth:`Histogram.observe_many`).

Export formats live in :mod:`repro.telemetry.export`
(:func:`~repro.telemetry.export.prometheus_text` renders the standard
Prometheus exposition format).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfigError

#: Default bucket upper bounds for probe-length style histograms.
DEFAULT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise InvalidConfigError(
                f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """Last-value instrument that also keeps its sample series.

    Fill factors are sampled once per batch, so retaining the series is
    cheap and gives tests (and plots) the whole trajectory without a
    second bookkeeping path.
    """

    __slots__ = ("name", "value", "series")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.series: list[float] = []

    def set(self, value: float) -> None:
        self.value = float(value)
        self.series.append(self.value)


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative export).

    ``buckets`` are inclusive upper bounds in increasing order; one
    overflow bucket (``+Inf``) is implicit.  ``counts[i]`` is the number
    of observations with ``value <= buckets[i]`` minus those in earlier
    buckets, i.e. counts are stored *per bucket* and cumulated only at
    export time.
    """

    __slots__ = ("name", "buckets", "counts", "total", "sum")

    def __init__(self, name: str,
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges or list(edges) != sorted(set(edges)):
            raise InvalidConfigError(
                f"histogram {name} needs strictly increasing buckets, "
                f"got {buckets}")
        self.name = name
        self.buckets = edges
        self.counts = np.zeros(len(edges) + 1, dtype=np.int64)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = int(np.searchsorted(self.buckets, value, side="left"))
        self.counts[idx] += 1
        self.total += 1
        self.sum += float(value)

    def observe_many(self, values) -> None:
        """Record a whole array of observations (vectorized)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        idx = np.searchsorted(self.buckets, values, side="left")
        np.add.at(self.counts, idx, 1)
        self.total += int(values.size)
        self.sum += float(values.sum())

    def observe_count(self, value: float, count: int) -> None:
        """Record ``count`` identical observations in O(1)."""
        if count <= 0:
            return
        idx = int(np.searchsorted(self.buckets, value, side="left"))
        self.counts[idx] += count
        self.total += count
        self.sum += float(value) * count

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        running = np.cumsum(self.counts)
        pairs = [(b, int(running[i])) for i, b in enumerate(self.buckets)]
        pairs.append((float("inf"), int(running[-1])))
        return pairs


class MetricsRegistry:
    """Named instrument store with get-or-create semantics."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, buckets)
        return inst

    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def to_dict(self) -> dict:
        """Plain-JSON snapshot of every instrument."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: {"value": g.value, "samples": len(g.series)}
                       for n, g in self._gauges.items()},
            "histograms": {
                n: {"buckets": list(h.buckets),
                    "counts": h.counts.tolist(),
                    "count": h.total,
                    "sum": h.sum}
                for n, h in self._histograms.items()},
        }
