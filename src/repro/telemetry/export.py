"""Telemetry exporters: JSON-lines, Chrome ``trace_event``, Prometheus.

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON object format, loadable in ``chrome://tracing``
  and https://ui.perfetto.dev (spans become nested slices, counter
  samples become track graphs);
* :func:`write_jsonl` — one event per line, trivially greppable and
  streamable;
* :func:`prometheus_text` — the Prometheus text exposition format for a
  :class:`~repro.telemetry.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import (PHASE_INSTANT, PHASE_SPAN,
                                    TraceEvent)

#: pid/tid stamped on every exported event (single simulated device).
TRACE_PID = 0
TRACE_TID = 0


def event_to_chrome(event: TraceEvent) -> dict:
    """One :class:`TraceEvent` as a Chrome ``trace_event`` record."""
    record = {
        "name": event.name,
        "cat": event.category or "repro",
        "ph": event.phase,
        "ts": event.ts_us,
        "pid": TRACE_PID,
        "tid": TRACE_TID,
        "args": event.args,
    }
    if event.phase == PHASE_SPAN:
        record["dur"] = event.dur_us
    elif event.phase == PHASE_INSTANT:
        record["s"] = "t"  # thread-scoped instant
    return record


def chrome_trace(tracer, metadata: dict | None = None) -> dict:
    """The full trace as a Chrome JSON object (``traceEvents`` + meta)."""
    trace = {
        "traceEvents": [event_to_chrome(e) for e in tracer.events],
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["otherData"] = dict(metadata)
    return trace


def write_chrome_trace(tracer, path, metadata: dict | None = None) -> Path:
    """Write the Chrome-trace JSON to ``path``; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer, metadata), handle)
    return out


def write_jsonl(tracer, path) -> Path:
    """Write one JSON object per event to ``path``; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        for event in tracer.events:
            handle.write(json.dumps({
                "name": event.name,
                "cat": event.category,
                "ph": event.phase,
                "ts_us": event.ts_us,
                "dur_us": event.dur_us,
                "depth": event.depth,
                "args": event.args,
            }))
            handle.write("\n")
    return out


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus data model."""
    cleaned = _METRIC_NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, counter in sorted(registry.counters.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {counter.value}")
    for name, gauge in sorted(registry.gauges.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(gauge.value)}")
    for name, hist in sorted(registry.histograms.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        for upper, cumulative in hist.cumulative():
            lines.append(f'{prom}_bucket{{le="{_fmt(upper)}"}} {cumulative}')
        lines.append(f"{prom}_sum {_fmt(hist.sum)}")
        lines.append(f"{prom}_count {hist.total}")
    return "\n".join(lines) + "\n"
