"""Multi-registry metric roll-ups (sharded and multi-table runs).

A sharded table keeps one :class:`~repro.telemetry.metrics.MetricsRegistry`
per shard so per-shard behaviour stays observable.  For dashboards and
exporters, :func:`merge_registries` folds those registries into a single
one holding

* a **labelled copy** of every instrument (``shard0.find.hits``), and
* an **aggregated roll-up** under the original name (``find.hits``):
  counters and histograms sum; gauges sum too (per-shard fills and
  occupancies add up to the fleet view — export the labelled copies when
  the distribution matters).

The merged registry is a plain :class:`MetricsRegistry`, so every
existing exporter (:func:`~repro.telemetry.export.prometheus_text`,
``to_dict``) works on it unchanged.
"""

from __future__ import annotations

from typing import Mapping

from repro.telemetry.metrics import MetricsRegistry


def merge_registries(labelled: Mapping[str, MetricsRegistry]
                     ) -> MetricsRegistry:
    """Merge several registries into one (labelled copies + roll-ups).

    ``labelled`` maps a label (e.g. ``"shard0"``) to that source's
    registry.  Histograms roll up only across sources that share the
    same bucket layout; a divergent layout keeps its labelled copy but
    is skipped from the aggregate (layouts are fixed per metric name in
    practice, so this is a guard, not a code path).
    """
    merged = MetricsRegistry()
    for label, registry in labelled.items():
        for name, counter in registry.counters.items():
            merged.counter(f"{label}.{name}").inc(counter.value)
            merged.counter(name).inc(counter.value)
        for name, gauge in registry.gauges.items():
            merged.gauge(f"{label}.{name}").set(gauge.value)
            roll = merged.gauge(name)
            roll.set(roll.value + gauge.value if roll.series else gauge.value)
        for name, hist in registry.histograms.items():
            copy = merged.histogram(f"{label}.{name}", buckets=hist.buckets)
            copy.counts += hist.counts
            copy.total += hist.total
            copy.sum += hist.sum
            roll = merged.histogram(name, buckets=hist.buckets)
            if roll.buckets == hist.buckets:
                roll.counts += hist.counts
                roll.total += hist.total
                roll.sum += hist.sum
    return merged
