"""Latency percentiles over the simulated clock.

Every batch the harness runs carries a ``simulated_seconds`` cost from
the :class:`~repro.gpusim.metrics.CostModel`, so latency analysis is
fully deterministic: the same workload always yields the same p50/p99.
This module is the one shared implementation of that analysis — the
stability benchmark (`bench_fig12_stability.py`), the perf gate, the
``repro profile`` report, and any future serving front-end all consume
it, so "p99" means the same thing everywhere.

Percentiles use the *nearest-rank* method (ceil(q/100 * N)-th smallest
sample).  Nearest-rank returns an actual observed sample — never an
interpolated value — which keeps artifacts byte-stable across numpy
versions and makes "the worst batch" a real, inspectable batch.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "percentile",
    "summarize",
    "summarize_batches",
    "format_summary",
]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile ``q`` (0 < q <= 100) of ``samples``.

    Raises ``ValueError`` on an empty sample set or out-of-range ``q``
    — callers deal in real batches, so an empty set is a logic error,
    not a value to paper over.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    ordered = sorted(float(s) for s in samples)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]


def summarize(samples: Iterable[float]) -> dict:
    """p50/p90/p99/worst/mean summary of a latency sample set.

    Returns a plain-JSON dict; all values are in the samples' own unit
    (the callers pass simulated seconds).  An empty iterable yields a
    ``count: 0`` stub so artifact schemas stay stable.
    """
    values = [float(s) for s in samples]
    if not values:
        return {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
                "worst": 0.0, "mean": 0.0, "total": 0.0}
    total = sum(values)
    return {
        "count": len(values),
        "p50": percentile(values, 50.0),
        "p90": percentile(values, 90.0),
        "p99": percentile(values, 99.0),
        "worst": max(values),
        "mean": total / len(values),
        "total": total,
    }


def summarize_batches(batches) -> dict:
    """Latency summary over ``BatchResult``-like objects.

    Consumes any sequence with per-item ``simulated_seconds`` (e.g.
    :class:`repro.bench.runner.BatchResult`).  Adds ``worst_batch``,
    the index of the slowest batch, so a regression report can point at
    the exact batch that blew the budget.
    """
    seconds = [float(b.simulated_seconds) for b in batches]
    out = summarize(seconds)
    out["worst_batch"] = (int(max(range(len(seconds)),
                                  key=seconds.__getitem__))
                          if seconds else -1)
    return out


def format_summary(summary: dict, unit_scale: float = 1e6,
                   unit: str = "us") -> str:
    """One-line human rendering (defaults to microseconds)."""
    if not summary.get("count"):
        return "no latency samples"
    parts = [f"p50 {summary['p50'] * unit_scale:.1f}{unit}",
             f"p90 {summary['p90'] * unit_scale:.1f}{unit}",
             f"p99 {summary['p99'] * unit_scale:.1f}{unit}",
             f"worst {summary['worst'] * unit_scale:.1f}{unit}"]
    if "worst_batch" in summary and summary["worst_batch"] >= 0:
        parts[-1] += f" (batch {summary['worst_batch']})"
    return " | ".join(parts)
