"""Observability for table runs: tracing, metrics, and exporters.

The observability stack has three layers:

* **telemetry** (this package's original core) —
  :class:`~repro.telemetry.tracer.Tracer` span / instant / counter
  events on a logical simulated-time clock, plus
  :class:`~repro.telemetry.metrics.MetricsRegistry` counters, gauges
  and fixed-bucket histograms, with JSON-lines / Chrome ``trace_event``
  / Prometheus exporters in :mod:`repro.telemetry.export`;
* **profiler** — :class:`~repro.telemetry.profiler.Profiler`, a deep
  Nsight-Compute-style pass over the kernel engines (per-round
  occupancy timelines, lock-contention heatmaps, probe/chain-depth
  histograms, fill time series);
* **flight recorder** — :class:`~repro.telemetry.recorder.FlightRecorder`,
  a bounded ring of recent events that auto-dumps a post-mortem bundle
  on fault trips, sanitizer violations and invariant failures.

:mod:`repro.telemetry.latency` supplies the shared deterministic
latency-percentile analysis (p50/p99/worst-batch on simulated time).

Instrumented code holds a :class:`Telemetry` handle bundling one tracer
and one registry.  The default is :data:`NULL_TELEMETRY`, whose
``enabled`` is ``False``: every hook site gates on that one attribute,
so an uninstrumented run does no telemetry work beyond the check.  The
profiler and recorder follow the same idiom with
:data:`~repro.telemetry.profiler.NULL_PROFILER` and
:data:`~repro.telemetry.recorder.NULL_RECORDER`.

Example
-------
>>> from repro import DyCuckooTable
>>> from repro.telemetry import Telemetry
>>> table = DyCuckooTable()
>>> tel = table.set_telemetry(Telemetry())
>>> import numpy as np
>>> table.insert(np.arange(100, dtype=np.uint64),
...              np.arange(100, dtype=np.uint64))
>>> len(tel.tracer.spans("insert"))
1

See ``docs/observability.md`` for the event taxonomy and how to open a
trace in Perfetto.
"""

from __future__ import annotations

from repro.telemetry.aggregate import merge_registries
from repro.telemetry.export import (chrome_trace, prometheus_text,
                                    write_chrome_trace, write_jsonl)
from repro.telemetry.latency import (format_summary, percentile, summarize,
                                     summarize_batches)
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)
from repro.telemetry.profiler import NULL_PROFILER, Profiler
from repro.telemetry.recorder import NULL_RECORDER, FlightRecorder
from repro.telemetry.tracer import (NULL_TRACER, NullTracer, TraceEvent,
                                    Tracer)


class Telemetry:
    """A tracer plus a metrics registry, handed to instrumented code."""

    __slots__ = ("tracer", "metrics")

    #: Instrumentation gate; the null subclass overrides it to False.
    enabled = True

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()


class _NullTelemetry(Telemetry):
    """Disabled telemetry: the default on every table."""

    __slots__ = ()

    enabled = False

    def __init__(self) -> None:
        super().__init__(tracer=NULL_TRACER, metrics=MetricsRegistry())


#: Shared disabled-telemetry singleton (one attribute check to skip).
NULL_TELEMETRY = _NullTelemetry()

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "prometheus_text",
    "merge_registries",
    "Profiler",
    "NULL_PROFILER",
    "FlightRecorder",
    "NULL_RECORDER",
    "percentile",
    "summarize",
    "summarize_batches",
    "format_summary",
]
