"""Flight recorder — a bounded ring of recent events plus post-mortems.

The profiler answers *what does a healthy run look like*; the flight
recorder answers *what just happened* when a run goes wrong.  It is a
fixed-capacity ring buffer of recent structural events (kernel
launches, resizes, stash spills, injected faults, sanitizer findings)
cheap enough to leave attached in long fuzz sessions, plus an
auto-dumping **post-mortem bundle** mechanism:

whenever a fault-plan injection fires, the sanitizer records a
violation, or :func:`repro.core.analysis.check_invariants` fails, the
attached recorder *trips* — it freezes the ring contents together with
a profiler snapshot (when one is attached) and the table's counter
state into a single plain-JSON bundle.  Bundles are kept on the
recorder (bounded) and optionally written to ``dump_dir``, so a fuzz
counterexample ships with the exact event history that led up to it.

Gating follows the ``NULL_TELEMETRY`` idiom: hook sites check one
``recorder.enabled`` attribute and the default :data:`NULL_RECORDER`
singleton keeps it ``False``.
"""

from __future__ import annotations

import json
import os
from collections import deque

__all__ = ["FlightRecorder", "NULL_RECORDER"]


class FlightRecorder:
    """Bounded event ring with trip-triggered post-mortem bundles.

    Parameters
    ----------
    capacity:
        Ring size; the oldest events fall off first.
    max_bundles:
        How many post-mortem bundles to retain (oldest dropped first).
        Trips beyond the bound still count in :attr:`trips`.
    dump_dir:
        Optional directory; every trip also writes its bundle there as
        ``postmortem_<n>.json``.
    """

    #: Instrumentation gate; the null subclass overrides it to False.
    enabled = True

    def __init__(self, capacity: int = 256, max_bundles: int = 4,
                 dump_dir: str | None = None) -> None:
        self.capacity = int(capacity)
        self.events: deque = deque(maxlen=self.capacity)
        self.bundles: deque = deque(maxlen=int(max_bundles))
        self.dump_dir = dump_dir
        self.trips = 0
        self._seq = 0
        self._table = None

    def attach(self, table) -> "FlightRecorder":
        """Bind a table so bundles can include its state at trip time."""
        self._table = table
        return self

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def record(self, kind: str, **payload) -> None:
        """Append one event to the ring (O(1), oldest evicted)."""
        self._seq += 1
        event = {"seq": self._seq, "kind": kind}
        event.update(payload)
        self.events.append(event)

    # ------------------------------------------------------------------
    # Trip / post-mortem
    # ------------------------------------------------------------------

    def trip(self, reason: str, **detail) -> dict:
        """Freeze the ring into a post-mortem bundle and retain it."""
        self.trips += 1
        bundle = {
            "reason": reason,
            "detail": {k: _jsonable(v) for k, v in detail.items()},
            "trip": self.trips,
            "seq": self._seq,
            "events": [dict(e) for e in self.events],
            "profiler": None,
            "table": None,
        }
        table = self._table
        if table is not None:
            profiler = getattr(table, "profiler", None)
            if profiler is not None and profiler.enabled:
                bundle["profiler"] = profiler.snapshot()
            bundle["table"] = _table_state(table)
        self.bundles.append(bundle)
        if self.dump_dir:
            os.makedirs(self.dump_dir, exist_ok=True)
            path = os.path.join(self.dump_dir,
                                f"postmortem_{self.trips:04d}.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(bundle, fh, indent=2, default=str)
        return bundle

    def last_bundle(self) -> dict | None:
        return self.bundles[-1] if self.bundles else None

    def summary(self, max_events: int = 10) -> dict:
        """Compact digest for embedding in a failure message."""
        bundle = self.last_bundle()
        if bundle is None:
            return {"trips": self.trips, "bundles": 0,
                    "events": list(self.events)}
        return {
            "trips": self.trips,
            "bundles": len(self.bundles),
            "reason": bundle["reason"],
            "detail": bundle["detail"],
            "last_events": bundle["events"][-max_events:],
            "table": bundle["table"],
        }


def _table_state(table) -> dict:
    """Counter-level table snapshot (no storage arrays — bundles must
    stay small enough to embed in a failure message)."""
    state = {
        "len": len(table),
        "load_factor": float(table.load_factor),
        "subtable_loads": [int(n) for n in table.subtable_loads()],
        "subtable_load_factors": [float(f) for f in
                                  table.subtable_load_factors],
        "stash": len(getattr(table, "stash", ())),
    }
    stats = getattr(table, "stats", None)
    if stats is not None:
        state["stats"] = stats.snapshot()
    return state


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class _NullRecorder(FlightRecorder):
    """Disabled recorder: the default on every table."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1, max_bundles=1)

    def record(self, kind: str, **payload) -> None:  # pragma: no cover
        pass

    def trip(self, reason: str, **detail) -> dict:  # pragma: no cover
        return {}


#: Shared disabled-recorder singleton (one attribute check to skip).
NULL_RECORDER = _NullRecorder()
