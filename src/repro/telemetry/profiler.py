"""Deep kernel profiler — an Nsight-Compute-style pass over the engines.

Where the tracer (:mod:`repro.telemetry.tracer`) records *that* a kernel
ran and the registry counts *how much* it did, the profiler records the
shape of the execution itself, round by round:

* **lane-occupancy / divergence timelines** — per kernel, per round: how
  many warps are still resident, how many of their lanes are live, and
  how many warps hold a bucket lock.  Divergence on eviction chains is
  the paper's core efficiency argument (Section V), and this is where
  it becomes visible.
* **lock-contention heatmaps** keyed by ``(subtable, bucket-stripe)`` —
  every lock grant and every failed acquire attributed to the bucket
  region it hit, the serialization picture of Figure 5.
* **probe-length and eviction-chain-depth histograms** — FIND/DELETE
  resolve in one or two bucket probes; insert chains carry an eviction
  depth.  Both are recorded as exact integer multisets.
* **per-subtable fill-factor time series** across resizes, and **stash
  high-water** tracking.

The profiler is sourced from *both* execution engines — the per-warp
reference interpreter and the vectorized cohort engine — and its
snapshot is engine-neutral by construction: only round-boundary state
and order-insensitive aggregates are recorded, so the conformance suite
pins ``snapshot()`` equality across engines.

Gating follows the ``NULL_TELEMETRY`` idiom: every hook site checks one
``profiler.enabled`` attribute, and the default :data:`NULL_PROFILER`
singleton keeps it ``False``.  A run without a profiler attached is
bit-identical to a build without this module.

This module also absorbs the original ``repro.gpusim.profile`` report
(:class:`KernelProfile`, :func:`profile_batch`,
:func:`profile_operation`) so there is exactly one profiling path;
``repro.gpusim.profile`` remains as a re-export shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpusim.metrics import CostModel

#: Lanes per warp — mirrors ``repro.gpusim.kernel.Warp.width``.
WARP_WIDTH = 32

#: Bucket-stripe granularity of the lock-contention heatmap.  Buckets
#: ``[k * width, (k + 1) * width)`` of one subtable share a heatmap
#: cell, matching how adjacent buckets share cache lines on device.
DEFAULT_STRIPE_WIDTH = 8

#: Lock ids pack ``(table_idx << 40) | bucket`` (see kernels/insert.py).
_LOCK_BUCKET_MASK = (1 << 40) - 1


class Profiler:
    """Accumulates per-round execution shape from the kernel engines.

    One profiler instance spans as many kernel launches as the caller
    wants to aggregate; :meth:`snapshot` renders everything recorded so
    far as a plain-JSON, engine-neutral dict.
    """

    #: Instrumentation gate; the null subclass overrides it to False.
    enabled = True

    def __init__(self, stripe_width: int = DEFAULT_STRIPE_WIDTH) -> None:
        self.stripe_width = int(stripe_width)
        #: Completed kernel records (dicts; see :meth:`begin_kernel`).
        self.kernels: list[dict] = []
        self._active: dict | None = None
        #: ``(subtable, stripe) -> [grants, conflicts]``.
        self.heatmap: dict[tuple[int, int], list[int]] = {}
        #: Exact probe-length counts (1 = first bucket hit, 2 = both read).
        self.probe_lengths: dict[int, int] = {}
        #: Exact eviction-chain-depth counts at op completion.
        self.chain_depths: dict[int, int] = {}
        #: ``{"event", "global", "subtables"}`` fill samples, in order.
        self.fill_timeline: list[dict] = []
        self.stash_samples: list[int] = []
        self.stash_high_water = 0
        #: Rounds the cohort engine resolved under a key-coincidence
        #: hazard, and the locked-warp lanes involved.  Deliberately
        #: *outside* :meth:`snapshot`: the per-warp engine has no hazard
        #: concept, so these counters are engine-specific diagnostics,
        #: not part of the engine-neutral conformance surface.
        self.hazard_rounds = 0
        self.hazard_lanes = 0

    # ------------------------------------------------------------------
    # Kernel lifecycle
    # ------------------------------------------------------------------

    def begin_kernel(self, op: str, n: int) -> None:
        """Open a per-kernel record; subsequent rounds attach to it."""
        if self._active is not None:
            self.kernels.append(self._active)
        self._active = {"op": op, "n": int(n), "rounds": [],
                        "counters": {}}

    def end_kernel(self, counters: Mapping[str, int] | None = None) -> None:
        """Close the open kernel record, attaching final counters."""
        if self._active is None:
            return
        if counters:
            self._active["counters"] = {k: int(v)
                                        for k, v in counters.items()}
        self.kernels.append(self._active)
        self._active = None

    def record_round(self, active_warps: int, active_lanes: int,
                     locked_warps: int, evictions: int = 0,
                     completed: int = 0) -> None:
        """One occupancy sample, taken at a round boundary.

        ``evictions`` / ``completed`` are the kernel-result counters *as
        of this round boundary* — cumulative, so per-round deltas fall
        out by differencing.  Both engines observe identical values here
        because the counters conform at every round boundary.
        """
        if self._active is None:
            self.begin_kernel("?", 0)
        self._active["rounds"].append({
            "active_warps": int(active_warps),
            "active_lanes": int(active_lanes),
            "locked_warps": int(locked_warps),
            "evictions": int(evictions),
            "completed": int(completed),
        })

    def record_rounds_many(self, samples) -> None:
        """Bulk :meth:`record_round`: one append per kernel, not per round.

        ``samples`` is an iterable of ``(active_warps, active_lanes,
        locked_warps, evictions, completed)`` tuples in round order; the
        resulting record list is byte-identical to per-round calls, so
        engines may batch their occupancy samples and flush once.
        """
        if self._active is None:
            self.begin_kernel("?", 0)
        rounds = self._active["rounds"]
        for active_warps, active_lanes, locked_warps, evictions, \
                completed in samples:
            rounds.append({
                "active_warps": int(active_warps),
                "active_lanes": int(active_lanes),
                "locked_warps": int(locked_warps),
                "evictions": int(evictions),
                "completed": int(completed),
            })

    def note_hazard(self, lanes: int) -> None:
        """One hazardous cohort round involving ``lanes`` locked warps."""
        self.hazard_rounds += 1
        self.hazard_lanes += int(lanes)

    # ------------------------------------------------------------------
    # Lock-contention heatmap
    # ------------------------------------------------------------------

    def _cell(self, lock_id: int) -> list[int]:
        key = (int(lock_id) >> 40,
               (int(lock_id) & _LOCK_BUCKET_MASK) // self.stripe_width)
        cell = self.heatmap.get(key)
        if cell is None:
            cell = self.heatmap[key] = [0, 0]
        return cell

    def lock_grant(self, lock_id: int) -> None:
        self._cell(lock_id)[0] += 1

    def lock_conflict(self, lock_id: int) -> None:
        self._cell(lock_id)[1] += 1

    def lock_grants_many(self, lock_ids) -> None:
        for lock_id in lock_ids.tolist():
            self._cell(lock_id)[0] += 1

    def lock_conflicts_many(self, lock_ids) -> None:
        for lock_id in lock_ids.tolist():
            self._cell(lock_id)[1] += 1

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------

    def observe_probes(self, n: int, first_hits: int) -> None:
        """``first_hits`` ops resolved on the first bucket; the rest
        read both buckets (cuckoo probes are 1 or 2, never more)."""
        if first_hits:
            self.probe_lengths[1] = (self.probe_lengths.get(1, 0)
                                     + int(first_hits))
        rest = int(n) - int(first_hits)
        if rest:
            self.probe_lengths[2] = self.probe_lengths.get(2, 0) + rest

    def observe_chain(self, depth: int) -> None:
        """One op completed after ``depth`` evictions on its chain."""
        depth = int(depth)
        self.chain_depths[depth] = self.chain_depths.get(depth, 0) + 1

    def observe_chains(self, depths) -> None:
        for depth in depths.tolist():
            self.chain_depths[depth] = self.chain_depths.get(depth, 0) + 1

    # ------------------------------------------------------------------
    # Fill and stash time series
    # ------------------------------------------------------------------

    def sample_fill(self, event: str, table) -> None:
        """Append one fill sample (global + per-subtable factors)."""
        self.fill_timeline.append({
            "event": event,
            "global": float(table.load_factor),
            "subtables": [float(f) for f in table.subtable_load_factors],
        })

    def sample_stash(self, occupancy: int) -> None:
        occupancy = int(occupancy)
        self.stash_samples.append(occupancy)
        if occupancy > self.stash_high_water:
            self.stash_high_water = occupancy

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Engine-neutral plain-JSON rendering of everything recorded.

        Keys are strings and values integers/floats, so two snapshots
        compare with ``==`` and serialize with ``json.dumps`` directly.
        """
        kernels = list(self.kernels)
        if self._active is not None:
            kernels.append(self._active)
        return {
            "stripe_width": self.stripe_width,
            "kernels": kernels,
            "lock_heatmap": [
                {"subtable": sub, "stripe": stripe,
                 "grants": cell[0], "conflicts": cell[1]}
                for (sub, stripe), cell in sorted(self.heatmap.items())
            ],
            "probe_lengths": {str(k): v for k, v in
                              sorted(self.probe_lengths.items())},
            "chain_depths": {str(k): v for k, v in
                             sorted(self.chain_depths.items())},
            "fill_timeline": list(self.fill_timeline),
            "stash": {"high_water": self.stash_high_water,
                      "samples": list(self.stash_samples)},
        }


class _NullProfiler(Profiler):
    """Disabled profiler: the default on every table."""

    enabled = False


#: Shared disabled-profiler singleton (one attribute check to skip).
NULL_PROFILER = _NullProfiler()


# ---------------------------------------------------------------------------
# Derived per-batch report (folded in from repro.gpusim.profile)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelProfile:
    """Profiling counters for one batch execution."""

    name: str
    num_ops: int
    simulated_seconds: float
    warp_efficiency: float
    memory_utilization: float
    atomics_per_op: float
    atomic_conflict_rate: float
    transactions_per_op: float

    def __str__(self) -> str:
        return (f"{self.name}: {self.num_ops} ops in "
                f"{self.simulated_seconds * 1e6:.1f} us | "
                f"warp eff {self.warp_efficiency:.0%} | "
                f"mem util {self.memory_utilization:.0%} | "
                f"{self.atomics_per_op:.2f} atomics/op "
                f"({self.atomic_conflict_rate:.1%} conflicted) | "
                f"{self.transactions_per_op:.2f} tx/op")


def profile_batch(name: str, delta: Mapping[str, int], num_ops: int,
                  cost_model: "CostModel | None" = None,
                  compute_ns_per_op: float = 0.3) -> KernelProfile:
    """Build a :class:`KernelProfile` from a stats delta.

    ``delta`` is a counter snapshot difference
    (:meth:`repro.core.stats.TableStats.delta`).
    """
    # Imported lazily: repro.telemetry must not depend on repro.gpusim
    # at import time (the sim's kernels import telemetry submodules).
    from repro.gpusim.metrics import CostModel

    cost_model = cost_model or CostModel()
    device = cost_model.device
    seconds = cost_model.batch_seconds(delta, num_ops, compute_ns_per_op)

    transactions = (delta.get("bucket_reads", 0)
                    + delta.get("bucket_writes", 0)
                    + delta.get("random_accesses", 0))
    bytes_moved = transactions * device.cache_line_bytes
    memory_utilization = 0.0
    if seconds > 0:
        memory_utilization = min(1.0, (bytes_moved / seconds)
                                 / device.effective_bandwidth_bytes_per_s)

    atomics = (delta.get("lock_acquisitions", 0)
               + delta.get("atomic_exchanges", 0))
    conflicts = delta.get("lock_conflicts", 0)
    atomics_per_op = atomics / num_ops if num_ops else 0.0
    conflict_rate = conflicts / atomics if atomics else 0.0

    # Useful lane-ops: one per operation plus one per eviction (the
    # displaced pair is real work).  Wasted lane-ops: failed lock
    # attempts (revotes) and retry rounds.  Warp efficiency is the
    # useful fraction.
    evictions = delta.get("evictions", 0)
    retries = conflicts + max(0, delta.get("eviction_rounds", 0) - 1)
    useful = num_ops + evictions
    issued = useful + evictions + retries
    warp_efficiency = min(1.0, useful / issued) if issued else 1.0

    return KernelProfile(
        name=name,
        num_ops=num_ops,
        simulated_seconds=seconds,
        warp_efficiency=warp_efficiency,
        memory_utilization=memory_utilization,
        atomics_per_op=atomics_per_op,
        atomic_conflict_rate=conflict_rate,
        transactions_per_op=transactions / num_ops if num_ops else 0.0,
    )


def profile_operation(table, name: str, operation, *args,
                      cost_model: "CostModel | None" = None) -> KernelProfile:
    """Profile one batched call on a stats-carrying table.

    Example::

        profile = profile_operation(table, "insert", table.insert,
                                    keys, values)
    """
    before = table.stats.snapshot()
    operation(*args)
    delta = table.stats.delta(before)
    num_ops = len(args[0]) if args else 0
    return profile_batch(name, delta, num_ops, cost_model)
