"""Structured tracing: spans, instants, and counter samples.

The tracer records *what happened when* during a table run — kernel
launches, eviction rounds, lock retries, the resize lifecycle — as a
flat list of :class:`TraceEvent` records that the exporters
(:mod:`repro.telemetry.export`) can serialize as JSON-lines or Chrome
``trace_event`` JSON.

Timeline semantics
------------------
The simulator has no wall clock worth tracing (host time measures the
simulation, not the simulated GPU), so the tracer keeps a **logical
microsecond clock**:

* every event advances the clock by a small epsilon, so event order is
  total and strict;
* integrators that *know* a simulated duration (the bench runner prices
  each batch through the cost model) call :meth:`Tracer.advance` to move
  the clock by that much, so the exported timeline is laid out in
  simulated GPU time: batches occupy their simulated width, and the events
  inside a batch cluster at its start.

Disabled-path cost
------------------
Instrumented code is gated as ``if telemetry.enabled:`` — a single
attribute check against the shared :data:`NULL_TELEMETRY` singleton.
The :class:`NullTracer` also implements the full emitting API as no-ops
so un-gated call sites stay correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Epsilon (microseconds) separating consecutive events so ordering is
#: strict even when no simulated time elapses between them.
TICK_US = 0.01

#: Chrome trace_event phase codes used by this tracer.
PHASE_SPAN = "X"       # complete event (ts + dur)
PHASE_INSTANT = "i"    # instant event
PHASE_COUNTER = "C"    # counter sample (Perfetto renders a track graph)


@dataclass
class TraceEvent:
    """One structured trace record.

    ``phase`` is the Chrome ``trace_event`` phase code
    (:data:`PHASE_SPAN` / :data:`PHASE_INSTANT` / :data:`PHASE_COUNTER`).
    ``ts_us``/``dur_us`` are logical microseconds (see the module
    docstring); ``depth`` is the span-nesting depth at emission time,
    which lets tests assert nesting without re-deriving containment.
    """

    name: str
    category: str
    phase: str
    ts_us: float
    dur_us: float = 0.0
    depth: int = 0
    args: dict = field(default_factory=dict)


class _SpanHandle:
    """Context manager closing one span on a :class:`Tracer`."""

    __slots__ = ("_tracer", "_event")

    def __init__(self, tracer: "Tracer", event: TraceEvent) -> None:
        self._tracer = tracer
        self._event = event

    def __enter__(self) -> TraceEvent:
        return self._event

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close_span(self._event)


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Recording tracer: collects :class:`TraceEvent` objects in order."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._now_us = 0.0
        self._stack: list[TraceEvent] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now_us(self) -> float:
        """Current logical time (microseconds)."""
        return self._now_us

    def _tick(self) -> float:
        now = self._now_us
        self._now_us = now + TICK_US
        return now

    def advance(self, seconds: float) -> None:
        """Move the logical clock forward by a simulated duration."""
        if seconds > 0:
            self._now_us += seconds * 1e6

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def span(self, name: str, category: str = "", **args) -> _SpanHandle:
        """Open a span; close it by exiting the returned context manager.

        Spans nest: a span opened while another is active is recorded at
        ``depth + 1`` and, because the clock is monotonic, is contained
        by its parent's ``[ts, ts + dur]`` interval in the export.
        """
        event = TraceEvent(name=name, category=category, phase=PHASE_SPAN,
                           ts_us=self._tick(), depth=len(self._stack),
                           args=dict(args))
        self._stack.append(event)
        self.events.append(event)
        return _SpanHandle(self, event)

    def _close_span(self, event: TraceEvent) -> None:
        # Tolerate out-of-order exits (exceptions unwinding several
        # spans): pop until the closing span is off the stack.
        while self._stack:
            top = self._stack.pop()
            top.dur_us = max(TICK_US, self._tick() - top.ts_us)
            if top is event:
                break

    def instant(self, name: str, category: str = "", **args) -> None:
        """Record a point event."""
        self.events.append(TraceEvent(
            name=name, category=category, phase=PHASE_INSTANT,
            ts_us=self._tick(), depth=len(self._stack), args=dict(args)))

    def counter(self, name: str, values, category: str = "metric") -> None:
        """Record a counter/gauge sample.

        ``values`` is a number or a mapping of series name to number —
        Chrome's counter tracks render each series as a stacked area.
        """
        if not isinstance(values, dict):
            values = {"value": float(values)}
        else:
            values = {str(k): float(v) for k, v in values.items()}
        self.events.append(TraceEvent(
            name=name, category=category, phase=PHASE_COUNTER,
            ts_us=self._tick(), depth=len(self._stack), args=values))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def spans(self, name: str | None = None) -> list[TraceEvent]:
        """All span events, optionally filtered by exact name."""
        return [e for e in self.events if e.phase == PHASE_SPAN
                and (name is None or e.name == name)]

    def instants(self, name: str | None = None) -> list[TraceEvent]:
        """All instant events, optionally filtered by exact name."""
        return [e for e in self.events if e.phase == PHASE_INSTANT
                and (name is None or e.name == name)]

    def counters(self, name: str | None = None) -> list[TraceEvent]:
        """All counter samples, optionally filtered by exact name."""
        return [e for e in self.events if e.phase == PHASE_COUNTER
                and (name is None or e.name == name)]


class NullTracer:
    """No-op tracer: the default wired into every table.

    ``enabled`` is a class attribute, so the hot-path gate
    ``if telemetry.enabled`` costs one attribute load; the emitting
    methods exist (as no-ops) so un-gated call sites cannot crash.
    """

    enabled = False
    #: Always-empty event list (shared, immutable).
    events: tuple = ()

    def span(self, name: str, category: str = "", **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "", **args) -> None:
        return None

    def counter(self, name: str, values, category: str = "metric") -> None:
        return None

    def advance(self, seconds: float) -> None:
        return None

    def spans(self, name: str | None = None) -> list:
        return []

    def instants(self, name: str | None = None) -> list:
        return []

    def counters(self, name: str | None = None) -> list:
        return []


#: Shared no-op tracer instance.
NULL_TRACER = NullTracer()
