"""Declarative scenario specifications.

A :class:`ScenarioSpec` names one composed soak: a YCSB mix at some op
count, plus any combination of hot-key storms (``workloads.skew``),
delete/reinsert churn waves under a tight ``[alpha, beta]`` band,
a seeded fault plan with stash degradation, the SIMT sanitizer, a
memory budget with the :class:`~repro.core.MemoryBudget` eviction
policy, and sharding.  The spec is pure data — the runner interprets
it — so a scenario scales down for tier-1 tests via :meth:`scaled`
without changing its shape.

Latency SLOs are expressed in simulated **nanoseconds per operation**
(p50 / p99 / worst run-phase batch).  Per-op targets are
scale-invariant: the cost model's fixed overheads are scaled by the
same factor as the workload, so a 2% tier-1 variant is graded against
the same numbers as the full soak.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import DyCuckooConfig
from repro.errors import InvalidConfigError
from repro.faults import FAULT_SITES
from repro.workloads.ycsb import CORE_WORKLOADS

#: Floors applied by :meth:`ScenarioSpec.scaled` so heavily scaled-down
#: variants keep enough ops to mean something.
MIN_RECORDS = 256
MIN_OPERATIONS = 512
MIN_BATCH = 64
MIN_STORM_OPS = 32
MIN_BUDGET_BYTES = 24_000


@dataclass(frozen=True)
class StormSpec:
    """Periodic hot-key storms injected between run-phase batches.

    Every ``every`` run batches, a storm batch of ``ops`` operations
    hammers a fixed set of ``num_hot`` keys with Zipf(``exponent``)
    draws — half upserts, half finds — the paper's retweet-celebrity
    contention scenario.  The hot set is fixed per scenario, so storms
    update in place after the first wave.
    """

    every: int = 8
    ops: int = 4_000
    num_hot: int = 64
    exponent: float = 1.2

    def validate(self) -> None:
        if self.every < 1:
            raise InvalidConfigError("storm.every must be >= 1")
        if self.ops < 1:
            raise InvalidConfigError("storm.ops must be >= 1")
        if self.num_hot < 1:
            raise InvalidConfigError("storm.num_hot must be >= 1")


@dataclass(frozen=True)
class ChurnSpec:
    """Periodic delete/reinsert waves forcing resize churn.

    Every ``every`` run batches, alternately delete a seeded random
    ``fraction`` of the original record set, then reinsert exactly
    those keys on the next wave.  Under a tight ``[alpha, beta]`` band
    this drives repeated downsize/upsize cycles (Figure 12's
    grow-then-shrink sawtooth) while the mix keeps running.
    """

    every: int = 10
    fraction: float = 0.5

    def validate(self) -> None:
        if self.every < 1:
            raise InvalidConfigError("churn.every must be >= 1")
        if not 0.0 < self.fraction <= 1.0:
            raise InvalidConfigError("churn.fraction must be in (0, 1]")


@dataclass(frozen=True)
class SloSpec:
    """Latency targets in simulated nanoseconds per operation."""

    p50_ns: float = 25.0
    p99_ns: float = 150.0
    worst_ns: float = 800.0

    def check(self, latency: dict) -> list[str]:
        """SLO violations against a ns/op latency summary."""
        violations = []
        for name, target in (("p50", self.p50_ns), ("p99", self.p99_ns),
                             ("worst", self.worst_ns)):
            measured = latency.get(name, 0.0)
            if measured > target:
                violations.append(
                    f"{name} {measured:.1f} ns/op exceeds "
                    f"target {target:.1f}")
        return violations

    def targets(self) -> dict:
        return {"p50_ns": self.p50_ns, "p99_ns": self.p99_ns,
                "worst_ns": self.worst_ns}


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully seeded soak composition."""

    name: str
    description: str
    mix: str = "A"
    num_records: int = 50_000
    num_operations: int = 600_000
    batch_size: int = 10_000
    zipf_exponent: float = 0.99
    # Table geometry / resize band overrides.
    alpha: float = 0.30
    beta: float = 0.85
    initial_buckets: int = 64
    bucket_capacity: int = 32
    min_buckets: int = 8
    stash_capacity: int = 256
    incremental_resize: bool = True
    shards: int = 1
    # Composition axes (None/False = axis off).
    storm: StormSpec | None = None
    churn: ChurnSpec | None = None
    fault_rates: dict[str, float] | None = None
    fault_storms: dict[str, int] | None = None
    sanitizer: bool = False
    memory_budget_bytes: int | None = None
    slo: SloSpec = field(default_factory=SloSpec)
    seed: int = 2021

    def validate(self) -> None:
        if self.mix not in CORE_WORKLOADS:
            raise InvalidConfigError(
                f"unknown YCSB mix {self.mix!r}; "
                f"have {sorted(CORE_WORKLOADS)}")
        if self.num_records < 1 or self.num_operations < 1:
            raise InvalidConfigError(
                "num_records and num_operations must be >= 1")
        if self.batch_size < 1:
            raise InvalidConfigError("batch_size must be >= 1")
        if self.shards < 1:
            raise InvalidConfigError("shards must be >= 1")
        if self.storm is not None:
            self.storm.validate()
        if self.churn is not None:
            self.churn.validate()
        for site in (*(self.fault_rates or {}),
                     *(self.fault_storms or {})):
            if site not in FAULT_SITES:
                raise InvalidConfigError(f"unknown fault site {site!r}")
        if (self.memory_budget_bytes is not None
                and self.memory_budget_bytes <= 0):
            raise InvalidConfigError("memory_budget_bytes must be > 0")

    def config(self) -> DyCuckooConfig:
        """The table (or per-shard) configuration for this scenario."""
        return DyCuckooConfig(
            initial_buckets=self.initial_buckets,
            bucket_capacity=self.bucket_capacity,
            min_buckets=self.min_buckets,
            alpha=self.alpha,
            beta=self.beta,
            stash_capacity=self.stash_capacity,
            incremental_resize=self.incremental_resize,
            seed=self.seed,
        )

    def composition(self) -> dict[str, bool]:
        """Which axes this scenario composes (for ``--list`` and tests)."""
        return {
            "skew": (self.storm is not None
                     or self.zipf_exponent >= 0.9),
            "storm": self.storm is not None,
            "churn": self.churn is not None,
            "faults": bool(self.fault_rates),
            "sanitizer": self.sanitizer,
            "memory_budget": self.memory_budget_bytes is not None,
            "sharded": self.shards > 1,
        }

    def scaled(self, scale: float) -> "ScenarioSpec":
        """A proportionally smaller (or larger) copy of this scenario.

        Op counts, record counts, batch sizes, storm sizes and the
        memory budget all scale together (with floors), so the scaled
        variant keeps the same fill trajectory and ns/op profile.
        """
        if scale <= 0:
            raise InvalidConfigError(f"scale must be > 0, got {scale}")
        if scale == 1.0:
            return self
        storm = self.storm
        if storm is not None:
            storm = replace(storm,
                            ops=max(MIN_STORM_OPS, int(storm.ops * scale)))
        budget = self.memory_budget_bytes
        if budget is not None:
            budget = max(MIN_BUDGET_BYTES, int(budget * scale))
        return replace(
            self,
            num_records=max(MIN_RECORDS, int(self.num_records * scale)),
            num_operations=max(MIN_OPERATIONS,
                               int(self.num_operations * scale)),
            batch_size=max(MIN_BATCH, int(self.batch_size * scale)),
            storm=storm,
            memory_budget_bytes=budget,
        )
