"""Execute one scenario spec end-to-end and grade it.

The runner interprets a :class:`~repro.scenarios.spec.ScenarioSpec`:
builds the table (sharded or not) with the scenario's resize band,
attaches the requested layers (fault plan, sanitizer, flight recorder,
memory-budget policy), streams the YCSB mix with storm and churn
batches interleaved, prices every batch on the simulated cost model,
runs ``check_invariants`` after every batch, and emits one scorecard
dict (see :mod:`repro.scenarios.scorecard`).

Timing uses the same convention as :mod:`repro.bench.runner`: a batch's
simulated seconds are the cost model's price for its event-counter
delta.  The latency SLO is graded on run and storm batches only —
load and churn waves are bulk maintenance, not request traffic.

With ``differential=True`` the runner mirrors every operation (and
every budget eviction) into a plain dict and asserts agreement after
every batch — the same oracle as ``tests/test_differential_fuzz.py``,
which makes the scaled-down tier-1 variants a correctness harness, not
just a smoke test.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.dycuckoo_adapter import DyCuckooAdapter
from repro.core.analysis import check_invariants
from repro.core.memory_budget import MemoryBudget
from repro.core.table import DyCuckooTable
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.gpusim.metrics import CostModel
from repro.sanitizer import Sanitizer
from repro.scenarios.scorecard import SCHEMA, write_scorecard
from repro.scenarios.spec import ScenarioSpec
from repro.shard import ShardedDyCuckoo
from repro.telemetry import FlightRecorder
from repro.telemetry.latency import summarize
from repro.workloads.batches import Operation
from repro.workloads.skew import zipf_keys
from repro.workloads.ycsb import CORE_WORKLOADS, YcsbWorkload

_COSTS = DyCuckooAdapter.KERNEL_COSTS
_PER_KIND_NS = {"insert": _COSTS.insert_ns, "find": _COSTS.find_ns,
                "delete": _COSTS.delete_ns}


def _tables_of(table) -> list[DyCuckooTable]:
    if isinstance(table, ShardedDyCuckoo):
        return list(table.shards)
    return [table]


def _build_table(spec: ScenarioSpec):
    config = spec.config()
    if spec.shards > 1:
        return ShardedDyCuckoo(spec.shards, config=config)
    return DyCuckooTable(config)


def _compute_ns(operations) -> float:
    total = sum(len(op) for op in operations)
    if total == 0:
        return _COSTS.find_ns
    weighted = sum(len(op) * _PER_KIND_NS[op.kind] for op in operations)
    return weighted / total


class _Model:
    """Optional dict oracle mirroring every table mutation."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.data: dict[int, int] = {}

    def apply(self, table, op: Operation) -> None:
        if op.kind == "insert":
            table.insert(op.keys, op.values)
            if self.enabled:
                for k, v in zip(op.keys.tolist(), op.values.tolist()):
                    self.data[k] = v
        elif op.kind == "find":
            values, found = table.find(op.keys)
            if self.enabled:
                for i, k in enumerate(op.keys.tolist()):
                    assert bool(found[i]) == (k in self.data), (
                        f"find divergence on key {k}")
                    if k in self.data:
                        assert int(values[i]) == self.data[k], (
                            f"value divergence on key {k}")
        else:
            removed = table.delete(op.keys)
            if self.enabled:
                expected = 0
                seen = set()
                for k in op.keys.tolist():
                    if k in self.data and k not in seen:
                        expected += 1
                    seen.add(k)
                    self.data.pop(k, None)
                assert int(removed.sum()) == expected, "delete divergence"

    def evict(self, keys: np.ndarray) -> None:
        if self.enabled:
            for k in keys.tolist():
                self.data.pop(k, None)

    def assert_agreement(self, table) -> None:
        if not self.enabled:
            return
        assert len(table) == len(self.data), (
            f"size divergence: table {len(table)} vs "
            f"model {len(self.data)}")
        if self.data:
            keys = np.array(sorted(self.data), dtype=np.uint64)
            values, found = table.find(keys)
            assert bool(found.all()), "model key missing from table"
            assert [int(v) for v in values] == [
                self.data[int(k)] for k in keys], "model value divergence"


def _iter_batches(spec: ScenarioSpec, workload: YcsbWorkload):
    """Yield ``(kind, operations)`` for the whole scenario.

    ``load`` batches chunk the bulk load; ``run`` batches come from the
    YCSB run phase; ``storm`` and ``churn`` batches interleave per the
    spec's cadences.
    """
    load = workload.load_phase()
    record_keys = load.keys.copy()
    for start in range(0, len(load.keys), spec.batch_size):
        stop = start + spec.batch_size
        yield "load", [Operation("insert", load.keys[start:stop],
                                 load.values[start:stop])]

    storm_stream = None
    storm_values_rng = None
    if spec.storm is not None:
        n_batches = math.ceil(spec.num_operations / spec.batch_size)
        n_storms = n_batches // spec.storm.every + 1
        # One stream, sliced per storm: the hot set is fixed (one key
        # space for the whole scenario) while draws vary per storm.
        storm_stream = zipf_keys(spec.storm.ops * n_storms,
                                 spec.storm.num_hot,
                                 exponent=spec.storm.exponent,
                                 seed=spec.seed ^ 0x570B)
        storm_values_rng = np.random.default_rng(spec.seed ^ 0x57F)

    churn_rng = np.random.default_rng(spec.seed ^ 0xC4B2)
    churn_held: np.ndarray | None = None
    storm_index = 0
    for index, batch in enumerate(workload.run_phase(), start=1):
        yield "run", list(batch.operations)

        if spec.storm is not None and index % spec.storm.every == 0:
            lo = storm_index * spec.storm.ops
            keys = storm_stream[lo:lo + spec.storm.ops]
            storm_index += 1
            half = len(keys) // 2
            ops = []
            if half:
                ops.append(Operation(
                    "insert", keys[:half],
                    storm_values_rng.integers(
                        1, 1 << 62, half).astype(np.uint64)))
            if len(keys) > half:
                ops.append(Operation("find", keys[half:]))
            yield "storm", ops

        if spec.churn is not None and index % spec.churn.every == 0:
            if churn_held is None:
                count = max(1, int(len(record_keys)
                                   * spec.churn.fraction))
                picks = churn_rng.choice(len(record_keys), size=count,
                                         replace=False)
                churn_held = np.sort(record_keys[np.sort(picks)])
                yield "churn", [Operation("delete", churn_held)]
            else:
                values = churn_rng.integers(
                    1, 1 << 62, len(churn_held)).astype(np.uint64)
                yield "churn", [Operation("insert", churn_held, values)]
                churn_held = None


def run_scenario(spec: ScenarioSpec, scale: float = 1.0,
                 out_dir=None, differential: bool = False) -> dict:
    """Run one scenario at ``scale`` and return its scorecard dict.

    When ``out_dir`` is given the scorecard is also written as
    ``SCORECARD_<name>.json`` there.
    """
    spec.validate()
    spec = spec.scaled(scale)
    table = _build_table(spec)
    recorder = FlightRecorder()
    table.set_recorder(recorder)
    sanitizer = None
    if spec.sanitizer:
        sanitizer = table.set_sanitizer(Sanitizer())
    plan = None
    if spec.fault_rates:
        plan = FaultPlan(seed=spec.seed ^ 0xFA17,
                         rates=dict(spec.fault_rates),
                         storms=dict(spec.fault_storms or {}))
        table.set_fault_plan(plan)
    budget = None
    if spec.memory_budget_bytes is not None:
        budget = MemoryBudget(spec.memory_budget_bytes,
                              seed=spec.seed ^ 0xB4D6)
    workload = YcsbWorkload(CORE_WORKLOADS[spec.mix],
                            num_records=spec.num_records,
                            num_operations=spec.num_operations,
                            batch_size=spec.batch_size,
                            zipf_exponent=spec.zipf_exponent,
                            seed=spec.seed)
    cost_model = CostModel(overhead_scale=scale)
    model = _Model(differential)

    problems: list[str] = []
    slo_samples: list[float] = []
    maintenance_samples: list[float] = []
    batch_kinds = {"load": 0, "run": 0, "storm": 0, "churn": 0}
    executed = 0
    invariant_checks = 0
    invariant_error: str | None = None
    peak_bytes = 0
    worst_batch = -1
    worst_sample = -1.0
    error: str | None = None

    try:
        for kind, operations in _iter_batches(spec, workload):
            before = table.stats.snapshot()
            batch_ops = 0
            for op in operations:
                model.apply(table, op)
                batch_ops += len(op)
            if budget is not None and budget.over_budget(table):
                report = budget.enforce(table)
                model.evict(report.evicted_keys)
                batch_ops += report.evicted
            delta = table.stats.delta(before)
            seconds = cost_model.batch_seconds(
                delta, batch_ops, _compute_ns(operations),
                kernel_launches=max(1, len(operations)))
            batch_kinds[kind] += 1
            executed += batch_ops
            if kind in ("run", "storm") and batch_ops:
                sample = seconds / batch_ops * 1e9
                slo_samples.append(sample)
                if sample > worst_sample:
                    worst_sample = sample
                    worst_batch = len(slo_samples) - 1
            elif kind == "churn" and batch_ops:
                # Churn waves are bulk maintenance, outside the request
                # SLO — but they are where one-shot resizes spike, so
                # their per-op latency is tracked separately (and gated
                # for the resize scenarios).
                maintenance_samples.append(seconds / batch_ops * 1e9)
            peak_bytes = max(peak_bytes,
                             int(table.memory_footprint().total_bytes))
            for part in _tables_of(table):
                check_invariants(part)
            invariant_checks += 1
            model.assert_agreement(table)
        table.validate()
        invariant_checks += 1
        model.assert_agreement(table)
    except AssertionError as exc:
        error = f"divergence: {exc}"
        invariant_error = str(exc)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    if error is not None:
        problems.append(error)

    latency = summarize(slo_samples)
    latency.pop("total", None)
    latency["worst_batch"] = worst_batch
    maintenance = summarize(maintenance_samples)
    maintenance.pop("total", None)
    slo_violations = spec.slo.check(latency) if error is None else []
    problems.extend(slo_violations)

    snap = table.stats.snapshot()
    stashes = [t.stash for t in _tables_of(table)]
    san_ok = True
    san_violations = 0
    if sanitizer is not None:
        san_violations = len(sanitizer.violations)
        san_ok = sanitizer.ok and not (
            sanitizer.report()["subtable_locks_held"])
        if not san_ok:
            problems.append(
                f"sanitizer: {san_violations} violation(s)")
    budget_ok = budget is None or budget.violations == 0
    if not budget_ok:
        problems.append(
            f"memory budget missed in {budget.violations} "
            f"enforcement(s)")

    card = {
        "schema": SCHEMA,
        "name": spec.name,
        "seed": spec.seed,
        "scale": float(scale),
        "verdict": "pass" if not problems else "fail",
        "problems": problems,
        "workload": {
            "mix": spec.mix,
            "num_records": spec.num_records,
            "num_operations": spec.num_operations,
            "batch_size": spec.batch_size,
            "shards": spec.shards,
        },
        "ops": {
            "executed": executed,
            "batches": sum(batch_kinds.values()),
            "load_batches": batch_kinds["load"],
            "storm_batches": batch_kinds["storm"],
            "churn_batches": batch_kinds["churn"],
        },
        "latency": latency,
        "latency_maintenance": maintenance,
        "slo": {
            "targets": spec.slo.targets(),
            "attained": not slo_violations and error is None,
            "violations": slo_violations,
        },
        "invariants": {
            "checks": invariant_checks,
            "ok": invariant_error is None and error is None,
            "error": invariant_error,
        },
        "stash": {
            "high_water": max(s.high_water for s in stashes),
            "final": sum(len(s) for s in stashes),
            "pushes": int(snap.get("stash_pushes", 0)),
            "drained": int(snap.get("stash_drained", 0)),
        },
        "resizes": {
            "upsizes": int(snap.get("upsizes", 0)),
            "downsizes": int(snap.get("downsizes", 0)),
            "aborts": int(snap.get("resize_aborts", 0)),
            "migration_slices": int(snap.get("migration_slices", 0)),
            "migrated_pairs": int(snap.get("migrated_pairs", 0)),
            "capacity_blocked": int(snap.get("capacity_blocked", 0)),
        },
        "faults": {
            "enabled": plan is not None,
            "fired": len(plan.fired) if plan is not None else 0,
            "by_site": (plan.fired_by_site()
                        if plan is not None else {}),
        },
        "sanitizer": {
            "enabled": sanitizer is not None,
            "ok": san_ok,
            "violations": san_violations,
        },
        "memory": {
            "budget_bytes": spec.memory_budget_bytes,
            "peak_bytes": peak_bytes,
            "final_bytes": int(table.memory_footprint().total_bytes),
            "evictions": budget.total_evicted if budget else 0,
            "budget_ok": budget_ok,
        },
    }
    if card["verdict"] == "fail" and recorder.enabled:
        card["flight_recorder"] = recorder.summary()
    if out_dir is not None:
        write_scorecard(card, out_dir)
    return card
