"""Scenario soak subsystem: composed chaos/skew/churn/memory soaks.

* :mod:`repro.scenarios.spec` — declarative scenario specifications,
* :mod:`repro.scenarios.registry` — the built-in named scenarios,
* :mod:`repro.scenarios.runner` — execute a spec, grade it,
* :mod:`repro.scenarios.scorecard` — the ``SCORECARD_<name>.json``
  schema and validator.

See ``docs/scenarios.md`` for the registry, the scorecard schema, and
how to add a scenario.
"""

from repro.scenarios.registry import (REGISTRY, get_scenario,
                                      scenario_names)
from repro.scenarios.runner import run_scenario
from repro.scenarios.scorecard import (SCHEMA, scorecard_filename,
                                       validate_scorecard,
                                       write_scorecard)
from repro.scenarios.spec import (ChurnSpec, ScenarioSpec, SloSpec,
                                  StormSpec)

__all__ = [
    "ScenarioSpec",
    "StormSpec",
    "ChurnSpec",
    "SloSpec",
    "REGISTRY",
    "scenario_names",
    "get_scenario",
    "run_scenario",
    "SCHEMA",
    "validate_scorecard",
    "write_scorecard",
    "scorecard_filename",
]
