"""The built-in scenario registry.

Ten named soaks covering every composition axis, individually and —
in ``kitchen_sink`` — all at once.  Op counts sit at 10x the YCSB
microbenchmark (``benchmarks/bench_ycsb.py`` runs 60k ops; scenarios
run 600k) so the full matrix is a genuine soak while the tier-1 suite
runs every scenario at ``scale=0.02`` through the same code path.

SLO targets are simulated ns/op (see :mod:`repro.scenarios.spec`):
clean traffic lands around 4-8 ns/op on the modeled GTX 1080, so the
default targets grade steady-state behaviour while leaving headroom
for resize spikes; chaos scenarios get looser tails because aborted
resizes and stash traffic are the *point* of those runs.
"""

from __future__ import annotations

from repro.errors import InvalidConfigError
from repro.scenarios.spec import ChurnSpec, ScenarioSpec, SloSpec, StormSpec

#: Chaos rates tuned to the sites the batch path actually invokes:
#: ``insert.evict`` fires only when an eviction chain runs and
#: ``resize.abort.*`` once per resize stage, so rates are high enough
#: that every soak sees real fires while the (bumped) stash absorbs
#: the eviction failures between drain-back epochs.
CHAOS_RATES = {
    "insert.evict": 0.15,
    "resize.abort.trigger": 0.08,
    "resize.abort.plan": 0.05,
    "resize.abort.rehash": 0.10,
    "resize.abort.spill": 0.20,
}

#: Once a fault fires, the next few invocations of the same site fire
#: too — degradation arrives in bursts, not single events.
CHAOS_STORMS = {"insert.evict": 3}

_SCENARIOS = (
    ScenarioSpec(
        name="ycsb_a_update_heavy",
        description="YCSB-A 50/50 read-update soak, zipfian skew",
        mix="A",
        slo=SloSpec(p50_ns=30.0, p99_ns=200.0, worst_ns=1200.0),
    ),
    ScenarioSpec(
        name="ycsb_b_read_mostly",
        description="YCSB-B 95/5 read-mostly soak, zipfian skew",
        mix="B",
        slo=SloSpec(p50_ns=25.0, p99_ns=150.0, worst_ns=800.0),
    ),
    ScenarioSpec(
        name="ycsb_c_sharded_scatter",
        description="YCSB-C read-only scatter across 4 shards",
        mix="C",
        shards=4,
        slo=SloSpec(p50_ns=25.0, p99_ns=120.0, worst_ns=600.0),
    ),
    ScenarioSpec(
        name="ycsb_d_insert_growth",
        description="YCSB-D latest-distribution growth (steady upsizes)",
        mix="D",
        slo=SloSpec(p50_ns=30.0, p99_ns=250.0, worst_ns=1500.0),
    ),
    ScenarioSpec(
        name="ycsb_f_rmw",
        description="YCSB-F read-modify-write soak",
        mix="F",
        slo=SloSpec(p50_ns=30.0, p99_ns=200.0, worst_ns=1200.0),
    ),
    ScenarioSpec(
        name="hot_key_storm",
        description="YCSB-B with periodic celebrity-key storms, "
                    "sanitizer attached",
        mix="B",
        storm=StormSpec(every=4, ops=4_000, num_hot=64, exponent=1.3),
        sanitizer=True,
        slo=SloSpec(p50_ns=30.0, p99_ns=200.0, worst_ns=1200.0),
    ),
    ScenarioSpec(
        name="resize_thrash",
        description="tight [alpha, beta] band with delete/reinsert "
                    "churn waves (Fig. 12 sawtooth)",
        mix="A",
        alpha=0.45,
        beta=0.65,
        initial_buckets=16,
        bucket_capacity=16,
        churn=ChurnSpec(every=6, fraction=0.5),
        sanitizer=True,
        slo=SloSpec(p50_ns=40.0, p99_ns=400.0, worst_ns=4000.0),
    ),
    ScenarioSpec(
        name="chaos_soak",
        description="YCSB-A under the chaos fault plan with stash "
                    "degradation, sanitizer attached",
        mix="A",
        fault_rates=CHAOS_RATES,
        fault_storms=CHAOS_STORMS,
        stash_capacity=16384,
        sanitizer=True,
        slo=SloSpec(p50_ns=40.0, p99_ns=400.0, worst_ns=4000.0),
    ),
    ScenarioSpec(
        name="memory_pressure",
        description="YCSB-D growth against a hard memory budget "
                    "(eviction policy active)",
        mix="D",
        # ~55% of the unconstrained peak (1.59 MB at full scale), so
        # the eviction policy must keep firing as the workload grows.
        memory_budget_bytes=900_000,
        slo=SloSpec(p50_ns=40.0, p99_ns=400.0, worst_ns=6000.0),
    ),
    ScenarioSpec(
        name="kitchen_sink",
        description="everything at once: chaos faults + hot-key storms "
                    "+ churn in a tight band + memory budget + "
                    "sanitizer",
        mix="A",
        alpha=0.40,
        beta=0.70,
        initial_buckets=16,
        bucket_capacity=16,
        storm=StormSpec(every=5, ops=3_000, num_hot=64, exponent=1.2),
        churn=ChurnSpec(every=8, fraction=0.4),
        fault_rates=CHAOS_RATES,
        fault_storms=CHAOS_STORMS,
        stash_capacity=16384,
        sanitizer=True,
        # ~60% of the unconstrained peak (1.33 MB at full scale).
        memory_budget_bytes=800_000,
        slo=SloSpec(p50_ns=60.0, p99_ns=600.0, worst_ns=8000.0),
    ),
)

REGISTRY: dict[str, ScenarioSpec] = {s.name: s for s in _SCENARIOS}


def scenario_names() -> list[str]:
    return list(REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return REGISTRY[name]
    except KeyError:
        raise InvalidConfigError(
            f"unknown scenario {name!r}; "
            f"have {', '.join(REGISTRY)}") from None
