"""Scorecard schema: one JSON verdict document per scenario run.

Every scenario run emits one scorecard — ``SCORECARD_<name>.json`` —
with a fixed schema so CI artifacts, the soak matrix and tier-1 tests
all grade runs the same way.  :func:`validate_scorecard` is the single
source of truth for that schema; the CLI smoke mode and the test suite
both call it.
"""

from __future__ import annotations

import json
from pathlib import Path

SCHEMA = "repro.scenarios.scorecard/v1"

#: Required top-level sections and the keys each must carry.  Values
#: are type tuples accepted for the key (bool before int: bool is an
#: int subclass, so bool-typed fields list bool alone).
_SECTIONS: dict[str, dict[str, tuple]] = {
    "workload": {
        "mix": (str,),
        "num_records": (int,),
        "num_operations": (int,),
        "batch_size": (int,),
        "shards": (int,),
    },
    "ops": {
        "executed": (int,),
        "batches": (int,),
        "load_batches": (int,),
        "storm_batches": (int,),
        "churn_batches": (int,),
    },
    "latency": {
        "count": (int,),
        "p50": (float, int),
        "p90": (float, int),
        "p99": (float, int),
        "worst": (float, int),
        "mean": (float, int),
        "worst_batch": (int,),
    },
    "slo": {
        "targets": (dict,),
        "attained": (bool,),
        "violations": (list,),
    },
    "invariants": {
        "checks": (int,),
        "ok": (bool,),
        "error": (str, type(None)),
    },
    "stash": {
        "high_water": (int,),
        "final": (int,),
        "pushes": (int,),
        "drained": (int,),
    },
    "resizes": {
        "upsizes": (int,),
        "downsizes": (int,),
        "aborts": (int,),
    },
    "faults": {
        "enabled": (bool,),
        "fired": (int,),
        "by_site": (dict,),
    },
    "sanitizer": {
        "enabled": (bool,),
        "ok": (bool,),
        "violations": (int,),
    },
    "memory": {
        "budget_bytes": (int, type(None)),
        "peak_bytes": (int,),
        "final_bytes": (int,),
        "evictions": (int,),
        "budget_ok": (bool,),
    },
}

_TOP_LEVEL: dict[str, tuple] = {
    "schema": (str,),
    "name": (str,),
    "seed": (int,),
    "scale": (float, int),
    "verdict": (str,),
    "problems": (list,),
}


def validate_scorecard(card: dict) -> list[str]:
    """Schema problems in ``card`` (empty list = schema-valid)."""
    problems: list[str] = []
    if not isinstance(card, dict):
        return [f"scorecard must be a dict, got {type(card).__name__}"]
    for key, types in _TOP_LEVEL.items():
        if key not in card:
            problems.append(f"missing top-level key {key!r}")
        elif not isinstance(card[key], types):
            problems.append(
                f"{key!r} has type {type(card[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}")
    if card.get("schema") not in (None, SCHEMA):
        problems.append(
            f"schema is {card.get('schema')!r}, expected {SCHEMA!r}")
    if card.get("verdict") not in (None, "pass", "fail"):
        problems.append(
            f"verdict is {card.get('verdict')!r}, expected pass/fail")
    for section, keys in _SECTIONS.items():
        body = card.get(section)
        if not isinstance(body, dict):
            problems.append(f"missing section {section!r}")
            continue
        for key, types in keys.items():
            if key not in body:
                problems.append(f"missing {section}.{key}")
            elif not isinstance(body[key], types):
                problems.append(
                    f"{section}.{key} has type "
                    f"{type(body[key]).__name__}, expected "
                    f"{'/'.join(t.__name__ for t in types)}")
    if card.get("verdict") == "fail" and not card.get("problems"):
        problems.append("verdict is fail but problems is empty")
    return problems


def scorecard_filename(name: str) -> str:
    return f"SCORECARD_{name}.json"


def write_scorecard(card: dict, out_dir) -> Path:
    """Write ``card`` as ``SCORECARD_<name>.json`` under ``out_dir``."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / scorecard_filename(card["name"])
    path.write_text(json.dumps(card, indent=2, sort_keys=True) + "\n")
    return path
