"""Resize kernels (Section IV-D): conflict-free upsize, merging downsize.

**Upsize** assigns one warp per *source bucket*: because the subtable
doubled, every entry of bucket ``loc`` rehashes to ``loc`` or
``loc + old_n`` and no two source buckets can collide on a destination —
so the kernel runs without any locking at full memory bandwidth.  The
functions here perform exactly that bucket-pair scatter and report the
transaction counts, complementing the vectorized implementation in
:mod:`repro.core.resize` (tests assert both produce identical tables).

**Downsize** merges buckets ``loc`` and ``loc + new_n`` into ``loc``;
entries beyond bucket capacity are returned as *residuals* for the
caller to spill into the other subtables (with the downsizing subtable
excluded), matching the single-kernel design of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.subtable import EMPTY
from repro.gpusim.memory import MemoryTracker
from repro.kernels.insert import KernelRunResult


def run_upsize_kernel(table, target: int) -> KernelRunResult:
    """Double subtable ``target`` via the conflict-free per-bucket scatter.

    Mutates the table's storage directly.  One warp (here: one loop
    iteration) handles one source bucket: it reads the bucket, computes
    each occupant's one extra hash bit, and scatters entries between the
    low and high destination buckets.
    """
    st = table.subtables[target]
    old_n = st.n_buckets
    new_n = old_n * 2
    cap = st.bucket_capacity
    result = KernelRunResult()
    tracker = MemoryTracker()

    new_keys = np.zeros((new_n, cap), dtype=np.uint64)
    new_values = np.zeros((new_n, cap), dtype=np.uint64)
    hash_fn = table.table_hashes[target]
    for bucket in range(old_n):
        keys_row = st.keys[bucket]
        occupied = keys_row != EMPTY
        tracker.bucket_access()
        result.memory_transactions += 1
        if not occupied.any():
            continue
        codes = keys_row[occupied]
        vals = st.values[bucket][occupied]
        dest = hash_fn.bucket(codes, new_n)
        # Destination is provably bucket or bucket + old_n.
        if not bool(np.all((dest == bucket) | (dest == bucket + old_n))):
            raise AssertionError(
                "conflict-free upsize property violated: entry left its "
                "bucket pair"
            )
        for destination in (bucket, bucket + old_n):
            sel = dest == destination
            count = int(sel.sum())
            if count:
                new_keys[destination, :count] = codes[sel]
                new_values[destination, :count] = vals[sel]
                tracker.bucket_access()
                result.memory_transactions += 1
        result.completed_ops += len(codes)

    size = st.size
    st.n_buckets = new_n
    st.keys = new_keys
    st.values = new_values
    st.size = size
    result.rounds = old_n
    return result


def run_downsize_kernel(table, target: int
                        ) -> tuple[np.ndarray, np.ndarray, KernelRunResult]:
    """Halve subtable ``target``; returns residual ``(codes, values)``.

    One warp handles one destination bucket, merging the two source
    buckets that map onto it.  Entries that do not fit are residuals;
    the caller spills them via the insert path with ``target`` excluded
    (see :meth:`repro.core.resize.ResizeController.downsize`).
    """
    st = table.subtables[target]
    old_n = st.n_buckets
    new_n = old_n // 2
    cap = st.bucket_capacity
    result = KernelRunResult()
    tracker = MemoryTracker()

    new_keys = np.zeros((new_n, cap), dtype=np.uint64)
    new_values = np.zeros((new_n, cap), dtype=np.uint64)
    residual_codes: list[np.ndarray] = []
    residual_values: list[np.ndarray] = []
    kept = 0
    for bucket in range(new_n):
        low_occ = st.keys[bucket] != EMPTY
        high_occ = st.keys[bucket + new_n] != EMPTY
        tracker.bucket_access(2)
        result.memory_transactions += 2
        codes = np.concatenate([st.keys[bucket][low_occ],
                                st.keys[bucket + new_n][high_occ]])
        vals = np.concatenate([st.values[bucket][low_occ],
                               st.values[bucket + new_n][high_occ]])
        fit = min(len(codes), cap)
        new_keys[bucket, :fit] = codes[:fit]
        new_values[bucket, :fit] = vals[:fit]
        kept += fit
        if len(codes) > cap:
            residual_codes.append(codes[cap:])
            residual_values.append(vals[cap:])
        if fit:
            tracker.bucket_access()
            result.memory_transactions += 1
        result.completed_ops += len(codes)

    st.n_buckets = new_n
    st.keys = new_keys
    st.values = new_values
    st.size = kept
    result.rounds = new_n
    codes_out = (np.concatenate(residual_codes) if residual_codes
                 else np.zeros(0, dtype=np.uint64))
    values_out = (np.concatenate(residual_values) if residual_values
                  else np.zeros(0, dtype=np.uint64))
    return codes_out, values_out, result
