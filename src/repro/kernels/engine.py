"""Execution-engine selection and shared telemetry for the kernels.

Every ``run_*_kernel`` entry point takes ``engine="warp" | "cohort"``:

* ``"warp"`` — the reference per-warp SIMT interpreter (one Python
  object per warp, stepped by :class:`~repro.gpusim.kernel.RoundScheduler`),
* ``"cohort"`` — the structure-of-arrays engine of
  :mod:`repro.gpusim.cohort`, bit-for-bit conformant with the
  reference and 1-2 orders of magnitude faster.

Both engines emit the same telemetry: one ``kernel.<op>`` span per run
(labelled with the engine) and counters derived from the aggregate
:class:`~repro.kernels.insert.KernelRunResult` — which the conformance
contract guarantees to be identical across engines, so dashboards see
the same stream regardless of the engine that produced it.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.errors import InvalidConfigError
from repro.telemetry import NULL_TELEMETRY

#: Engines accepted by the ``run_*_kernel`` entry points.
VALID_ENGINES = ("warp", "cohort")


def resolve_engine(engine: str) -> str:
    """Validate an engine name; returns it for chaining."""
    if engine not in VALID_ENGINES:
        raise InvalidConfigError(
            f"unknown kernel engine {engine!r}; expected one of "
            f"{VALID_ENGINES}"
        )
    return engine


def kernel_span(table, op: str, n: int, engine: str):
    """Context manager for one kernel launch (span when instrumented)."""
    telemetry = getattr(table, "telemetry", NULL_TELEMETRY)
    if not telemetry.enabled:
        return nullcontext()
    return telemetry.tracer.span(f"kernel.{op}", "kernel", n=n,
                                 engine=engine)


def record_kernel_counters(table, result) -> None:
    """Fold a run's aggregate counters into the table's metrics.

    Counter values come only from the :class:`KernelRunResult`
    aggregates, never from engine internals, so the stream is identical
    whichever engine executed the launch.
    """
    telemetry = getattr(table, "telemetry", NULL_TELEMETRY)
    if not telemetry.enabled:
        return
    metrics = telemetry.metrics
    metrics.counter("kernel.rounds").inc(result.rounds)
    metrics.counter("kernel.transactions").inc(result.memory_transactions)
    metrics.counter("kernel.lock_acquisitions").inc(result.lock_acquisitions)
    metrics.counter("kernel.lock_conflicts").inc(result.lock_conflicts)
    metrics.counter("kernel.evictions").inc(result.evictions)
    metrics.counter("kernel.completed_ops").inc(result.completed_ops)
