"""Warp-centric FIND kernel (Section V-B).

One warp processes one lookup at a time: the warp reads the key's first
candidate bucket in a single coalesced transaction, each lane compares
one slot, and a ballot reports the matching lane.  Only on a miss does
the warp read the second candidate bucket — the two-layer scheme
guarantees there is no third.

FIND needs no locks at all (read-only), which is why the paper
parallelizes it trivially.  ``engine="cohort"`` runs the same program
through the structure-of-arrays engine (:mod:`repro.gpusim.cohort`)
with identical results and transaction counts.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.gpusim.memory import MemoryTracker
from repro.gpusim.warp import WarpContext
from repro.kernels.engine import (kernel_span, record_kernel_counters,
                                  resolve_engine)
from repro.kernels.insert import KernelRunResult
from repro.sanitizer import NULL_SANITIZER
from repro.telemetry.profiler import NULL_PROFILER


def _ballot_match(ctx: WarpContext, bucket_keys: np.ndarray,
                  code: int) -> int:
    """Warp-wide slot scan; returns matching slot or -1."""
    matches = bucket_keys == np.uint64(code)
    pred = ctx.scratch_pred
    for stripe_start in range(0, len(bucket_keys), ctx.width):
        stripe = matches[stripe_start:stripe_start + ctx.width]
        pred[:] = False
        pred[:len(stripe)] = stripe
        hit = ctx.ffs(ctx.ballot(pred))
        if hit >= 0:
            return stripe_start + hit
    return -1


def run_find_kernel(table, keys, engine: str = "warp", *,
                    codes=None, first=None, second=None,
                    raw_of=None) -> tuple[np.ndarray, np.ndarray,
                                          KernelRunResult]:
    """Look up a batch of keys lane-faithfully.

    Returns ``(values, found, result)``.  Semantically identical to
    :meth:`repro.core.table.DyCuckooTable.find` (asserted by tests);
    this path additionally yields exact per-warp transaction counts.

    ``codes``/``first``/``second``/``raw_of`` let a caller that has
    already encoded and pair-hashed the batch (see
    :class:`repro.core.batch_ops.EncodedBatch`) skip the re-derivation.
    """
    from repro.core.table import encode_keys

    resolve_engine(engine)
    if codes is None:
        codes = encode_keys(np.asarray(keys, dtype=np.uint64))
    n = len(codes)
    san = getattr(table, "sanitizer", NULL_SANITIZER)
    prof = getattr(table, "profiler", NULL_PROFILER)
    if san.enabled:
        # FIND is read-only and lock-free by design (Section V-B):
        # locking=False exempts it from the unlocked-write contract and
        # its probes are recorded as "probe" kind (exempt from pairing).
        san.begin_kernel("find", locking=False, table=table)
    if prof.enabled:
        prof.begin_kernel("find", n)
    try:
        with kernel_span(table, "find", n, engine):
            if engine == "cohort":
                from repro.gpusim.cohort import cohort_find

                values, found, result = cohort_find(table, codes, first,
                                                    second, raw_of)
            else:
                values, found, result = _warp_find(table, codes, first,
                                                   second)
    except BaseException:
        if prof.enabled:
            prof.end_kernel()
        raise
    finally:
        if san.enabled:
            san.end_kernel()
    if prof.enabled:
        prof.end_kernel(dataclasses.asdict(result))
    record_kernel_counters(table, result)
    return values, found, result


def _warp_find(table, codes: np.ndarray, first=None, second=None
               ) -> tuple[np.ndarray, np.ndarray, KernelRunResult]:
    n = len(codes)
    values = np.zeros(n, dtype=np.uint64)
    found = np.zeros(n, dtype=bool)
    result = KernelRunResult()
    san = getattr(table, "sanitizer", NULL_SANITIZER)
    tracker = MemoryTracker(sanitizer=san if san.enabled else None)
    ctx = WarpContext(warp_id=0)
    if n == 0:
        return values, found, result

    if first is None or second is None:
        first, second = table.pair_hash.tables_for(codes)
    prof = getattr(table, "profiler", NULL_PROFILER)
    first_hits = 0
    for i in range(n):
        code = int(codes[i])
        for probe, target in enumerate((int(first[i]), int(second[i]))):
            st = table.subtables[target]
            bucket = int(table.bucket_for(
                target, np.asarray([code], dtype=np.uint64))[0])
            tracker.bucket_access()
            result.memory_transactions += 1
            slot = _ballot_match(ctx, st.keys[bucket], code)
            if slot >= 0:
                values[i] = st.values[bucket, slot]
                found[i] = True
                if probe == 0:
                    first_hits += 1
                break
    if prof.enabled:
        prof.observe_probes(n, first_hits)
    result.completed_ops = n
    result.rounds = n  # one warp processes queries sequentially
    return values, found, result
