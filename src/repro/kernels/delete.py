"""Warp-centric DELETE kernel (Section V-B).

Deletion, like FIND, needs no bucket locks: one warp inspects the two
candidate buckets of the key; the lane that sees the key clears it.  At
most one lane can match (keys are unique across the structure), so no
write conflict is possible — the property the paper uses to keep DELETE
lock-free.
"""

from __future__ import annotations

import numpy as np

from repro.core.subtable import EMPTY
from repro.gpusim.memory import MemoryTracker
from repro.gpusim.warp import WarpContext
from repro.kernels.find import _ballot_match
from repro.kernels.insert import KernelRunResult


def run_delete_kernel(table, keys) -> tuple[np.ndarray, KernelRunResult]:
    """Delete a batch of keys lane-faithfully.

    Returns ``(removed, result)``.  Mutates the table's storage and its
    per-subtable live counters; semantically identical to
    :meth:`repro.core.table.DyCuckooTable.delete` minus the automatic
    resize (resizing is a separate kernel in the paper).
    """
    from repro.core.table import encode_keys

    codes = encode_keys(np.asarray(keys, dtype=np.uint64))
    n = len(codes)
    removed = np.zeros(n, dtype=bool)
    result = KernelRunResult()
    tracker = MemoryTracker()
    ctx = WarpContext(warp_id=0)
    if n == 0:
        return removed, result

    first, second = table.pair_hash.tables_for(codes)
    for i in range(n):
        code = int(codes[i])
        for target in (int(first[i]), int(second[i])):
            st = table.subtables[target]
            bucket = int(table.table_hashes[target].bucket(
                np.asarray([code], dtype=np.uint64), st.n_buckets)[0])
            tracker.bucket_access()
            result.memory_transactions += 1
            slot = _ballot_match(ctx, st.keys[bucket], code)
            if slot >= 0:
                st.keys[bucket, slot] = EMPTY
                st.size -= 1
                tracker.bucket_access()
                result.memory_transactions += 1
                removed[i] = True
                break
    result.completed_ops = int(removed.sum())
    result.rounds = n
    return removed, result
