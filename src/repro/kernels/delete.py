"""Warp-centric DELETE kernel (Section V-B).

Deletion, like FIND, needs no bucket locks: one warp inspects the two
candidate buckets of the key; the lane that sees the key clears it.  At
most one lane can match (keys are unique across the structure), so no
write conflict is possible — the property the paper uses to keep DELETE
lock-free.  ``engine="cohort"`` runs the same program through the
structure-of-arrays engine with identical results, storage mutations,
and transaction counts.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.subtable import EMPTY
from repro.gpusim.memory import MemoryTracker
from repro.gpusim.warp import WarpContext
from repro.kernels.engine import (kernel_span, record_kernel_counters,
                                  resolve_engine)
from repro.kernels.find import _ballot_match
from repro.kernels.insert import KernelRunResult
from repro.sanitizer import NULL_SANITIZER
from repro.telemetry.profiler import NULL_PROFILER

_SITE_CLEAR = "repro/kernels/delete.py:_warp_delete"


def run_delete_kernel(table, keys, engine: str = "warp", *,
                      codes=None, first=None, second=None,
                      raw_of=None) -> tuple[np.ndarray, KernelRunResult]:
    """Delete a batch of keys lane-faithfully.

    Returns ``(removed, result)``.  Mutates the table's storage and its
    per-subtable live counters; semantically identical to
    :meth:`repro.core.table.DyCuckooTable.delete` minus the automatic
    resize (resizing is a separate kernel in the paper).

    ``codes``/``first``/``second``/``raw_of`` let a caller that has
    already encoded and pair-hashed the batch skip the re-derivation.
    """
    from repro.core.table import encode_keys

    resolve_engine(engine)
    if codes is None:
        codes = encode_keys(np.asarray(keys, dtype=np.uint64))
    n = len(codes)
    san = getattr(table, "sanitizer", NULL_SANITIZER)
    prof = getattr(table, "profiler", NULL_PROFILER)
    if san.enabled:
        # DELETE's slot clear is intentionally lock-free: at most one
        # lane can match a unique key, so no write conflict is possible
        # (Section V-B).  locking=False records that contract; the
        # clears are still logged as writes for the access log.
        san.begin_kernel("delete", locking=False, table=table)
    if prof.enabled:
        prof.begin_kernel("delete", n)
    try:
        with kernel_span(table, "delete", n, engine):
            if engine == "cohort":
                from repro.gpusim.cohort import cohort_delete

                removed, result = cohort_delete(table, codes, first,
                                                second, raw_of)
            else:
                removed, result = _warp_delete(table, codes, first,
                                               second)
    except BaseException:
        if prof.enabled:
            prof.end_kernel()
        raise
    finally:
        if san.enabled:
            san.end_kernel()
    if prof.enabled:
        prof.end_kernel(dataclasses.asdict(result))
    record_kernel_counters(table, result)
    return removed, result


def _warp_delete(table, codes: np.ndarray, first=None, second=None
                 ) -> tuple[np.ndarray, KernelRunResult]:
    n = len(codes)
    removed = np.zeros(n, dtype=bool)
    result = KernelRunResult()
    san = getattr(table, "sanitizer", NULL_SANITIZER)
    tracker = MemoryTracker(sanitizer=san if san.enabled else None)
    ctx = WarpContext(warp_id=0)
    if n == 0:
        return removed, result

    if first is None or second is None:
        first, second = table.pair_hash.tables_for(codes)
    prof = getattr(table, "profiler", NULL_PROFILER)
    first_hits = 0
    for i in range(n):
        code = int(codes[i])
        for probe, target in enumerate((int(first[i]), int(second[i]))):
            st = table.subtables[target]
            bucket = int(table.bucket_for(
                target, np.asarray([code], dtype=np.uint64))[0])
            tracker.bucket_access()
            result.memory_transactions += 1
            slot = _ballot_match(ctx, st.keys[bucket], code)
            if slot >= 0:
                st.keys[bucket, slot] = EMPTY
                st.size -= 1
                tracker.bucket_access()
                result.memory_transactions += 1
                if san.enabled:
                    san.record_access(0, "write", "bucket",
                                      (target << 40) | bucket,
                                      site=_SITE_CLEAR)
                removed[i] = True
                if probe == 0:
                    first_hits += 1
                break
    if prof.enabled:
        prof.observe_probes(n, first_hits)
    result.completed_ops = int(removed.sum())
    result.rounds = n
    return removed, result
