"""Algorithm 1: voter-coordinated parallel insertion.

Each *lane* owns one insert operation.  Every device round, the warp:

1. ballots over active lanes and elects a leader ``l'``,
2. broadcasts the leader's ``(k', v')`` and target subtable ``i'``,
3. the leader issues ``atomicCAS`` on the bucket lock; on failure the
   warp *revotes a different leader* next round instead of spinning
   (this is the voter scheme's whole point),
4. on success the warp inspects the bucket in one coalesced read;
   an existing key or empty slot takes the write, otherwise the leader
   swaps with a victim whose evicted pair continues on the same lane,
   retargeted at the victim's alternate subtable,
5. the lock is released and (if the lane's op completed) the lane goes
   inactive.

:func:`run_spin_insert_kernel` is the ablation: the classic warp-centric
approach where a warp keeps hammering the same bucket lock until it wins
— the behaviour whose cost Figure 5 motivates against.

Both kernels run against the live storage of a
:class:`repro.core.table.DyCuckooTable` so results are directly
comparable (and testable) against the vectorized path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.subtable import EMPTY
from repro.errors import CapacityError
from repro.gpusim.kernel import LockArbiter, RoundScheduler
from repro.gpusim.memory import MemoryTracker
from repro.gpusim.warp import WarpContext
from repro.sanitizer import NULL_SANITIZER
from repro.telemetry.profiler import NULL_PROFILER

_SITE_PHASE1 = "repro/kernels/insert.py:_InsertWarp.step"
_SITE_PHASE2 = "repro/kernels/insert.py:_InsertWarp._complete_locked"
_SITE_ALT = "repro/kernels/insert.py:_InsertWarp._update_in_alternate"
_SITE_UNWIND = "repro/kernels/insert.py:_InsertWarp.unwind_locks"
_SITE_ELECT = "repro/kernels/insert.py:_InsertWarp._elect"
_SITE_EXIT = "repro/kernels/insert.py:_run_insert_warps"


@dataclass
class KernelRunResult:
    """Aggregate statistics from one simulated kernel execution."""

    rounds: int = 0
    lock_acquisitions: int = 0
    lock_conflicts: int = 0
    evictions: int = 0
    memory_transactions: int = 0
    completed_ops: int = 0
    #: Per-warp counts of leader elections (vote steps).
    votes: int = 0

    def merge(self, other: "KernelRunResult") -> "KernelRunResult":
        """Field-wise sum of two runs (mixed-batch aggregation)."""
        return KernelRunResult(
            rounds=self.rounds + other.rounds,
            lock_acquisitions=self.lock_acquisitions + other.lock_acquisitions,
            lock_conflicts=self.lock_conflicts + other.lock_conflicts,
            evictions=self.evictions + other.evictions,
            memory_transactions=(self.memory_transactions
                                 + other.memory_transactions),
            completed_ops=self.completed_ops + other.completed_ops,
            votes=self.votes + other.votes,
        )


class _InsertWarp:
    """One warp's state while executing Algorithm 1."""

    def __init__(self, warp_id: int, table, keys: np.ndarray,
                 values: np.ndarray, targets: np.ndarray,
                 arbiter: LockArbiter, tracker: MemoryTracker,
                 result: KernelRunResult, voter: bool,
                 max_rounds_per_op: int = 4096) -> None:
        self.table = table
        self.ctx = WarpContext(warp_id)
        width = self.ctx.width
        n = len(keys)
        if n > width:
            raise ValueError(f"a warp owns at most {width} ops, got {n}")
        self.keys = np.zeros(width, dtype=np.uint64)
        self.values = np.zeros(width, dtype=np.uint64)
        self.targets = np.zeros(width, dtype=np.int64)
        self.keys[:n] = keys
        self.values[:n] = values
        self.targets[:n] = targets
        self.ctx.active[:n] = True
        self.arbiter = arbiter
        self.tracker = tracker
        self.result = result
        self.voter = voter
        self.san = arbiter.sanitizer
        self.prof = arbiter.profiler
        # Per-lane eviction-chain depth, profiler-only bookkeeping: the
        # lane's current op has displaced this many victims so far.
        self.depths = (np.zeros(width, dtype=np.int64)
                       if self.prof.enabled else None)
        self._next_start_lane = 0
        self._stalled_rounds = 0
        self._max_stall = max_rounds_per_op
        # Two-phase critical section: a successful lock acquisition reads
        # the bucket in one round and performs the write (and unlock) the
        # next, so the lock is observably held against same-round and
        # next-round competitors — the situation the voter scheme exists
        # to exploit.
        self._locked: tuple[int, int, int, int] | None = None

    def finished(self) -> bool:
        return self._locked is None and not self.ctx.any_active()

    def _elect(self) -> int:
        """Leader election; the voter variant rotates past failed lanes."""
        self.result.votes += 1
        mask = self.ctx.ballot(self.ctx.active)
        if self.san.enabled:
            # The election ballot *is* the active-mask vote; synccheck
            # flags any vote bit outside the active mask (an exited
            # lane participating in __ballot_sync).
            self.san.on_vote(self.ctx.warp_id, mask, mask,
                             site=_SITE_ELECT)
        if mask == 0:
            return -1
        if not self.voter:
            return self.ctx.ffs(mask)
        width = self.ctx.width
        for offset in range(width):
            lane = (self._next_start_lane + offset) % width
            if mask & (1 << lane):
                return lane
        return -1  # pragma: no cover - mask != 0 guarantees a hit

    def step(self, _round_index: int) -> None:
        """One iteration of Algorithm 1's while loop (two-phase)."""
        if self._locked is not None:
            self._complete_locked()
            return
        leader = self._elect()
        if leader < 0:
            return
        # broadcast(l'): every lane receives the leader's op.
        key = int(self.ctx.shfl(self.keys, leader))
        _value = int(self.ctx.shfl(self.values, leader))
        target = int(self.ctx.shfl(self.targets, leader))

        st = self.table.subtables[target]
        bucket = int(self.table.bucket_for(
            target, np.asarray([key], dtype=np.uint64))[0])
        lock_id = self._lock_id(target, bucket)
        if not self.arbiter.try_acquire(lock_id, warp=self.ctx.warp_id):
            # Voter scheme: next election starts after the failed lane,
            # so the warp tries a different bucket instead of spinning.
            if self.voter:
                self._next_start_lane = (leader + 1) % self.ctx.width
            self._stalled_rounds += 1
            if self._stalled_rounds > self._max_stall:
                raise CapacityError(
                    "insert kernel stalled: no lock progress "
                    f"after {self._max_stall} rounds"
                )
            return
        self._stalled_rounds = 0
        # Phase one done: lock held, bucket read issued; the update lands
        # next round while competitors observe the held lock.
        self.result.memory_transactions += 1
        self.tracker.bucket_access()
        if self.san.enabled:
            self.san.record_access(self.ctx.warp_id, "read", "bucket",
                                   lock_id, site=_SITE_PHASE1)
        self._locked = (leader, target, bucket, lock_id)

    def unwind_locks(self) -> None:
        """Release the held lock while an exception propagates.

        A real kernel that traps mid-critical-section must still clear
        its bucket lock (``atomicExch(&lock, 0)`` in the cleanup path)
        or the bucket is wedged for every later kernel.  Called by
        :func:`_run_insert_warps` for every warp when the scheduler
        aborts; a warp between phases simply has nothing to release.
        """
        locked = self._locked
        if locked is None:
            return
        _leader, _target, _bucket, lock_id = locked
        self._locked = None
        self.arbiter.release(lock_id, warp=self.ctx.warp_id, unwind=True)

    def _ballot_first_slot(self, lane_matches: np.ndarray,
                           capacity: int) -> int:
        """First slot whose lane predicate is set, or -1.

        Each lane inspects one slot; with capacity > warp width the
        warp would loop over stripes — ballot each stripe in turn.
        """
        pred = self.ctx.scratch_pred
        for stripe_start in range(0, capacity, self.ctx.width):
            stripe = lane_matches[stripe_start:stripe_start + self.ctx.width]
            pred[:] = False
            pred[:len(stripe)] = stripe
            hit = self.ctx.ffs(self.ctx.ballot(pred))
            if hit >= 0:
                return stripe_start + hit
        return -1

    def _complete_locked(self) -> None:
        """Phase two: inspect the bucket, write or evict, unlock."""
        locked = self._locked
        if locked is None:  # pragma: no cover - callers check first
            return
        leader, target, bucket, lock_id = locked
        self._locked = None
        key = int(self.keys[leader])
        value = int(self.values[leader])
        st = self.table.subtables[target]
        bucket_keys = st.keys[bucket]
        # Upsert order matters: an existing-key slot must win over an
        # EMPTY slot, otherwise a delete hole at a lower slot index than
        # the stored key makes the warp write a *second* copy of the key
        # into the hole.  Ballot the existing-key predicate first and
        # fall back to the free-slot predicate only on a miss.
        slot = self._ballot_first_slot(bucket_keys == np.uint64(key),
                                       st.bucket_capacity)
        if slot < 0:
            # Second half of the upsert contract: the key may live in
            # the *other* subtable of its pair (router flips between
            # batches as loads shift; evictions relocate keys).  Probe
            # that bucket before claiming a free slot here, or the
            # table ends up with one copy per pair member.
            if self._update_in_alternate(key, value, target):
                self.arbiter.release(lock_id, warp=self.ctx.warp_id)
                self.ctx.active[leader] = False
                self.result.completed_ops += 1
                if self.depths is not None:
                    self.prof.observe_chain(self.depths[leader])
                self._next_start_lane = (leader + 1) % self.ctx.width
                return
            slot = self._ballot_first_slot(bucket_keys == EMPTY,
                                           st.bucket_capacity)
        if 0 <= slot < st.bucket_capacity:
            was_empty = bucket_keys[slot] == EMPTY
            st.keys[bucket, slot] = np.uint64(key)
            st.values[bucket, slot] = np.uint64(value)
            if was_empty:
                st.size += 1
            self.tracker.bucket_access()
            self.result.memory_transactions += 1
            if self.san.enabled:
                self.san.record_access(self.ctx.warp_id, "write",
                                       "bucket", lock_id,
                                       site=_SITE_PHASE2)
            self.arbiter.release(lock_id, warp=self.ctx.warp_id)
            self.ctx.active[leader] = False
            self.result.completed_ops += 1
            if self.depths is not None:
                self.prof.observe_chain(self.depths[leader])
            self._next_start_lane = (leader + 1) % self.ctx.width
            return

        # Bucket full: swap with a victim; the evicted pair continues on
        # the leader's lane, targeted at the victim's alternate subtable.
        victim_slot = self._choose_victim_slot(target, bucket, bucket_keys)
        victim_key = int(st.keys[bucket, victim_slot])
        victim_value = int(st.values[bucket, victim_slot])
        st.keys[bucket, victim_slot] = np.uint64(key)
        st.values[bucket, victim_slot] = np.uint64(value)
        self.tracker.bucket_access()
        self.result.memory_transactions += 1
        self.result.evictions += 1
        if self.depths is not None:
            # The victim continues on this lane one eviction deeper.
            self.depths[leader] += 1
        if self.san.enabled:
            self.san.record_access(self.ctx.warp_id, "write", "bucket",
                                   lock_id, site=_SITE_PHASE2)
        self.arbiter.release(lock_id, warp=self.ctx.warp_id)

        alternate = int(self.table.pair_hash.alternate_table(
            np.asarray([victim_key], dtype=np.uint64),
            np.asarray([target], dtype=np.int64))[0])
        self.keys[leader] = victim_key
        self.values[leader] = victim_value
        self.targets[leader] = alternate

    def _update_in_alternate(self, key: int, value: int,
                             target: int) -> bool:
        """Update ``key`` in the pair's other subtable if stored there.

        One extra coalesced read per leader op that misses its target
        bucket — the same both-bucket probe the vectorized path's
        update-existing pass performs.  The value write is lock-free,
        matching the vectorized path and the delete kernel.
        """
        alternate = int(self.table.pair_hash.alternate_table(
            np.asarray([key], dtype=np.uint64),
            np.asarray([target], dtype=np.int64))[0])
        st = self.table.subtables[alternate]
        bucket = int(self.table.bucket_for(
            alternate, np.asarray([key], dtype=np.uint64))[0])
        self.tracker.bucket_access()
        self.result.memory_transactions += 1
        alt_lock = self._lock_id(alternate, bucket)
        if self.san.enabled:
            # Protocol-sanctioned lock-free read: the probe holds only
            # its *own* bucket's lock ("probe" kind, exempt).
            self.san.record_access(self.ctx.warp_id, "probe", "bucket",
                                   alt_lock, site=_SITE_ALT)
        slot = self._ballot_first_slot(st.keys[bucket] == np.uint64(key),
                                       st.bucket_capacity)
        if slot < 0:
            return False
        st.values[bucket, slot] = np.uint64(value)
        self.tracker.bucket_access()
        self.result.memory_transactions += 1
        if self.san.enabled:
            # Single-word value update, intentionally lock-free (matches
            # the vectorized path): "atomic" kind, ordered by definition.
            self.san.record_access(self.ctx.warp_id, "atomic", "value",
                                   alt_lock, site=_SITE_ALT)
        return True

    def _choose_victim_slot(self, target: int, bucket: int,
                            bucket_keys: np.ndarray) -> int:
        """Rotate the victim slot deterministically (matches the core)."""
        del bucket_keys
        cap = self.table.subtables[target].bucket_capacity
        slot = (self.table._victim_counter + bucket) % cap
        self.table._victim_counter += 1
        return slot

    @staticmethod
    def _lock_id(table_idx: int, bucket: int) -> int:
        """Globally unique lock id for (subtable, bucket)."""
        return (table_idx << 40) | bucket


def _run_insert(table, keys, values, voter: bool, engine: str = "warp",
                codes=None, first=None, second=None) -> KernelRunResult:
    from repro.core.table import encode_keys
    from repro.kernels.engine import (kernel_span, record_kernel_counters,
                                      resolve_engine)

    resolve_engine(engine)
    values = np.asarray(values, dtype=np.uint64)
    if codes is None:
        codes = encode_keys(np.asarray(keys, dtype=np.uint64))
    if first is None or second is None:
        first, second = table.pair_hash.tables_for(codes)
    # Routing happens once, before engine dispatch, so both engines see
    # byte-identical targets (the router is a pure function of the key
    # and the table's current sizes/loads).
    targets = table._router.choose(codes, first, second,
                                   table.subtable_sizes(),
                                   table.subtable_loads())
    faults = getattr(table, "faults", None)
    faulty = faults is not None and faults.enabled
    prof = getattr(table, "profiler", NULL_PROFILER)
    if prof.enabled:
        prof.begin_kernel("insert", len(codes))
    try:
        with kernel_span(table, "insert", len(codes), engine) as span:
            if engine == "cohort":
                from repro.gpusim.cohort import cohort_insert

                # Fault plans run natively in the SoA path: rounds
                # whose consult window cannot fire stay vectorized,
                # and the rest replay the reference arbitration walk
                # (see cohort._phase_one_fault_walk).
                result = cohort_insert(table, codes, values, targets,
                                       voter=voter,
                                       faults=faults if faulty else None)
                if span is not None and result.hazard_rounds:
                    span.args["hazard_rounds"] = result.hazard_rounds
                    span.args["hazard_lanes"] = result.hazard_lanes
            else:
                result = _run_insert_warps(table, codes, values, targets,
                                           voter, faults)
    except BaseException:
        if prof.enabled:
            prof.end_kernel()
        raise
    if prof.enabled:
        prof.end_kernel(dataclasses.asdict(result))
    record_kernel_counters(table, result)
    return result


def _run_insert_warps(table, codes, values, targets, voter: bool,
                      faults,
                      max_rounds_per_op: int = 4096) -> KernelRunResult:
    """Reference engine: one `_InsertWarp` object per warp, stepped."""
    san = getattr(table, "sanitizer", NULL_SANITIZER)
    prof = getattr(table, "profiler", NULL_PROFILER)
    arbiter = LockArbiter(faults=faults, sanitizer=san, profiler=prof)
    tracker = MemoryTracker(sanitizer=san if san.enabled else None)
    result = KernelRunResult()
    warps = []
    width = 32
    for start in range(0, len(codes), width):
        stop = min(start + width, len(codes))
        warps.append(_InsertWarp(
            warp_id=len(warps), table=table, keys=codes[start:stop],
            values=values[start:stop], targets=targets[start:stop],
            arbiter=arbiter, tracker=tracker, result=result, voter=voter,
            max_rounds_per_op=max_rounds_per_op))
    scheduler = RoundScheduler(warps, sanitizer=san)
    if san.enabled:
        san.begin_kernel("insert", locking=True, table=table)
    before_round = None
    if prof.enabled:
        def before_round(_round_index):
            # Occupancy snapshot at the round boundary: resident warps,
            # live lanes, and warps holding a lock across the phases.
            # Both engines see identical values here because storage and
            # counters conform at every round boundary.
            active_warps = active_lanes = locked_warps = 0
            for warp in warps:
                if warp.finished():
                    continue
                active_warps += 1
                active_lanes += int(warp.ctx.active.sum())
                if warp._locked is not None:
                    locked_warps += 1
            prof.record_round(active_warps, active_lanes, locked_warps,
                              evictions=result.evictions,
                              completed=result.completed_ops)
    try:
        if arbiter.faults.enabled:
            # The insert kernel holds locks across rounds (two-phase), so
            # it never calls end_round(); injected stalls still must age.
            result.rounds = scheduler.run(
                before_round=before_round,
                after_round=lambda _i: arbiter.tick())
        else:
            result.rounds = scheduler.run(before_round=before_round)
        if san.enabled:
            # Normal completion: the round loop drains every lane, so
            # a live lane here is a divergent exit (synccheck).
            san.on_kernel_exit(
                sum(int(warp.ctx.active.sum()) for warp in warps),
                site=_SITE_EXIT)
    except BaseException:
        # Release-on-exception: a CapacityError (stall exhaustion) or a
        # non-convergence abort leaves other warps mid-critical-section;
        # their bucket locks must be cleared on the way out or the lock
        # table is wedged for every later kernel on this arbiter.
        for warp in warps:
            warp.unwind_locks()
        raise
    finally:
        if san.enabled:
            san.end_kernel()
    result.lock_acquisitions = arbiter.acquisitions
    result.lock_conflicts = arbiter.conflicts
    return result


def run_voter_insert_kernel(table, keys, values, engine: str = "warp", *,
                            codes=None, first=None,
                            second=None) -> KernelRunResult:
    """Insert a batch via Algorithm 1 (voter coordination).

    Mutates ``table``'s storage directly; intended for fresh keys on a
    table with enough headroom (no resizing happens inside a kernel,
    matching the paper where resizing is its own kernel).
    ``engine="cohort"`` executes the same program on the
    structure-of-arrays engine with bit-identical storage and counters.
    """
    return _run_insert(table, keys, values, voter=True, engine=engine,
                       codes=codes, first=first, second=second)


def run_spin_insert_kernel(table, keys, values, engine: str = "warp", *,
                           codes=None, first=None,
                           second=None) -> KernelRunResult:
    """Ablation: warp-centric insert that spins on the same lock.

    Identical to the voter kernel except a lock failure retries the same
    leader (and therefore the same bucket) next round.
    """
    return _run_insert(table, keys, values, voter=False, engine=engine,
                       codes=codes, first=first, second=second)
