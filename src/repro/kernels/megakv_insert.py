"""Lane-level MegaKV insert kernel — the lock-free contrast to Algorithm 1.

MegaKV does not lock buckets: a warp inspects its key's bucket and
claims a slot with a single 64-bit ``atomicExch``-style write; a full
bucket evicts an occupant to the *other* hash function's bucket.  Races
between warps writing the same slot in the same round resolve by
last-writer-wins (exchange semantics) with the loser retrying — no
spinning, but also no mutual exclusion, which is why MegaKV is limited
to KV pairs that fit one atomic transaction.

Used by tests to validate the vectorized MegaKV path and by studies of
the lock-free/lock-based design space the paper discusses in
Section V-B.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.megakv import MegaKVTable
from repro.core.subtable import EMPTY
from repro.core.table import encode_keys
from repro.errors import CapacityError
from repro.gpusim.kernel import RoundScheduler
from repro.gpusim.memory import MemoryTracker
from repro.gpusim.warp import WarpContext
from repro.kernels.insert import KernelRunResult


class _MegaKVInsertWarp:
    """One warp's state: each lane owns one insert."""

    def __init__(self, warp_id: int, table: MegaKVTable, codes: np.ndarray,
                 values: np.ndarray, tracker: MemoryTracker,
                 result: KernelRunResult,
                 max_stall_rounds: int = 4096) -> None:
        self.table = table
        self.ctx = WarpContext(warp_id)
        width = self.ctx.width
        n = len(codes)
        if n > width:
            raise ValueError(f"a warp owns at most {width} ops, got {n}")
        self.codes = np.zeros(width, dtype=np.uint64)
        self.values = np.zeros(width, dtype=np.uint64)
        self.funcs = np.zeros(width, dtype=np.int64)
        self.codes[:n] = codes
        self.values[:n] = values
        self.funcs[:n] = (codes % np.uint64(2)).astype(np.int64)
        self.ctx.active[:n] = True
        self.tracker = tracker
        self.result = result
        self._rounds = 0
        self._max_stall = max_stall_rounds

    def finished(self) -> bool:
        return not self.ctx.any_active()

    def step(self, _round_index: int) -> None:
        leader = self.ctx.elect_leader()
        if leader < 0:
            return
        self._rounds += 1
        if self._rounds > self._max_stall:
            raise CapacityError("MegaKV kernel stalled (table too full)")
        code = int(self.ctx.shfl(self.codes, leader))
        value = int(self.ctx.shfl(self.values, leader))
        func = int(self.ctx.shfl(self.funcs, leader))

        st = self.table.subtables[func]
        bucket = int(self.table.hashes[func].bucket(
            np.asarray([code], dtype=np.uint64), st.n_buckets)[0])
        self.tracker.bucket_access()
        self.result.memory_transactions += 1

        bucket_keys = st.keys[bucket]
        # Update-in-place if the key already sits here.
        match = np.flatnonzero(bucket_keys == np.uint64(code))
        if len(match):
            st.values[bucket, int(match[0])] = np.uint64(value)
            self.result.memory_transactions += 1
            self.ctx.active[leader] = False
            self.result.completed_ops += 1
            return

        free = np.flatnonzero(bucket_keys == EMPTY)
        if len(free):
            # One atomicExch claims the slot; no lock — MegaKV's
            # whole design point.  The baseline kernel carries no
            # sanitizer plumbing (MegaKVTable has no access stream),
            # so the structural-write contract is intentionally
            # waived here.
            slot = int(free[0])
            st.keys[bucket, slot] = np.uint64(code)  # sanitize: allow(unguarded-structural-write)
            st.values[bucket, slot] = np.uint64(value)
            st.size += 1
            self.tracker.bucket_access()
            self.result.memory_transactions += 1
            self.result.votes += 1
            self.ctx.active[leader] = False
            self.result.completed_ops += 1
            return

        # Bucket full: exchange with a rotating victim, which continues
        # on this lane targeted at the other hash function.
        slot = (bucket + self._rounds) % st.bucket_capacity
        victim_code = int(st.keys[bucket, slot])
        victim_value = int(st.values[bucket, slot])
        st.keys[bucket, slot] = np.uint64(code)  # sanitize: allow(unguarded-structural-write)
        st.values[bucket, slot] = np.uint64(value)
        self.tracker.bucket_access()
        self.result.memory_transactions += 1
        self.result.evictions += 1
        self.codes[leader] = victim_code
        self.values[leader] = victim_value
        self.funcs[leader] = 1 - func


def run_megakv_insert_kernel(table: MegaKVTable, keys, values
                             ) -> KernelRunResult:
    """Insert a batch through the lane-level MegaKV kernel.

    Fresh keys only (no resizing inside a kernel); mutates the table's
    storage directly, like the DyCuckoo kernels.
    """
    codes = encode_keys(np.asarray(keys, dtype=np.uint64))
    values = np.asarray(values, dtype=np.uint64)
    tracker = MemoryTracker()
    result = KernelRunResult()
    warps = []
    width = 32
    for start in range(0, len(codes), width):
        stop = min(start + width, len(codes))
        warps.append(_MegaKVInsertWarp(
            warp_id=len(warps), table=table, codes=codes[start:stop],
            values=values[start:stop], tracker=tracker, result=result))
    result.rounds = RoundScheduler(warps).run()
    return result
