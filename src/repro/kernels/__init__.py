"""Warp-centric kernels over the SIMT simulator.

These are near-literal transcriptions of the paper's device code:

* :mod:`repro.kernels.insert` — Algorithm 1, the voter-coordinated
  insert (and a naive spin-lock variant used as the ablation baseline),
* :mod:`repro.kernels.find` — the two-lookup warp-centric FIND,
* :mod:`repro.kernels.delete` — the lock-free warp-centric DELETE,
* :mod:`repro.kernels.resize_kernels` — the conflict-free upsize and the
  merge-with-residuals downsize of Section IV-D.

They execute lane-by-lane against the *same storage* as the vectorized
fast path in :mod:`repro.core.table`, which lets the test suite prove
the two execution models agree.  The vectorized path is what benchmarks
use at scale; these kernels are the ground truth for warp semantics and
lock-contention behaviour.

Each ``run_*_kernel`` accepts ``engine="warp" | "cohort"``
(:mod:`repro.kernels.engine`): ``"warp"`` steps one Python object per
warp (the reference), ``"cohort"`` executes the same program through
the structure-of-arrays engine of :mod:`repro.gpusim.cohort`, which is
bit-for-bit conformant on results *and* cost counters while running
1-2 orders of magnitude faster.
"""

from repro.kernels.delete import run_delete_kernel
from repro.kernels.engine import VALID_ENGINES, resolve_engine
from repro.kernels.find import run_find_kernel
from repro.kernels.insert import (KernelRunResult, run_spin_insert_kernel,
                                  run_voter_insert_kernel)
from repro.kernels.megakv_insert import run_megakv_insert_kernel
from repro.kernels.resize_kernels import (run_downsize_kernel,
                                          run_upsize_kernel)

__all__ = [
    "run_voter_insert_kernel",
    "run_spin_insert_kernel",
    "run_find_kernel",
    "run_delete_kernel",
    "run_upsize_kernel",
    "run_downsize_kernel",
    "KernelRunResult",
    "run_megakv_insert_kernel",
    "VALID_ENGINES",
    "resolve_engine",
]
