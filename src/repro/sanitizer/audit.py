"""Self-contained audit drives for ``python -m repro sanitize``.

:func:`run_clean_audit` executes a representative correct workload —
insert/find/delete kernels on *both* execution engines, a resize storm
through the core table path, and a fault-injection phase — under an
attached :class:`~repro.sanitizer.Sanitizer`, and returns the combined
report.  A healthy tree produces **zero** violations: every bucket
write is lock-ordered, every lock pairs, every resize locks exactly one
subtable, and every injected fault is classified as intentional.

:func:`run_fixture_suite` runs the seeded intentional-violation
fixtures (:mod:`repro.sanitizer.fixtures`) and checks each produces
exactly its expected violation kinds — the detector's own test: a
sanitizer that cannot see a planted bug proves nothing by staying
silent on real code.
"""

from __future__ import annotations

import numpy as np

from repro.sanitizer import Sanitizer
from repro.sanitizer.fixtures import FIXTURES


def _keys(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    drawn = np.unique(rng.integers(1, 1 << 62, int(n * 1.3) + 16,
                                   dtype=np.int64).astype(np.uint64))
    while len(drawn) < n:
        more = rng.integers(1, 1 << 62, n, dtype=np.int64)
        drawn = np.unique(np.concatenate([drawn,
                                          more.astype(np.uint64)]))
    return drawn[:n]


def _audit_kernels(engine: str, ops: int, seed: int) -> Sanitizer:
    """Insert/find/delete kernel workload on one engine, audited."""
    from repro.core.config import DyCuckooConfig
    from repro.core.table import DyCuckooTable
    from repro.kernels import (run_delete_kernel, run_find_kernel,
                               run_spin_insert_kernel,
                               run_voter_insert_kernel)

    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=64, bucket_capacity=8, auto_resize=False,
        seed=seed))
    san = table.set_sanitizer(Sanitizer())
    keys = _keys(ops, seed + 1)
    values = keys * np.uint64(3)
    run_voter_insert_kernel(table, keys, values, engine=engine)
    # Upserts + alternate-bucket updates (the lock-free value path).
    run_voter_insert_kernel(table, keys[::2], values[::2] + np.uint64(1),
                            engine=engine)
    run_find_kernel(table, keys, engine=engine)
    run_delete_kernel(table, keys[::3], engine=engine)
    # The spin ablation holds locks across failed rounds — the hottest
    # pairing path the lockcheck pass sees.
    fresh = _keys(ops // 4, seed + 2)
    run_spin_insert_kernel(table, fresh, fresh, engine=engine)
    return san


def _audit_resize(ops: int, seed: int) -> Sanitizer:
    """Resize storm through the core table path, audited."""
    from repro.core.config import DyCuckooConfig
    from repro.core.table import DyCuckooTable

    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=16, bucket_capacity=8, min_buckets=8,
        seed=seed))
    san = table.set_sanitizer(Sanitizer())
    keys = _keys(ops, seed + 3)
    # Grow through repeated upsizes, then shrink through downsizes
    # (residual spills included) — every resize brackets its one
    # subtable lock.
    table.insert(keys, keys)
    table.delete(keys[: (len(keys) * 9) // 10])
    table.insert(keys[:ops // 4], keys[:ops // 4])
    return san


def _audit_faults(ops: int, seed: int) -> Sanitizer:
    """Fault-injection phase: injected events classify, never violate."""
    from repro.core.config import DyCuckooConfig
    from repro.core.table import DyCuckooTable
    from repro.errors import ResizeError
    from repro.faults import FaultPlan
    from repro.kernels import run_voter_insert_kernel

    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=64, bucket_capacity=8, auto_resize=False,
        seed=seed))
    san = table.set_sanitizer(Sanitizer())
    table.set_fault_plan(FaultPlan(seed=seed, rates={
        "lock.acquire": 0.05, "lock.stall": 0.02, "atomics.cas": 0.05,
    }))
    keys = _keys(ops, seed + 4)
    run_voter_insert_kernel(table, keys, keys)

    # Resize aborts at every stage: each must roll back *and* release
    # its subtable lock on the way out.
    for stage in ("trigger", "plan", "rehash", "spill"):
        rtable = DyCuckooTable(DyCuckooConfig(
            initial_buckets=16, bucket_capacity=8, min_buckets=8,
            seed=seed))
        rtable.set_sanitizer(san)
        rkeys = _keys(ops // 2, seed + 5)
        rtable.insert(rkeys, rkeys)
        rtable.set_fault_plan(FaultPlan(
            seed=seed, rates={f"resize.abort.{stage}": 1.0}))
        try:
            rtable._resizer.downsize()
        except ResizeError:
            pass
        rtable.set_fault_plan(None)
    return san


def run_clean_audit(ops: int = 512, seed: int = 0,
                    engines: tuple = ("warp", "cohort")) -> dict:
    """Audit a correct workload end to end; returns a combined report.

    ``report["ok"]`` is True iff no pass flagged anything across any
    phase.  Phases: per-engine kernel workloads, a resize storm, and a
    fault-injection phase whose injected events must classify as
    intentional (``stats["injected_events"] > 0``, zero violations).
    """
    phases: dict[str, dict] = {}
    for engine in engines:
        phases[f"kernels[{engine}]"] = _audit_kernels(
            engine, ops, seed).report()
    phases["resize"] = _audit_resize(ops, seed).report()
    faults = _audit_faults(ops, seed)
    phases["faults"] = faults.report()
    ok = all(p["ok"] and p["subtable_locks_held"] == 0
             for p in phases.values())
    return {
        "ok": ok,
        "injected_events": faults.stats["injected_events"],
        "phases": phases,
    }


def run_fixture_suite() -> dict:
    """Run every seeded-violation fixture; returns per-fixture results.

    ``report["ok"]`` is True iff every fixture produced exactly its
    expected violation-kind set and every dynamic violation carries
    round/warp attribution.
    """
    results: dict[str, dict] = {}
    ok = True
    for name, (build, expected_kinds) in FIXTURES.items():
        san = build()
        got_kinds = {v.kind for v in san.violations}
        attributed = all(
            v.round_index >= 0 and v.warp >= 0
            for v in san.violations
            if v.space in ("bucket", "lock"))
        passed = got_kinds == expected_kinds and attributed
        ok = ok and passed
        results[name] = {
            "ok": passed,
            "expected": sorted(expected_kinds),
            "detected": sorted(got_kinds),
            "violations": [v.to_dict() for v in san.violations],
        }
    return {"ok": ok, "fixtures": results}
