"""Self-contained audit drives for ``python -m repro sanitize``.

:func:`run_clean_audit` executes a representative correct workload —
insert/find/delete kernels on *both* execution engines, a resize storm
through the core table path, and a fault-injection phase — under an
attached :class:`~repro.sanitizer.Sanitizer`, and returns the combined
report.  A healthy tree produces **zero** violations: every bucket
write is lock-ordered, every lock pairs, every resize locks exactly one
subtable, and every injected fault is classified as intentional.

:func:`run_fixture_suite` runs the seeded intentional-violation
fixtures (:mod:`repro.sanitizer.fixtures`) across all six passes —
the dynamic builders plus the static determinism-lint and
protocol-contract snippets — and checks each produces exactly its
expected violation set: a sanitizer that cannot see a planted bug
proves nothing by staying silent on real code.
"""

from __future__ import annotations

import numpy as np

from repro.sanitizer import Sanitizer
from repro.sanitizer.fixtures import (BAD_CONTRACT_SOURCES,
                                      BAD_KERNEL_SOURCE, FIXTURE_PASSES,
                                      FIXTURES)

#: Determinism-lint rules :data:`BAD_KERNEL_SOURCE` is built to trip.
_LINT_EXPECTED = frozenset(
    {"unseeded-rng", "wall-clock", "set-iteration", "bare-except"})

_PASS_FLAGS = ("racecheck", "lockcheck", "memcheck", "initcheck",
               "synccheck")


def _new_sanitizer(passes: set | None = None) -> Sanitizer:
    """A sanitizer restricted to ``passes`` (None = every pass)."""
    if passes is None:
        return Sanitizer()
    return Sanitizer(**{flag: flag in passes for flag in _PASS_FLAGS})


def _keys(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    drawn = np.unique(rng.integers(1, 1 << 62, int(n * 1.3) + 16,
                                   dtype=np.int64).astype(np.uint64))
    while len(drawn) < n:
        more = rng.integers(1, 1 << 62, n, dtype=np.int64)
        drawn = np.unique(np.concatenate([drawn,
                                          more.astype(np.uint64)]))
    return drawn[:n]


def _audit_kernels(engine: str, ops: int, seed: int,
                   passes: set | None = None) -> Sanitizer:
    """Insert/find/delete kernel workload on one engine, audited."""
    from repro.core.config import DyCuckooConfig
    from repro.core.table import DyCuckooTable
    from repro.kernels import (run_delete_kernel, run_find_kernel,
                               run_spin_insert_kernel,
                               run_voter_insert_kernel)

    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=64, bucket_capacity=8, auto_resize=False,
        seed=seed))
    san = table.set_sanitizer(_new_sanitizer(passes))
    keys = _keys(ops, seed + 1)
    values = keys * np.uint64(3)
    run_voter_insert_kernel(table, keys, values, engine=engine)
    # Upserts + alternate-bucket updates (the lock-free value path).
    run_voter_insert_kernel(table, keys[::2], values[::2] + np.uint64(1),
                            engine=engine)
    run_find_kernel(table, keys, engine=engine)
    run_delete_kernel(table, keys[::3], engine=engine)
    # The spin ablation holds locks across failed rounds — the hottest
    # pairing path the lockcheck pass sees.
    fresh = _keys(ops // 4, seed + 2)
    run_spin_insert_kernel(table, fresh, fresh, engine=engine)
    return san


def _audit_migration_epoch(engine: str, ops: int, seed: int,
                           passes: set | None = None) -> Sanitizer:
    """Kernels against open migration epochs: the dual-view path.

    Opens an upsize epoch, runs every kernel while it is only partially
    drained, finalizes, then does the same through a downsize epoch —
    whose finalize *retires* the source view (``retired_epochs`` ticks)
    — and probes again afterwards.  A healthy tree stays inside the
    live extents throughout: zero violations.
    """
    from repro.core.config import DyCuckooConfig
    from repro.core.table import DyCuckooTable
    from repro.kernels import (run_delete_kernel, run_find_kernel,
                               run_voter_insert_kernel)

    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=16, bucket_capacity=8, min_buckets=8,
        auto_resize=False, seed=seed))
    san = table.set_sanitizer(_new_sanitizer(passes))
    keys = _keys(max(ops // 4, 64), seed + 6)
    values = keys * np.uint64(5)
    half = len(keys) // 2
    run_voter_insert_kernel(table, keys[:half], values[:half],
                            engine=engine)
    resizer = table._resizer
    resizer.open_upsize_epoch()
    # Mid-epoch: inserts, finds and deletes all address the dual view.
    run_voter_insert_kernel(table, keys[half:], values[half:],
                            engine=engine)
    run_find_kernel(table, keys, engine=engine)
    resizer.drain_migration(max_pairs=8)  # partial slice; stays open
    run_delete_kernel(table, keys[::3], engine=engine)
    resizer.finalize_migration()
    # Downsize epoch: finalize truncates the physical rows (the retire
    # point); post-retire probes must stay within the live extent.
    resizer.open_downsize_epoch()
    run_find_kernel(table, keys, engine=engine)
    resizer.finalize_migration()
    run_find_kernel(table, keys, engine=engine)
    return san


def _audit_memory(seed: int, passes: set | None = None) -> Sanitizer:
    """Allocation-lifetime audit through the device memory manager."""
    from repro.gpusim.memory_manager import DeviceMemoryManager

    san = _new_sanitizer(passes)
    manager = DeviceMemoryManager(sanitizer=san)
    san.begin_alloc_scope()
    manager.set_allocation("hash_table", (512 << 20) + seed)
    manager.set_allocation("scratch", 1 << 20)
    manager.set_allocation("scratch", 1 << 21)  # grow in place
    manager.free("scratch")
    manager.free("hash_table")
    san.end_alloc_scope()
    return san


def _audit_stash(seed: int, passes: set | None = None) -> Sanitizer:
    """Stash occupancy audit: capacity-bounded pushes stay silent."""
    from repro.core.stash import Stash

    san = _new_sanitizer(passes)
    stash = Stash(capacity=8)
    stash.sanitizer = san
    codes = np.arange(1, 9, dtype=np.uint64) + np.uint64(seed)
    stash.push(codes, codes)
    stash.push(codes[:4], codes[:4] + np.uint64(1))  # in-place updates
    # A push past capacity is *rejected* (not absorbed) — the bound
    # holds, so memcheck stays silent.
    stash.push(codes + np.uint64(100), codes)
    stash.erase(codes[:4])
    stash.push(codes[:2] + np.uint64(200), codes[:2])
    return san


def _audit_resize(ops: int, seed: int,
                  passes: set | None = None) -> Sanitizer:
    """Resize storm through the core table path, audited."""
    from repro.core.config import DyCuckooConfig
    from repro.core.table import DyCuckooTable

    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=16, bucket_capacity=8, min_buckets=8,
        seed=seed))
    san = table.set_sanitizer(_new_sanitizer(passes))
    keys = _keys(ops, seed + 3)
    # Grow through repeated upsizes, then shrink through downsizes
    # (residual spills included) — every resize brackets its one
    # subtable lock.
    table.insert(keys, keys)
    table.delete(keys[: (len(keys) * 9) // 10])
    table.insert(keys[:ops // 4], keys[:ops // 4])
    return san


def _audit_faults(ops: int, seed: int,
                  passes: set | None = None) -> Sanitizer:
    """Fault-injection phase: injected events classify, never violate."""
    from repro.core.config import DyCuckooConfig
    from repro.core.table import DyCuckooTable
    from repro.errors import ResizeError
    from repro.faults import FaultPlan
    from repro.kernels import run_voter_insert_kernel

    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=64, bucket_capacity=8, auto_resize=False,
        seed=seed))
    san = table.set_sanitizer(_new_sanitizer(passes))
    table.set_fault_plan(FaultPlan(seed=seed, rates={
        "lock.acquire": 0.05, "lock.stall": 0.02, "atomics.cas": 0.05,
    }))
    keys = _keys(ops, seed + 4)
    run_voter_insert_kernel(table, keys, keys)

    # Resize aborts at every stage: each must roll back *and* release
    # its subtable lock on the way out.
    for stage in ("trigger", "plan", "rehash", "spill"):
        rtable = DyCuckooTable(DyCuckooConfig(
            initial_buckets=16, bucket_capacity=8, min_buckets=8,
            seed=seed))
        rtable.set_sanitizer(san)
        rkeys = _keys(ops // 2, seed + 5)
        rtable.insert(rkeys, rkeys)
        rtable.set_fault_plan(FaultPlan(
            seed=seed, rates={f"resize.abort.{stage}": 1.0}))
        try:
            rtable._resizer.downsize()
        except ResizeError:
            pass
        rtable.set_fault_plan(None)
    return san


def run_clean_audit(ops: int = 512, seed: int = 0,
                    engines: tuple = ("warp", "cohort"),
                    passes: set | None = None) -> dict:
    """Audit a correct workload end to end; returns a combined report.

    ``report["ok"]`` is True iff no pass flagged anything across any
    phase.  Phases: per-engine kernel workloads, per-engine
    mid-migration-epoch workloads (kernels against a partially drained
    dual view, through the downsize retire point), a resize storm, a
    device-allocation lifetime audit, a stash occupancy audit, and a
    fault-injection phase whose injected events must classify as
    intentional (``stats["injected_events"] > 0``, zero violations).
    """
    phases: dict[str, dict] = {}
    for engine in engines:
        phases[f"kernels[{engine}]"] = _audit_kernels(
            engine, ops, seed, passes).report()
        phases[f"migration-epoch[{engine}]"] = _audit_migration_epoch(
            engine, ops, seed, passes).report()
    phases["resize"] = _audit_resize(ops, seed, passes).report()
    phases["memory"] = _audit_memory(seed, passes).report()
    phases["stash"] = _audit_stash(seed, passes).report()
    faults = _audit_faults(ops, seed, passes)
    phases["faults"] = faults.report()
    ok = all(p["ok"] and p["subtable_locks_held"] == 0
             for p in phases.values())
    return {
        "ok": ok,
        "injected_events": faults.stats["injected_events"],
        "phases": phases,
    }


def run_fixture_suite(passes: set | None = None) -> dict:
    """Run every seeded-violation fixture; returns per-fixture results.

    Covers all six passes: the dynamic builders (racecheck, lockcheck,
    memcheck, initcheck, synccheck) plus the static determinism-lint
    and protocol-contract snippets.  ``passes`` (names among
    ``racecheck``/``lockcheck``/``memcheck``/``initcheck``/
    ``synccheck``/``lint``/``contracts``) subsets the suite; None runs
    everything.  ``report["ok"]`` is True iff every selected fixture
    produced exactly its expected violation set and every dynamic
    violation carries round/warp attribution.
    """
    from repro.sanitizer.contracts import check_source
    from repro.sanitizer.lint import lint_source

    def selected(fixture_passes: frozenset | set) -> bool:
        return passes is None or bool(passes & set(fixture_passes))

    results: dict[str, dict] = {}
    ok = True
    for name, (build, expected_kinds) in FIXTURES.items():
        if not selected(FIXTURE_PASSES[name]):
            continue
        san = build()
        got_kinds = {v.kind for v in san.violations}
        attributed = all(
            v.round_index >= 0 and v.warp >= 0
            for v in san.violations
            if v.space in ("bucket", "lock"))
        passed = got_kinds == expected_kinds and attributed
        ok = ok and passed
        results[name] = {
            "ok": passed,
            "expected": sorted(expected_kinds),
            "detected": sorted(got_kinds),
            "violations": [v.to_dict() for v in san.violations],
        }
    if selected({"lint"}):
        findings = lint_source(BAD_KERNEL_SOURCE,
                               path="<fixture:lint>", strict=True)
        got_rules = {f.rule for f in findings}
        passed = got_rules == set(_LINT_EXPECTED)
        ok = ok and passed
        results["determinism-lint"] = {
            "ok": passed,
            "expected": sorted(_LINT_EXPECTED),
            "detected": sorted(got_rules),
            "violations": [str(f) for f in findings],
        }
    if selected({"contracts"}):
        for rule, source in BAD_CONTRACT_SOURCES.items():
            findings = check_source(source, path=f"<fixture:{rule}>")
            got_rules = {f.rule for f in findings}
            passed = got_rules == {rule}
            ok = ok and passed
            results[f"contract:{rule}"] = {
                "ok": passed,
                "expected": [rule],
                "detected": sorted(got_rules),
                "violations": [str(f) for f in findings],
            }
    return {"ok": ok, "fixtures": results}
