"""Static protocol-contract analyzer (the sanitizer's sixth pass).

The dynamic passes only see contracts that *execute*; a forgotten
``try/finally`` on a path the fuzzer never takes stays latent until a
chaos run trips it.  This module proves three bracket disciplines over
the AST of the protocol-bearing source — ``kernels/``, ``gpusim/`` and
``core/resize.py`` — the same way :mod:`repro.sanitizer.lint` proves
determinism hygiene:

``unreleased-lock-path``
    Every lock acquisition must be released on all paths.  A class (or
    module-level function) calling ``try_acquire`` must show
    exception-safe release evidence: a ``release`` call inside a
    ``finally`` block or ``except`` handler, or a dedicated unwind
    method (name containing ``unwind``) that releases — the pattern
    :meth:`repro.kernels.insert._InsertWarp.unwind_locks` establishes.
    Classes that *implement* both ``try_acquire`` and ``release`` are
    arbiters, not clients, and are exempt.  Likewise every function
    bracketing a subtable resize lock (``on_subtable_lock``) must
    unlock in a ``finally`` of the same function.

``unpaired-kernel-bracket``
    Every ``begin_kernel`` must pair with an ``end_kernel`` on the same
    receiver within the same function, and at least one ``end_kernel``
    must be exception-safe: in a ``finally``, or the profiler idiom of
    one call in an ``except`` handler plus one on the straight-line
    path after the ``try``.

``unguarded-structural-write``
    A structural bucket write (``<subtable>.keys[...] = ...``) may only
    happen in a function that also feeds the access stream
    (``record_access``), so the dynamic passes can see it.  Scoped to
    ``kernels/`` and ``gpusim/`` — resize's copy-over writes are
    bracketed by subtable locks, not kernel contracts.

Intentional exceptions carry the same ``# sanitize: allow(<rule>)``
marker the determinism lint uses, on the flagged line, with a rationale
in the surrounding comment.  Findings are
:class:`ContractFinding` records (static — no warp/round attribution),
mirrored by seeded bad-source fixtures in
:data:`repro.sanitizer.fixtures.BAD_CONTRACT_SOURCES` so every rule is
exercised in CI against both real and intentionally-broken code.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.sanitizer.lint import _ALLOW_MARKER

__all__ = [
    "RULES",
    "ContractFinding",
    "check_source",
    "check_file",
    "check_paths",
    "contract_scope_paths",
    "in_contract_scope",
    "in_write_scope",
]

#: Every rule this analyzer can report.
RULES = ("unreleased-lock-path", "unpaired-kernel-bracket",
         "unguarded-structural-write")

#: Directories (under ``src/repro``) whose files carry lock/bracket
#: contracts, plus the one core file that brackets subtable locks.
_SCOPE_DIRS = ("kernels", "gpusim")
_SCOPE_FILES = ("core/resize.py",)


@dataclass(frozen=True)
class ContractFinding:
    """One static contract violation."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _repro_tail(path: str) -> tuple[str, ...]:
    parts = path.replace(os.sep, "/").split("/")
    if "repro" in parts:
        return tuple(parts[parts.index("repro") + 1:])
    return tuple(parts)


def in_contract_scope(path: str) -> bool:
    """True when ``path`` carries lock/bracket contracts."""
    tail = _repro_tail(path)
    if not tail:
        return False
    if tail[0] in _SCOPE_DIRS:
        return True
    return "/".join(tail) in _SCOPE_FILES


def in_write_scope(path: str) -> bool:
    """True when ``unguarded-structural-write`` applies to ``path``.

    Resize's copy-over writes happen under subtable locks outside any
    kernel, so only kernel/engine code is held to the access-stream
    contract.
    """
    tail = _repro_tail(path)
    return bool(tail) and tail[0] in _SCOPE_DIRS


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _call_method(node: ast.Call) -> str:
    """The called method/function name (``x.y.z()`` -> ``"z"``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _receiver(node: ast.Call) -> str:
    """Dotted receiver of a method call (``a.b.c()`` -> ``"a.b"``)."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return ""
    parts: list[str] = []
    cur: ast.expr = func.value
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    else:
        parts.append("<expr>")
    return ".".join(reversed(parts))


@dataclass
class _Call:
    """One interesting call with its exception-handling context."""

    method: str
    receiver: str
    line: int
    #: Strongest enclosing region: "finally" > "except" > "try" >
    #: "plain" (function body outside any try statement).
    context: str


_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


_CTX_RANK = {"plain": 0, "try": 1, "except": 2, "finally": 3}


def _stronger(outer: str, inner: str) -> str:
    """Combine nested contexts; the safer classification wins."""
    return outer if _CTX_RANK[outer] >= _CTX_RANK[inner] else inner


def _collect_calls(func: ast.AST) -> list[_Call]:
    """Every call in ``func``'s own body (nested defs excluded),
    annotated with its try/except/finally context."""
    calls: list[_Call] = []

    def visit(node: ast.AST, context: str) -> None:
        if isinstance(node, ast.Call):
            calls.append(_Call(_call_method(node), _receiver(node),
                               node.lineno, context))
        if isinstance(node, ast.Try):
            for stmt in node.body + node.orelse:
                visit(stmt, _stronger(context, "try"))
            for handler in node.handlers:
                visit(handler, _stronger(context, "except"))
            for stmt in node.finalbody:
                visit(stmt, _stronger(context, "finally"))
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
                continue
            visit(child, context)

    for child in ast.iter_child_nodes(func):
        if isinstance(child, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
            continue
        visit(child, "plain")
    return calls


# ---------------------------------------------------------------------------
# Per-function checks
# ---------------------------------------------------------------------------

def _check_kernel_brackets(func_name: str, calls: list[_Call],
                           path: str) -> list[ContractFinding]:
    begins: dict[str, _Call] = {}
    ends: dict[str, list[_Call]] = {}
    for call in calls:
        if call.method == "begin_kernel":
            begins.setdefault(call.receiver, call)
        elif call.method == "end_kernel":
            ends.setdefault(call.receiver, []).append(call)
    findings = []
    for receiver, begin in begins.items():
        closing = ends.get(receiver, [])
        safe = any(c.context == "finally" for c in closing) or (
            any(c.context == "except" for c in closing)
            and any(c.context == "plain" for c in closing))
        if not safe:
            what = ("no end_kernel() on the same receiver"
                    if not closing else
                    "end_kernel() is not exception-safe (needs a "
                    "finally, or an except-handler call paired with a "
                    "straight-line call after the try)")
            findings.append(ContractFinding(
                path, begin.line, "unpaired-kernel-bracket",
                f"{func_name} opens kernel bracket on "
                f"'{receiver}' but {what}"))
    return findings


def _check_subtable_locks(func_name: str, calls: list[_Call],
                          path: str) -> list[ContractFinding]:
    locks = [c for c in calls if c.method == "on_subtable_lock"]
    if not locks:
        return []
    unlocks = [c for c in calls if c.method == "on_subtable_unlock"]
    if any(c.context == "finally" for c in unlocks):
        return []
    return [ContractFinding(
        path, locks[0].line, "unreleased-lock-path",
        f"{func_name} takes a subtable resize lock without an "
        "on_subtable_unlock in a finally — an abort mid-resize wedges "
        "the one-subtable guarantee")]


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Pruned walk: ``func``'s own nodes, nested scopes excluded."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _FUNC_NODES + (ast.ClassDef, ast.Lambda)):
            continue  # nested defs are visited as their own functions
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_structural_writes(func_name: str, func: ast.AST,
                             calls: list[_Call],
                             path: str) -> list[ContractFinding]:
    writes: list[int] = []
    for node in _own_nodes(func):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "keys"
                    # self.keys are a warp's private lane registers,
                    # not bucket storage; only subtable-qualified
                    # writes (st.keys[...], table.keys[...]) are
                    # structural.
                    and not (isinstance(target.value.value, ast.Name)
                             and target.value.value.id == "self")):
                writes.append(target.lineno)
    if not writes:
        return []
    if any(c.method == "record_access" for c in calls):
        return []
    return [ContractFinding(
        path, line, "unguarded-structural-write",
        f"{func_name} writes bucket keys without feeding the "
        "sanitizer access stream (no record_access in this function)")
        for line in writes]


# ---------------------------------------------------------------------------
# Module analysis
# ---------------------------------------------------------------------------

def _functions_of(tree: ast.Module) -> list[tuple[str, ast.AST, str]]:
    """Every function in the module as ``(qualname, node, class_name)``
    (class_name is "" for module-level functions)."""
    out: list[tuple[str, ast.AST, str]] = []

    def visit(node: ast.AST, prefix: str, cls: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES):
                name = f"{prefix}{child.name}"
                out.append((name, child, cls))
                visit(child, name + ".", cls)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.",
                      f"{prefix}{child.name}")
            else:
                visit(child, prefix, cls)

    visit(tree, "", "")
    return out


def _check_warp_locks(tree: ast.Module, path: str,
                      functions: list[tuple[str, ast.AST, str]],
                      calls_of: dict[str, list[_Call]],
                      ) -> list[ContractFinding]:
    """``try_acquire`` clients must release on every path."""
    # Group functions by owning class ("" = module level).
    by_class: dict[str, list[str]] = {}
    for name, _node, cls in functions:
        by_class.setdefault(cls, []).append(name)
    # Classes that *define* try_acquire and release are arbiters.
    arbiters = set()
    for cls, names in by_class.items():
        defined = {n.rsplit(".", 1)[-1] for n in names}
        if cls and {"try_acquire", "release"} <= defined:
            arbiters.add(cls)
    findings = []
    for cls, names in by_class.items():
        if cls in arbiters:
            continue
        acquires: list[_Call] = []
        safe_release = False
        for name in names:
            calls = calls_of[name]
            short = name.rsplit(".", 1)[-1]
            for call in calls:
                if call.method == "try_acquire":
                    acquires.append(call)
                elif call.method == "release":
                    if call.context in ("finally", "except"):
                        safe_release = True
                    elif "unwind" in short:
                        # The dedicated unwind method *is* the
                        # exception path; a plain release there is the
                        # contract's fix, not a gap.
                        safe_release = True
        if cls == "":
            # Module-level functions are independent scopes: check
            # each one on its own instead of pooling evidence.
            for name in names:
                calls = calls_of[name]
                acq = [c for c in calls if c.method == "try_acquire"]
                if not acq:
                    continue
                ok = any(c.method == "release"
                         and c.context in ("finally", "except")
                         for c in calls)
                if not ok:
                    findings.append(ContractFinding(
                        path, acq[0].line, "unreleased-lock-path",
                        f"{name} acquires a lock with no "
                        "exception-safe release (finally/except) in "
                        "the same function"))
            continue
        if acquires and not safe_release:
            findings.append(ContractFinding(
                path, acquires[0].line, "unreleased-lock-path",
                f"class {cls} acquires locks but shows no "
                "exception-safe release path (no release in a "
                "finally/except and no unwind method)"))
    return findings


def check_source(source: str, path: str = "<string>",
                 structural_writes: bool | None = None,
                 ) -> list[ContractFinding]:
    """Analyze one module's source; returns surviving findings.

    ``structural_writes`` gates the ``unguarded-structural-write`` rule
    and defaults from the path (kernels/gpusim only); fixtures pass
    True explicitly.
    """
    if structural_writes is None:
        # Synthetic paths ("<string>", "<fixture:...>") get the full
        # rule set; real files default from their tree position.
        structural_writes = path.startswith("<") or in_write_scope(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [ContractFinding(path, exc.lineno or 0, "parse-error",
                                f"could not parse: {exc.msg}")]
    functions = _functions_of(tree)
    calls_of = {name: _collect_calls(node)
                for name, node, _cls in functions}
    findings: list[ContractFinding] = []
    for name, node, _cls in functions:
        calls = calls_of[name]
        findings.extend(_check_kernel_brackets(name, calls, path))
        findings.extend(_check_subtable_locks(name, calls, path))
        if structural_writes:
            findings.extend(
                _check_structural_writes(name, node, calls, path))
    findings.extend(_check_warp_locks(tree, path, functions, calls_of))
    findings = _apply_suppressions(findings, source)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _apply_suppressions(findings: list[ContractFinding],
                        source: str) -> list[ContractFinding]:
    lines = source.splitlines()
    kept = []
    for finding in findings:
        line = lines[finding.line - 1] if finding.line <= len(lines) else ""
        if _ALLOW_MARKER + finding.rule + ")" in line:
            continue
        kept.append(finding)
    return kept


def check_file(path: str) -> list[ContractFinding]:
    with open(path, encoding="utf-8") as handle:
        return check_source(handle.read(), path)


def contract_scope_paths(root: str | None = None) -> list[str]:
    """The real-source files the analyzer covers, sorted."""
    if root is None:
        here = os.path.dirname(os.path.abspath(__file__))
        root = os.path.dirname(here)  # src/repro
    paths = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            full = os.path.join(dirpath, filename)
            if in_contract_scope(full):
                paths.append(full)
    return sorted(paths)


def check_paths(paths: Iterable[str] | None = None,
                ) -> list[ContractFinding]:
    """Analyze ``paths`` (default: the full contract scope)."""
    if paths is None:
        paths = contract_scope_paths()
    findings: list[ContractFinding] = []
    for path in paths:
        findings.extend(check_file(path))
    return findings
