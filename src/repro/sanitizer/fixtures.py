"""Seeded intentional-violation fixtures for the sanitizer passes.

Every fixture builds a tiny *buggy* kernel — the bug class named in its
key — and runs it through the real simulator machinery
(:class:`~repro.gpusim.kernel.RoundScheduler`,
:class:`~repro.gpusim.kernel.LockArbiter`) with a
:class:`~repro.sanitizer.Sanitizer` attached, then returns the
sanitizer.  Tests (and ``python -m repro sanitize --fixtures``) assert
each fixture produces *exactly* its expected violation kinds with
file/round/warp attribution — the sanitizer's own regression suite, in
the spirit of compute-sanitizer's demo suite of intentionally broken
kernels.

:data:`BAD_KERNEL_SOURCE` and :data:`BAD_CONTRACT_SOURCES` are the
static counterparts: snippets tripping every determinism-lint rule and
every protocol-contract rule respectively, analyzed in-memory via
:func:`repro.sanitizer.lint.lint_source` and
:func:`repro.sanitizer.contracts.check_source`.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.gpusim.kernel import LockArbiter, RoundScheduler
from repro.sanitizer import VIOLATION_KINDS, Sanitizer

_SITE = "repro/sanitizer/fixtures.py"


class _FixtureSubtable:
    """Just enough subtable for memcheck's extent decode: a keys array."""

    def __init__(self, rows: int, capacity: int = 4) -> None:
        self.keys = np.zeros((rows, capacity), dtype=np.uint64)


class _FixtureTable:
    """A table stand-in exposing ``subtables`` with live geometry."""

    def __init__(self, rows_per_subtable: Iterable[int]) -> None:
        self.subtables = [_FixtureSubtable(rows)
                          for rows in rows_per_subtable]


class _ScriptWarp:
    """A warp that replays a per-round script of sanitizer-visible ops.

    Each round's entry is a list of ``(op, *args)`` steps:
    ``("acquire", lock)``, ``("release", lock)``,
    ``("access", kind, space, address)``, ``("vote", votes, active)``,
    ``("exit", live_lanes)``, or ``("noop",)``.
    """

    def __init__(self, warp_id: int, script: list, arbiter: LockArbiter,
                 san: Sanitizer) -> None:
        self.warp_id = warp_id
        self.script = script
        self.arbiter = arbiter
        self.san = san

    def finished(self) -> bool:
        return not self.script

    def step(self, _round_index: int) -> None:
        if not self.script:
            return
        for op, *args in self.script.pop(0):
            if op == "acquire":
                self.arbiter.try_acquire(args[0], warp=self.warp_id)
            elif op == "release":
                self.arbiter.release(args[0], warp=self.warp_id)
            elif op == "access":
                kind, space, address = args
                self.san.record_access(self.warp_id, kind, space,
                                       address, site=_SITE)
            elif op == "vote":
                votes, active = args
                self.san.on_vote(self.warp_id, votes, active,
                                 site=_SITE)
            elif op == "exit":
                self.san.on_kernel_exit(args[0], site=_SITE)


def _run_script_kernel(san: Sanitizer, scripts: Iterable, name: str,
                       locking: bool = True, table: Any = None) -> None:
    arbiter = LockArbiter(sanitizer=san)
    warps = [_ScriptWarp(i, list(script), arbiter, san)
             for i, script in enumerate(scripts)]
    san.begin_kernel(name, locking=locking, table=table)
    try:
        RoundScheduler(warps, sanitizer=san).run()
    finally:
        san.end_kernel()


def fixture_unlocked_write() -> Sanitizer:
    """Two warps write the same bucket word, neither holding its lock.

    Expected: one ``race`` (write/write pair, disjoint locksets) plus an
    ``unlocked-write`` per writer — the exact signature of an insert
    kernel that skipped its ``atomicCAS``.
    """
    san = Sanitizer()
    word = (1 << 40) | 7
    _run_script_kernel(san, [
        [[("access", "write", "bucket", word)]],
        [[("access", "write", "bucket", word)]],
    ], "fixture-unlocked-write")
    return san


def fixture_race_read_write() -> Sanitizer:
    """A locked writer races an unlocked reader on one word.

    The writer holds the word's lock but the reader holds nothing, so
    the pair's locksets are disjoint: expected exactly one ``race`` (no
    ``unlocked-write`` — the write itself is properly locked).
    """
    san = Sanitizer()
    word = (1 << 40) | 3
    _run_script_kernel(san, [
        [[("acquire", word), ("access", "write", "bucket", word)],
         [("release", word)]],
        [[("access", "read", "bucket", word)]],
    ], "fixture-race-read-write")
    return san


def fixture_double_release() -> Sanitizer:
    """A warp releases the same lock twice (round 0 then round 1).

    Expected: exactly one ``double-release`` attributed to round 1.
    """
    san = Sanitizer()
    lock = (0 << 40) | 12
    _run_script_kernel(san, [
        [[("acquire", lock), ("release", lock)],
         [("release", lock)]],
    ], "fixture-double-release")
    return san


def fixture_leaked_lock() -> Sanitizer:
    """A warp acquires and never releases; the kernel then exits.

    Expected: exactly one ``leaked-lock`` naming the warp and resource —
    the forgotten-``atomicExch`` bug class.
    """
    san = Sanitizer()
    lock = (1 << 40) | 5
    _run_script_kernel(san, [
        [[("acquire", lock)], [("noop",)]],
    ], "fixture-leaked-lock")
    return san


def fixture_second_subtable_lock() -> Sanitizer:
    """A buggy resize locks a second subtable mid-operation.

    Models a resize implementation that rehashes one subtable while
    holding another's lock — precisely what Section IV-B's one-subtable
    guarantee forbids.  Expected: exactly one ``second-subtable-lock``.
    """
    san = Sanitizer()
    san.on_subtable_lock(0, "downsize", site=_SITE)
    san.on_subtable_lock(1, "spill", site=_SITE)  # the bug
    san.on_subtable_unlock(1, site=_SITE)
    san.on_subtable_unlock(0, site=_SITE)
    return san


def fixture_oob_access() -> Sanitizer:
    """A kernel probes past a subtable's live extent, and a subtable
    index the table does not have.

    Expected: two ``oob-access`` violations (one per bad decode) — the
    classic unchecked ``hash % old_capacity`` bug after a resize.
    """
    san = Sanitizer()
    table = _FixtureTable([8, 8])
    _run_script_kernel(san, [
        [[("access", "probe", "bucket", (0 << 40) | 9)],
         [("access", "probe", "bucket", (5 << 40) | 0)]],
    ], "fixture-oob-access", locking=False, table=table)
    return san


def fixture_use_after_retire() -> Sanitizer:
    """A probe reads a row truncated by a finalized downsize epoch.

    Subtable 1 shrank 16 -> 8 rows; the epoch's source view retired
    with ``finish_migration``.  A later probe of bucket 12 is exactly
    the stale dual-view read the epoch machinery makes possible.
    Expected: one ``use-after-retire`` (not a bare ``oob-access``).
    """
    san = Sanitizer()
    table = _FixtureTable([8, 8])
    san.on_epoch_retire(table, 1, old_rows=16, new_rows=8, site=_SITE)
    _run_script_kernel(san, [
        [[("access", "probe", "bucket", (1 << 40) | 12)]],
    ], "fixture-use-after-retire", locking=False, table=table)
    return san


def fixture_uninit_read() -> Sanitizer:
    """A probe reads a bucket never written since allocation.

    Buckets 3 and 5 are marked as allocated-without-zero-fill; a write
    initializes 5 (its later probe is then clean) but 3 is probed raw.
    Expected: exactly one ``uninit-read`` for bucket 3.
    """
    san = Sanitizer()
    table = _FixtureTable([8])
    san.mark_uninitialized(table, 0, [3, 5])
    _run_script_kernel(san, [
        [[("access", "write", "bucket", (0 << 40) | 5)],
         [("access", "probe", "bucket", (0 << 40) | 5)],
         [("access", "probe", "bucket", (0 << 40) | 3)]],
    ], "fixture-uninit-read", locking=False, table=table)
    return san


def fixture_divergent_sync() -> Sanitizer:
    """A leader-election ballot includes a lane outside the active mask.

    Lane 2 voted (``0b0111``) but the warp's active mask is ``0b0011``
    — an exited lane participating in ``__ballot_sync``, undefined
    behaviour on real hardware.  Expected: one ``divergent-sync``.
    """
    san = Sanitizer()
    _run_script_kernel(san, [
        [[("vote", 0b0111, 0b0011)]],
    ], "fixture-divergent-sync", locking=False)
    return san


def fixture_divergent_exit() -> Sanitizer:
    """The kernel's scheduler completes with lanes still resident.

    Expected: one ``divergent-exit`` reporting the 3 live lanes.
    """
    san = Sanitizer()
    _run_script_kernel(san, [
        [[("exit", 3)]],
    ], "fixture-divergent-exit", locking=False)
    return san


def fixture_unmatched_kernel_bracket() -> Sanitizer:
    """Kernel brackets mismatch in both directions.

    A ``begin_kernel`` lands while another kernel is still open (a
    missing ``end_kernel``), and later an ``end_kernel`` arrives with
    no kernel open (a double close).  Expected: two
    ``unmatched-kernel-bracket`` violations.
    """
    san = Sanitizer()
    san.begin_kernel("outer", locking=False)
    san.begin_kernel("inner", locking=False)  # outer never closed
    san.end_kernel()
    san.end_kernel()  # closes nothing: bracket already shut
    return san


def fixture_stash_overflow() -> Sanitizer:
    """A stash implementation that lost its capacity check.

    The fixture plants three entries in a capacity-2 stash (the bug),
    then pushes an update through the real :class:`Stash.push` path —
    memcheck sees occupancy 3 over capacity 2.  Expected: one
    ``stash-overflow``.
    """
    from repro.core.stash import Stash

    san = Sanitizer()
    stash = Stash(capacity=2)
    stash.sanitizer = san
    stash._entries = {1: 10, 2: 20, 3: 30}  # the planted bug
    stash.push(np.array([2], dtype=np.uint64),
               np.array([21], dtype=np.uint64))
    return san


def fixture_alloc_leak() -> Sanitizer:
    """A device allocation outlives its alloc scope without a free.

    Models a kernel that ``cudaMalloc``s scratch space and returns
    without freeing it.  Expected: one ``alloc-leak`` naming the
    surviving client (the properly freed one stays silent).
    """
    from repro.gpusim.memory_manager import DeviceMemoryManager

    san = Sanitizer()
    manager = DeviceMemoryManager(sanitizer=san)
    san.begin_alloc_scope()
    manager.set_allocation("leaked_scratch", 1 << 20)
    manager.set_allocation("freed_scratch", 1 << 16)
    manager.free("freed_scratch")
    san.end_alloc_scope(site=_SITE)
    return san


def fixture_double_free() -> Sanitizer:
    """The same device allocation is freed twice.

    Expected: one ``double-free`` on the second ``free`` (the first is
    legitimate and silent).
    """
    from repro.gpusim.memory_manager import DeviceMemoryManager

    san = Sanitizer()
    manager = DeviceMemoryManager(sanitizer=san)
    manager.set_allocation("spill_buffer", 1 << 20)
    manager.free("spill_buffer")
    manager.free("spill_buffer")  # the bug
    return san


#: name -> (builder, expected violation kinds as a set).
FIXTURES = {
    "unlocked-write": (fixture_unlocked_write,
                       {"unlocked-write", "race"}),
    "race-read-write": (fixture_race_read_write, {"race"}),
    "double-release": (fixture_double_release, {"double-release"}),
    "leaked-lock": (fixture_leaked_lock, {"leaked-lock"}),
    "second-subtable-lock": (fixture_second_subtable_lock,
                             {"second-subtable-lock"}),
    "oob-access": (fixture_oob_access, {"oob-access"}),
    "use-after-retire": (fixture_use_after_retire,
                         {"use-after-retire"}),
    "uninit-read": (fixture_uninit_read, {"uninit-read"}),
    "divergent-sync": (fixture_divergent_sync, {"divergent-sync"}),
    "divergent-exit": (fixture_divergent_exit, {"divergent-exit"}),
    "unmatched-kernel-bracket": (fixture_unmatched_kernel_bracket,
                                 {"unmatched-kernel-bracket"}),
    "stash-overflow": (fixture_stash_overflow, {"stash-overflow"}),
    "alloc-leak": (fixture_alloc_leak, {"alloc-leak"}),
    "double-free": (fixture_double_free, {"double-free"}),
}

_KIND_TO_PASS = {kind: pass_name
                 for pass_name, kinds in VIOLATION_KINDS.items()
                 for kind in kinds}

#: name -> the dynamic passes its expected violations belong to; used
#: by the CLI's per-pass selectors to subset the suite.
FIXTURE_PASSES = {
    name: frozenset(_KIND_TO_PASS[kind] for kind in expected)
    for name, (_, expected) in FIXTURES.items()
}


#: Static-fixture snippet: trips every determinism-lint rule exactly
#: once per marked line (tests pin the line numbers).
BAD_KERNEL_SOURCE = '''\
import random
import time

import numpy as np


def schedule(warps):
    rng = np.random.default_rng()          # unseeded-rng (line 8)
    started = time.time()                  # wall-clock (line 9)
    pending = {w.warp_id for w in warps}
    order = []
    for w in pending:                      # set-iteration (line 12)
        order.append(w)
    try:
        return rng.permutation(order), started
    except:                                # bare-except (line 16)
        return random.sample(order, len(order)), started
'''


#: Static-fixture snippets for the protocol-contract analyzer: one
#: intentionally broken source per contract rule, each tripping exactly
#: that rule via :func:`repro.sanitizer.contracts.check_source`.
BAD_CONTRACT_SOURCES = {
    "unreleased-lock-path": '''\
class LeakyWarp:
    """try_acquire succeeds but the release is not exception-safe."""

    def step(self):
        if not self.arbiter.try_acquire(self.lock_id, warp=self.warp_id):
            return
        self.write_slot()  # may raise: the lock leaks
        self.arbiter.release(self.lock_id, warp=self.warp_id)
''',
    "unpaired-kernel-bracket": '''\
def run_leaky_kernel(table, san):
    """end_kernel is not exception-safe: no finally bracket."""
    san.begin_kernel("leaky", locking=True)
    do_rounds(table)  # may raise: the bracket leaks
    san.end_kernel()
''',
    "unguarded-structural-write": '''\
def clear_slot(st, bucket, slot):
    """Structural key-slot write with no record_access in scope."""
    st.keys[bucket, slot] = 0
    st.values[bucket, slot] = 0
''',
}
