"""Seeded intentional-violation fixtures for the sanitizer passes.

Every fixture builds a tiny *buggy* kernel — the bug class named in its
key — and runs it through the real simulator machinery
(:class:`~repro.gpusim.kernel.RoundScheduler`,
:class:`~repro.gpusim.kernel.LockArbiter`) with a
:class:`~repro.sanitizer.Sanitizer` attached, then returns the
sanitizer.  Tests (and ``python -m repro sanitize --fixtures``) assert
each fixture produces *exactly* its expected violation kinds with
file/round/warp attribution — the sanitizer's own regression suite, in
the spirit of compute-sanitizer's demo suite of intentionally broken
kernels.

:data:`BAD_KERNEL_SOURCE` is the static counterpart: a snippet tripping
every determinism-lint rule, linted in-memory via
:func:`repro.sanitizer.lint.lint_source`.
"""

from __future__ import annotations

from repro.gpusim.kernel import LockArbiter, RoundScheduler
from repro.sanitizer import Sanitizer

_SITE = "repro/sanitizer/fixtures.py"


class _ScriptWarp:
    """A warp that replays a per-round script of sanitizer-visible ops.

    Each round's entry is a list of ``(op, *args)`` steps:
    ``("acquire", lock)``, ``("release", lock)``,
    ``("access", kind, space, address)``, or ``("noop",)``.
    """

    def __init__(self, warp_id: int, script, arbiter: LockArbiter,
                 san: Sanitizer) -> None:
        self.warp_id = warp_id
        self.script = script
        self.arbiter = arbiter
        self.san = san

    def finished(self) -> bool:
        return not self.script

    def step(self, _round_index: int) -> None:
        if not self.script:
            return
        for op, *args in self.script.pop(0):
            if op == "acquire":
                self.arbiter.try_acquire(args[0], warp=self.warp_id)
            elif op == "release":
                self.arbiter.release(args[0], warp=self.warp_id)
            elif op == "access":
                kind, space, address = args
                self.san.record_access(self.warp_id, kind, space,
                                       address, site=_SITE)


def _run_script_kernel(san: Sanitizer, scripts, name: str,
                       locking: bool = True) -> None:
    arbiter = LockArbiter(sanitizer=san)
    warps = [_ScriptWarp(i, list(script), arbiter, san)
             for i, script in enumerate(scripts)]
    san.begin_kernel(name, locking=locking)
    try:
        RoundScheduler(warps, sanitizer=san).run()
    finally:
        san.end_kernel()


def fixture_unlocked_write() -> Sanitizer:
    """Two warps write the same bucket word, neither holding its lock.

    Expected: one ``race`` (write/write pair, disjoint locksets) plus an
    ``unlocked-write`` per writer — the exact signature of an insert
    kernel that skipped its ``atomicCAS``.
    """
    san = Sanitizer()
    word = (1 << 40) | 7
    _run_script_kernel(san, [
        [[("access", "write", "bucket", word)]],
        [[("access", "write", "bucket", word)]],
    ], "fixture-unlocked-write")
    return san


def fixture_race_read_write() -> Sanitizer:
    """A locked writer races an unlocked reader on one word.

    The writer holds the word's lock but the reader holds nothing, so
    the pair's locksets are disjoint: expected exactly one ``race`` (no
    ``unlocked-write`` — the write itself is properly locked).
    """
    san = Sanitizer()
    word = (1 << 40) | 3
    _run_script_kernel(san, [
        [[("acquire", word), ("access", "write", "bucket", word)],
         [("release", word)]],
        [[("access", "read", "bucket", word)]],
    ], "fixture-race-read-write")
    return san


def fixture_double_release() -> Sanitizer:
    """A warp releases the same lock twice (round 0 then round 1).

    Expected: exactly one ``double-release`` attributed to round 1.
    """
    san = Sanitizer()
    lock = (0 << 40) | 12
    _run_script_kernel(san, [
        [[("acquire", lock), ("release", lock)],
         [("release", lock)]],
    ], "fixture-double-release")
    return san


def fixture_leaked_lock() -> Sanitizer:
    """A warp acquires and never releases; the kernel then exits.

    Expected: exactly one ``leaked-lock`` naming the warp and resource —
    the forgotten-``atomicExch`` bug class.
    """
    san = Sanitizer()
    lock = (1 << 40) | 5
    _run_script_kernel(san, [
        [[("acquire", lock)], [("noop",)]],
    ], "fixture-leaked-lock")
    return san


def fixture_second_subtable_lock() -> Sanitizer:
    """A buggy resize locks a second subtable mid-operation.

    Models a resize implementation that rehashes one subtable while
    holding another's lock — precisely what Section IV-B's one-subtable
    guarantee forbids.  Expected: exactly one ``second-subtable-lock``.
    """
    san = Sanitizer()
    san.on_subtable_lock(0, "downsize", site=_SITE)
    san.on_subtable_lock(1, "spill", site=_SITE)  # the bug
    san.on_subtable_unlock(1, site=_SITE)
    san.on_subtable_unlock(0, site=_SITE)
    return san


#: name -> (builder, expected violation kinds as a set).
FIXTURES = {
    "unlocked-write": (fixture_unlocked_write,
                       {"unlocked-write", "race"}),
    "race-read-write": (fixture_race_read_write, {"race"}),
    "double-release": (fixture_double_release, {"double-release"}),
    "leaked-lock": (fixture_leaked_lock, {"leaked-lock"}),
    "second-subtable-lock": (fixture_second_subtable_lock,
                             {"second-subtable-lock"}),
}


#: Static-fixture snippet: trips every determinism-lint rule exactly
#: once per marked line (tests pin the line numbers).
BAD_KERNEL_SOURCE = '''\
import random
import time

import numpy as np


def schedule(warps):
    rng = np.random.default_rng()          # unseeded-rng (line 8)
    started = time.time()                  # wall-clock (line 9)
    pending = {w.warp_id for w in warps}
    order = []
    for w in pending:                      # set-iteration (line 12)
        order.append(w)
    try:
        return rng.permutation(order), started
    except:                                # bare-except (line 16)
        return random.sample(order, len(order)), started
'''
