"""Determinism lint: an AST pass over ``src/repro`` (static pass 3).

The simulator's whole conformance story — bit-for-bit warp/cohort
equality, scripted fault replay, differential fuzzing against a dict
model — depends on every run being a pure function of its seeds.  This
pass forbids the nondeterminism sources that would silently break that:

``unseeded-rng``
    ``np.random.default_rng()`` with no (or ``None``) seed, any legacy
    global-state ``*.random.<fn>`` call (``rand``, ``seed``,
    ``shuffle``, …), and any use of the stdlib :mod:`random` module.
    Enforced everywhere under ``src/repro``.
``bare-except``
    ``except:`` swallows *everything* — including the injected-fault
    exceptions the robustness layer relies on propagating — and around
    a lock region it can hide a missed release.  Enforced everywhere.
``wall-clock``
    ``time.*()`` / ``datetime.now()`` reads.  Kernel and device code
    must use the simulated clock; host-side tooling (CLI, benchmarks)
    legitimately measures wall time.  Enforced only in strict scope.
``set-iteration``
    Iterating a ``set`` lets hash order reach results.  (Python dicts
    are insertion-ordered, hence deterministic, and are not flagged.)
    Enforced only in strict scope; wrap in ``sorted(...)`` to fix.

*Strict scope* is the code whose outputs feed conformance checks: any
module under ``repro/gpusim/``, ``repro/kernels/``, ``repro/core/``,
``repro/shard/`` (the sharded executor must replay deterministically
for its serial-conformance check) or ``repro/scenarios/`` (scorecards
are compared run-to-run by the soak suite).

Suppression: append ``# sanitize: allow(<rule>)`` to the offending
line.  Use it only with a justification comment — the suppression is
the audit trail.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass

__all__ = ["LintFinding", "lint_source", "lint_file", "lint_paths",
           "RULES", "STRICT_DIRS"]

#: Every rule this pass can emit.
RULES = ("unseeded-rng", "wall-clock", "set-iteration", "bare-except")

#: Package directories (under ``repro``) held to the strict rule set.
STRICT_DIRS = ("gpusim", "kernels", "core", "shard", "scenarios")

#: Legacy numpy global-RNG entry points (all draw from hidden state).
_LEGACY_RANDOM_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "seed", "shuffle", "permutation", "choice", "uniform",
    "normal", "standard_normal", "bytes", "get_state", "set_state",
})

#: Wall-clock reads on the stdlib ``time`` module.
_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock",
})

_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

_ALLOW_MARKER = "sanitize: allow("


@dataclass(frozen=True)
class LintFinding:
    """One determinism-lint finding."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def is_strict_path(path: str) -> bool:
    """True when ``path`` belongs to the strict (kernel/device) scope."""
    parts = path.replace(os.sep, "/").split("/")
    if "repro" not in parts:
        return False
    tail = parts[parts.index("repro") + 1:]
    return bool(tail) and tail[0] in STRICT_DIRS


def _attr_chain(node: ast.AST) -> list[str]:
    """Dotted attribute chain of a call target, outermost last."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
    chain.reverse()
    return chain


def _is_set_expr(node: ast.AST) -> bool:
    """Does this expression certainly build a ``set``?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and not node.keywords:
        chain = _attr_chain(node.func)
        return chain[-1:] == ["set"] and len(chain) == 1
    return False


def _target_name(node: ast.AST) -> str | None:
    """Name (or ``self.attr``) an assignment binds, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)):
        return f"{node.value.id}.{node.attr}"
    return None


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, strict: bool) -> None:
        self.path = path
        self.strict = strict
        self.findings: list[LintFinding] = []
        #: Module names bound to stdlib ``random`` / ``time``.
        self.random_aliases: set[str] = set()
        self.time_aliases: set[str] = set()
        self.datetime_aliases: set[str] = set()
        #: Names known to hold sets, per enclosing function scope.
        self._set_scopes: list[set[str]] = [set()]

    # -- bookkeeping ---------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(LintFinding(self.path, node.lineno, rule,
                                         message))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._flag(node, "unseeded-rng",
                       "stdlib random draws from hidden global state; "
                       "use np.random.default_rng(seed)")
        if node.module == "datetime":
            for alias in node.names:
                if alias.name == "datetime":
                    self.datetime_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _visit_scope(self, node: ast.AST) -> None:
        self._set_scopes.append(set())
        self.generic_visit(node)
        self._set_scopes.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope

    # -- assignments feeding set-iteration tracking --------------------

    def _record_set_binding(self, target: ast.AST,
                            value: ast.AST | None) -> None:
        name = _target_name(target)
        if name is None or value is None:
            return
        if _is_set_expr(value):
            self._set_scopes[-1].add(name)
        else:
            self._set_scopes[-1].discard(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_set_binding(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_set_binding(node.target, node.value)
        self.generic_visit(node)

    # -- rule checks ---------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(node, "bare-except",
                       "bare 'except:' swallows injected faults and "
                       "lock-region failures; name the exception type")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        tail = chain[-1] if chain else ""

        # unseeded-rng: default_rng() with no/None seed, any dotted
        # ``*.random.<legacy>`` access, any stdlib-random call.
        if tail == "default_rng":
            seedless = (not node.args and not node.keywords) or (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None)
            if seedless:
                self._flag(node, "unseeded-rng",
                           "default_rng() without a seed is entropy-"
                           "seeded; pass an explicit seed")
        elif (len(chain) >= 2 and chain[-2] == "random"
                and tail in _LEGACY_RANDOM_FNS):
            self._flag(node, "unseeded-rng",
                       f"legacy global-state RNG call "
                       f"'{'.'.join(chain)}'; use a seeded "
                       "np.random.default_rng generator")
        elif chain and chain[0] in self.random_aliases:
            self._flag(node, "unseeded-rng",
                       f"stdlib random call '{'.'.join(chain)}'; use a "
                       "seeded np.random.default_rng generator")

        if self.strict:
            # wall-clock: time.<fn>() and datetime.now()/utcnow().
            if (len(chain) == 2 and chain[0] in self.time_aliases
                    and chain[1] in _TIME_FNS):
                self._flag(node, "wall-clock",
                           f"'{'.'.join(chain)}()' reads the host "
                           "clock; kernel/device code must use the "
                           "simulated clock")
            elif (len(chain) >= 2 and tail in _DATETIME_FNS
                    and (chain[0] in self.datetime_aliases
                         or (len(chain) >= 3
                             and chain[-2] == "datetime"))):
                self._flag(node, "wall-clock",
                           f"'{'.'.join(chain)}()' reads the host "
                           "clock; kernel/device code must use the "
                           "simulated clock")
            # set-iteration escaping through list()/tuple()/enumerate().
            if (len(chain) == 1
                    and chain[0] in ("list", "tuple", "enumerate")
                    and node.args):
                name = _target_name(node.args[0])
                if name is not None and self._is_set_name(name):
                    self._flag(node, "set-iteration",
                               f"'{chain[0]}({name})' exposes set "
                               "iteration order; use sorted(...)")
        self.generic_visit(node)

    def _is_set_name(self, name: str) -> bool:
        return any(name in scope for scope in self._set_scopes)

    def _check_iteration(self, iter_node: ast.AST) -> None:
        if not self.strict:
            return
        name = _target_name(iter_node)
        if name is not None and self._is_set_name(name):
            self.findings.append(LintFinding(
                self.path, iter_node.lineno, "set-iteration",
                f"iterating set '{name}' lets hash order reach "
                "results; use sorted(...)"))

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension_iters(self, node: ast.AST) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_iters
    visit_SetComp = visit_comprehension_iters
    visit_DictComp = visit_comprehension_iters
    visit_GeneratorExp = visit_comprehension_iters


def _apply_suppressions(findings: list[LintFinding],
                        source: str) -> list[LintFinding]:
    lines = source.splitlines()
    kept = []
    for finding in findings:
        line = lines[finding.line - 1] if finding.line <= len(lines) else ""
        if _ALLOW_MARKER + finding.rule + ")" in line:
            continue
        kept.append(finding)
    return kept


def lint_source(source: str, path: str = "<string>",
                strict: bool | None = None) -> list[LintFinding]:
    """Lint one module's source; ``strict`` defaults to path-derived."""
    if strict is None:
        strict = is_strict_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, "parse-error",
                            f"could not parse: {exc.msg}")]
    linter = _Linter(path, strict)
    linter.visit(tree)
    findings = _apply_suppressions(linter.findings, source)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_file(path: str, strict: bool | None = None) -> list[LintFinding]:
    with open(path, encoding="utf-8") as handle:
        return lint_source(handle.read(), path, strict)


def lint_paths(paths: list[str] | None = None) -> list[LintFinding]:
    """Lint every ``*.py`` under each path (default: ``src/repro``)."""
    if paths is None:
        here = os.path.dirname(os.path.abspath(__file__))
        paths = [os.path.dirname(here)]  # src/repro
    findings: list[LintFinding] = []
    for root in paths:
        if os.path.isfile(root):
            findings.extend(lint_file(root))
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames
                           if d not in ("__pycache__", ".git")]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    findings.extend(
                        lint_file(os.path.join(dirpath, filename)))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
