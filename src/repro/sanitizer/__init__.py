"""Compute-sanitizer analogue for the simulated GPU (``repro.gpusim``).

The paper's correctness story rests on two machine-checkable disciplines:

* every **bucket mutation** happens under the bucket's ``atomicCAS``
  lock (Algorithm 1), and
* a **resize** locks exactly *one* subtable (Section IV-B), so the other
  subtables stay online.

Nothing in the simulator enforced either — a kernel that forgot a
``release()`` or wrote a bucket without holding its lock would only
surface as a flaky differential-fuzz failure.  This package is the
``compute-sanitizer`` of the simulator: three passes, each reporting
:class:`Violation` records with file/round/warp attribution.

racecheck (dynamic)
    The kernels log every storage access — ``(warp, kind, space,
    address, held-locks, site)`` — into a per-device-round window.  At
    each round boundary the pass flags any write/write or read/write
    pair on the same word from different warps whose locksets are
    disjoint: a dynamic lockset (Eraser-style) check over the
    simulator's round-based happens-before.  Kernels additionally
    declare a *locking contract* (``begin_kernel(..., locking=True)``);
    under it, a structural bucket write whose writer does not hold that
    bucket's lock is flagged immediately (``unlocked-write``).

lockcheck (dynamic)
    Acquire/release pairing per warp across
    :class:`~repro.gpusim.kernel.LockArbiter`, the cohort engine and
    :class:`~repro.core.resize.ResizeController`: double acquire,
    double release, locks still held at kernel exit (``leaked-lock``),
    and the one-subtable resize guarantee (``second-subtable-lock``).
    Exception unwinds that *do* release their locks are accounted as
    ``unwind_releases`` instead of violations.

determinism lint (static)
    :mod:`repro.sanitizer.lint` — an AST pass over ``src/repro``
    forbidding nondeterminism sources in kernel/gpusim/core code.

Access kinds and intentional exemptions
---------------------------------------
The protocol itself performs lock-free reads (FIND/DELETE probe without
locks; the insert kernel's alternate-bucket probe reads a bucket it has
not locked) and lock-free single-word value updates (the upsert path,
matching the vectorized engine).  Those are *protocol-sanctioned* and
must not drown the report, so accesses carry a kind:

``write``
    A structural key-slot write.  Participates in racecheck pairing and
    the ``unlocked-write`` check.
``read``
    A locked bucket read (the insert kernel's phase-one inspection).
    Participates in read/write pairing.
``probe``
    A protocol-sanctioned lock-free read (FIND/DELETE probes, the
    alternate-bucket upsert probe).  Exempt from pairing.
``atomic``
    A word that is only ever touched atomically (lock words via
    :class:`~repro.gpusim.atomics.AtomicMemory`, single-word value
    updates).  Ordered by definition; exempt from pairing.

Kernels without a locking contract (FIND and DELETE declare
``locking=False``; DELETE's slot clear is lock-free by design — at most
one lane can match a unique key) are exempt from ``unlocked-write``.

Injected faults (:mod:`repro.faults`) are *intentional* events: an
injected ``lock.acquire`` failure never acquires (nothing to pair), an
injected ``lock.stall`` camps a phantom holder that is not a tracked
warp, and both are tallied under ``stats["injected_events"]`` rather
than reported as violations.

Zero-overhead gating follows :data:`repro.telemetry.NULL_TELEMETRY` and
:data:`repro.faults.NO_FAULTS`: every hook site checks a single
``enabled`` attribute, and the default :data:`NULL_SANITIZER` makes the
instrumented build bit-identical to an uninstrumented one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.recorder import NULL_RECORDER

__all__ = [
    "Sanitizer",
    "NULL_SANITIZER",
    "Violation",
    "ACCESS_KINDS",
    "VIOLATION_KINDS",
]

#: Every access kind the dynamic passes understand (see module docs).
ACCESS_KINDS = ("read", "write", "probe", "atomic")

#: Violation taxonomy, by pass.
VIOLATION_KINDS = {
    "racecheck": ("race", "unlocked-write"),
    "lockcheck": ("double-acquire", "double-release", "leaked-lock",
                  "lock-not-exclusive", "second-subtable-lock"),
}


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding, attributed to file/round/warp."""

    #: Which pass produced it: ``"racecheck"`` or ``"lockcheck"``.
    pass_name: str
    #: Taxonomy entry (see :data:`VIOLATION_KINDS`).
    kind: str
    #: Human-readable description of the specific event.
    message: str
    #: ``path:function`` of the instrumented code that observed it.
    site: str = ""
    #: Device round the event happened in (-1 outside any round).
    round_index: int = -1
    #: Warp id of the offender (-1 when not warp-attributable).
    warp: int = -1
    #: The other warp of a racing pair (-1 when not applicable).
    other_warp: int = -1
    #: Address space of the word involved ("bucket", "value", "lock").
    space: str = ""
    #: Word address (bucket lock id for bucket/value space).
    address: int = -1

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        where = f" at {self.site}" if self.site else ""
        when = (f" [round {self.round_index}]"
                if self.round_index >= 0 else "")
        return (f"{self.pass_name}:{self.kind}{when} "
                f"{self.message}{where}")

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name, "kind": self.kind,
            "message": self.message, "site": self.site,
            "round": self.round_index, "warp": self.warp,
            "other_warp": self.other_warp, "space": self.space,
            "address": self.address,
        }


_EMPTY_LOCKSET: frozenset = frozenset()


@dataclass
class _Access:
    """One logged storage access inside the current device round."""

    warp: int
    kind: str
    space: str
    address: int
    lockset: frozenset
    site: str = field(default="")


class Sanitizer:
    """Dynamic racecheck + lockcheck state for one audited execution.

    Attach to a table with
    :meth:`repro.core.table.DyCuckooTable.set_sanitizer`; every kernel
    launch and resize on that table is then audited.  One instance can
    observe many kernels — state that must not leak across launches is
    reset by :meth:`begin_kernel`/:meth:`end_kernel`.
    """

    #: Gate checked by every hook; the null subclass overrides to False.
    enabled = True

    #: Flight recorder tripped on every recorded violation.  A class
    #: attribute so attaching one needs no constructor change;
    #: :meth:`repro.core.table.DyCuckooTable.set_recorder` sets it on
    #: the *instance* of an enabled sanitizer, never on
    #: :data:`NULL_SANITIZER`.
    recorder = NULL_RECORDER

    def __init__(self, *, racecheck: bool = True, lockcheck: bool = True,
                 max_violations: int = 1000) -> None:
        self.racecheck = racecheck
        self.lockcheck = lockcheck
        self.max_violations = max_violations
        self.violations: list[Violation] = []
        self.stats = {
            "kernels": 0,
            "rounds": 0,
            "accesses": 0,
            "words_checked": 0,
            "lock_acquires": 0,
            "lock_releases": 0,
            "round_releases": 0,
            "unwind_releases": 0,
            "subtable_locks": 0,
            "injected_events": 0,
            "atomic_ops": 0,
            "memory_transactions": 0,
        }
        #: Current device round (-1 between kernels).
        self._round = -1
        #: Access log of the current round.
        self._log: list[_Access] = []
        #: Per-warp locksets (resource ids currently held).
        self._held: dict[int, set[int]] = {}
        #: Active kernel context, ``(name, locking_contract)`` or None.
        self._kernel: tuple[str, bool] | None = None
        #: Subtable resize locks currently held: index -> operation.
        self._subtable_locks: dict[int, str] = {}
        #: Dedup keys of already-reported violations.
        self._reported: set[tuple] = set()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True iff no violation has been recorded."""
        return not self.violations

    def report(self) -> dict:
        """Machine-readable summary of everything observed so far."""
        return {
            "ok": self.ok,
            "stats": dict(self.stats),
            "subtable_locks_held": len(self._subtable_locks),
            "violations": [v.to_dict() for v in self.violations],
        }

    def _violate(self, pass_name: str, kind: str, message: str, *,
                 site: str = "", warp: int = -1, other_warp: int = -1,
                 space: str = "", address: int = -1,
                 dedup: tuple | None = None) -> None:
        if len(self.violations) >= self.max_violations:
            return
        if dedup is not None:
            key = (pass_name, kind) + dedup
            if key in self._reported:
                return
            self._reported.add(key)
        self.violations.append(Violation(
            pass_name=pass_name, kind=kind, message=message, site=site,
            round_index=self._round, warp=warp, other_warp=other_warp,
            space=space, address=address))
        if self.recorder.enabled:
            self.recorder.trip("sanitizer_violation",
                               **self.violations[-1].to_dict())

    # ------------------------------------------------------------------
    # Kernel and round lifecycle
    # ------------------------------------------------------------------

    def begin_kernel(self, name: str, locking: bool = True) -> None:
        """Open a kernel scope.

        ``locking`` declares the kernel's contract: True means every
        structural bucket write must happen under that bucket's lock
        (the insert kernels); False exempts the kernel from the
        ``unlocked-write`` check (FIND/DELETE are lock-free by design).
        """
        self.stats["kernels"] += 1
        self._kernel = (name, locking)
        self._round = -1
        self._log.clear()
        self._held.clear()

    def end_kernel(self) -> None:
        """Close the kernel scope; flag locks that outlived the kernel."""
        self._flush_round()
        if self._kernel is None:
            return
        name, _locking = self._kernel
        if self.lockcheck:
            for warp in sorted(self._held):
                for resource in sorted(self._held[warp]):
                    self._violate(
                        "lockcheck", "leaked-lock",
                        f"warp {warp} exited kernel '{name}' still "
                        f"holding lock {resource:#x}",
                        site=f"kernel:{name}", warp=warp, space="lock",
                        address=resource)
        self._held.clear()
        self._kernel = None
        self._round = -1

    def begin_round(self, index: int) -> None:
        """Start device round ``index``; closes the previous round."""
        self._flush_round()
        self._round = index
        self.stats["rounds"] += 1

    # ------------------------------------------------------------------
    # racecheck
    # ------------------------------------------------------------------

    def record_access(self, warp: int, kind: str, space: str,
                      address: int, site: str = "") -> None:
        """Log one storage access of the current round.

        ``address`` is the word identity used for same-word pairing;
        bucket-space accesses use the bucket's lock id, so "holds the
        word's lock" is exactly ``address in lockset``.
        """
        self.stats["accesses"] += 1
        held = self._held.get(warp)
        lockset = frozenset(held) if held else _EMPTY_LOCKSET
        if self.racecheck:
            self._log.append(_Access(warp, kind, space, address,
                                     lockset, site))
            if (kind == "write" and space == "bucket"
                    and self._kernel is not None and self._kernel[1]
                    and address not in lockset):
                self._violate(
                    "racecheck", "unlocked-write",
                    f"warp {warp} wrote bucket word {address:#x} without "
                    f"holding its lock (kernel '{self._kernel[0]}' "
                    "declares a locking contract)",
                    site=site, warp=warp, space=space, address=address)

    def _flush_round(self) -> None:
        """Lockset-pair the closing round's access log."""
        log = self._log
        if not self.racecheck or len(log) < 2:
            log.clear()
            return
        by_word: dict[tuple[str, int], list[_Access]] = {}
        for acc in log:
            if acc.kind in ("read", "write"):
                by_word.setdefault((acc.space, acc.address),
                                   []).append(acc)
        self.stats["words_checked"] += len(by_word)
        for (space, address), accs in by_word.items():
            if len(accs) < 2:
                continue
            for i, a in enumerate(accs):
                for b in accs[i + 1:]:
                    if a.warp == b.warp:
                        continue
                    if a.kind != "write" and b.kind != "write":
                        continue
                    if a.lockset & b.lockset:
                        continue  # ordered by a common lock
                    self._violate(
                        "racecheck", "race",
                        f"warps {a.warp} and {b.warp} touched word "
                        f"{address:#x} in the same round "
                        f"({a.kind}/{b.kind}) with no common lock",
                        site=b.site or a.site, warp=a.warp,
                        other_warp=b.warp, space=space, address=address,
                        dedup=(space, address, self._round))
        log.clear()

    # ------------------------------------------------------------------
    # lockcheck: warp-level bucket locks
    # ------------------------------------------------------------------

    def on_lock_acquire(self, warp: int, resource: int,
                        site: str = "") -> None:
        self.stats["lock_acquires"] += 1
        if not self.lockcheck:
            self._held.setdefault(warp, set()).add(resource)
            return
        for holder, locks in self._held.items():
            if resource in locks:
                if holder == warp:
                    self._violate(
                        "lockcheck", "double-acquire",
                        f"warp {warp} re-acquired lock {resource:#x} it "
                        "already holds",
                        site=site, warp=warp, space="lock",
                        address=resource)
                else:
                    self._violate(
                        "lockcheck", "lock-not-exclusive",
                        f"warp {warp} acquired lock {resource:#x} while "
                        f"warp {holder} still holds it",
                        site=site, warp=warp, other_warp=holder,
                        space="lock", address=resource)
        self._held.setdefault(warp, set()).add(resource)

    def on_lock_release(self, warp: int, resource: int,
                        site: str = "") -> None:
        self.stats["lock_releases"] += 1
        locks = self._held.get(warp)
        if locks is not None and resource in locks:
            locks.remove(resource)
            return
        if self.lockcheck:
            self._violate(
                "lockcheck", "double-release",
                f"warp {warp} released lock {resource:#x} it does not "
                "hold",
                site=site, warp=warp, space="lock", address=resource)

    def on_unwind_release(self, warp: int, resource: int,
                          site: str = "") -> None:
        """A lock released while unwinding from an exception.

        Not a violation — it is the *fix* for the release-on-exception
        gap — but it is accounted separately so tests can assert the
        unwind actually ran.
        """
        self.stats["unwind_releases"] += 1
        locks = self._held.get(warp)
        if locks is not None:
            locks.discard(resource)

    def on_round_release(self) -> None:
        """All locks released at a round boundary (``end_round()``).

        Kernels built on :meth:`LockArbiter.end_round` release every
        lock when the round's ``atomicExch`` unlocks land; that bulk
        release pairs with every outstanding acquire by construction.
        """
        self.stats["round_releases"] += 1
        for locks in self._held.values():
            locks.clear()

    # ------------------------------------------------------------------
    # lockcheck: subtable resize locks
    # ------------------------------------------------------------------

    def on_subtable_lock(self, subtable: int, op: str,
                         site: str = "") -> None:
        self.stats["subtable_locks"] += 1
        if self.lockcheck:
            if subtable in self._subtable_locks:
                self._violate(
                    "lockcheck", "double-acquire",
                    f"{op} re-locked subtable {subtable} already locked "
                    f"by {self._subtable_locks[subtable]}",
                    site=site, space="subtable", address=subtable)
            elif self._subtable_locks:
                held = ", ".join(
                    f"{idx} ({what})"
                    for idx, what in self._subtable_locks.items())
                self._violate(
                    "lockcheck", "second-subtable-lock",
                    f"{op} locked subtable {subtable} while holding "
                    f"subtable lock(s) {held} — a resize must touch "
                    "exactly one subtable",
                    site=site, space="subtable", address=subtable)
        self._subtable_locks[subtable] = op

    def on_subtable_unlock(self, subtable: int, site: str = "") -> None:
        if subtable in self._subtable_locks:
            del self._subtable_locks[subtable]
            return
        if self.lockcheck:
            self._violate(
                "lockcheck", "double-release",
                f"released subtable lock {subtable} that is not held",
                site=site, space="subtable", address=subtable)

    # ------------------------------------------------------------------
    # Classification hooks (never violations)
    # ------------------------------------------------------------------

    def note_injected(self, site: str) -> None:
        """An injected fault fired at ``site`` — intentional, not a bug."""
        del site
        self.stats["injected_events"] += 1

    def on_atomic(self, address: int, site: str = "") -> None:
        """One atomic op executed (ordered by definition; stats only)."""
        del address, site
        self.stats["atomic_ops"] += 1

    def on_atomic_round(self, counts: dict) -> None:
        """Per-address conflict counts from an AtomicMemory round."""
        del counts

    def on_transactions(self, count: int) -> None:
        """Memory transactions observed by a MemoryTracker."""
        self.stats["memory_transactions"] += count


class _NullSanitizer(Sanitizer):
    """Disabled singleton: every hook gates on ``enabled`` and skips."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(racecheck=False, lockcheck=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SANITIZER"


#: The default, disabled sanitizer (see module docs for the pattern).
NULL_SANITIZER = _NullSanitizer()
