"""Compute-sanitizer analogue for the simulated GPU (``repro.gpusim``).

The paper's correctness story rests on two machine-checkable disciplines:

* every **bucket mutation** happens under the bucket's ``atomicCAS``
  lock (Algorithm 1), and
* a **resize** locks exactly *one* subtable (Section IV-B), so the other
  subtables stay online.

Nothing in the simulator enforced either — a kernel that forgot a
``release()`` or wrote a bucket without holding its lock would only
surface as a flaky differential-fuzz failure.  This package is the
``compute-sanitizer`` of the simulator: six passes, the dynamic ones
reporting :class:`Violation` records with file/round/warp attribution.

racecheck (dynamic)
    The kernels log every storage access — ``(warp, kind, space,
    address, held-locks, site)`` — into a per-device-round window.  At
    each round boundary the pass flags any write/write or read/write
    pair on the same word from different warps whose locksets are
    disjoint: a dynamic lockset (Eraser-style) check over the
    simulator's round-based happens-before.  Kernels additionally
    declare a *locking contract* (``begin_kernel(..., locking=True)``);
    under it, a structural bucket write whose writer does not hold that
    bucket's lock is flagged immediately (``unlocked-write``).

lockcheck (dynamic)
    Acquire/release pairing per warp across
    :class:`~repro.gpusim.kernel.LockArbiter`, the cohort engine and
    :class:`~repro.core.resize.ResizeController`: double acquire,
    double release, locks still held at kernel exit (``leaked-lock``),
    and the one-subtable resize guarantee (``second-subtable-lock``).
    Exception unwinds that *do* release their locks are accounted as
    ``unwind_releases`` instead of violations.

memcheck (dynamic)
    Every bucket/value access is decoded (``subtable = addr >> 40``,
    ``bucket = addr & MASK40``) and checked against the owning
    subtable's *live* physical extent, read lazily so incremental
    resize epochs (which grow/shrink the extent mid-stream) and
    snapshot rollbacks are handled for free (``oob-access``).  When a
    downsize epoch finalizes, :meth:`Sanitizer.on_epoch_retire` records
    the truncated source-view rows; a later access to them is the
    epoch-migration bug class DHash makes possible
    (``use-after-retire``).  The pass also audits stash occupancy
    against capacity (``stash-overflow``) and device-allocation
    lifetimes via :class:`~repro.gpusim.memory_manager.\
DeviceMemoryManager` (``double-free``, and ``alloc-leak`` at
    :meth:`Sanitizer.end_alloc_scope`).

initcheck (dynamic)
    Reads of bucket rows never written since allocation.  All real
    allocations are ``np.zeros`` — the EMPTY sentinel — so the
    per-subtable initialized bitmap is all-set by construction and the
    pass is structurally clean on real workloads; rows explicitly
    marked via :meth:`Sanitizer.mark_uninitialized` (fixtures, or any
    future non-zeroing allocator) report ``uninit-read`` until a write
    initializes them.  Marks survive resize copy-over: only rows
    truncated by an epoch retirement are cleared.

synccheck (dynamic)
    Warp-divergence discipline at the three places the simulator can
    express it: leader-election ballots whose vote mask includes an
    inactive lane (``divergent-sync``, hooked at the two engines'
    election sites), a kernel completing normally with live lanes
    (``divergent-exit``), and mismatched ``begin_kernel`` /
    ``end_kernel`` bracket pairing (``unmatched-kernel-bracket``).

determinism lint + protocol contracts (static)
    :mod:`repro.sanitizer.lint` — an AST pass over ``src/repro``
    forbidding nondeterminism sources in kernel/gpusim/core/shard/
    scenario code — and :mod:`repro.sanitizer.contracts` — an AST pass
    over ``kernels/``, ``gpusim/`` and ``core/resize.py`` proving every
    lock acquire is released on all paths, every kernel bracket pairs,
    and every structural bucket write is access-logged.

Access kinds and intentional exemptions
---------------------------------------
The protocol itself performs lock-free reads (FIND/DELETE probe without
locks; the insert kernel's alternate-bucket probe reads a bucket it has
not locked) and lock-free single-word value updates (the upsert path,
matching the vectorized engine).  Those are *protocol-sanctioned* and
must not drown the report, so accesses carry a kind:

``write``
    A structural key-slot write.  Participates in racecheck pairing and
    the ``unlocked-write`` check.
``read``
    A locked bucket read (the insert kernel's phase-one inspection).
    Participates in read/write pairing.
``probe``
    A protocol-sanctioned lock-free read (FIND/DELETE probes, the
    alternate-bucket upsert probe).  Exempt from pairing.
``atomic``
    A word that is only ever touched atomically (lock words via
    :class:`~repro.gpusim.atomics.AtomicMemory`, single-word value
    updates).  Ordered by definition; exempt from pairing.

All four kinds participate in the memcheck extent decode and the
initcheck bitmap (any kind of read can observe garbage; any write
initializes).

Kernels without a locking contract (FIND and DELETE declare
``locking=False``; DELETE's slot clear is lock-free by design — at most
one lane can match a unique key) are exempt from ``unlocked-write``.

Injected faults (:mod:`repro.faults`) are *intentional* events: an
injected ``lock.acquire`` failure never acquires (nothing to pair), an
injected ``lock.stall`` camps a phantom holder that is not a tracked
warp, and both are tallied under ``stats["injected_events"]`` rather
than reported as violations.

Zero-overhead gating follows :data:`repro.telemetry.NULL_TELEMETRY` and
:data:`repro.faults.NO_FAULTS`: every hook site checks a single
``enabled`` attribute, and the default :data:`NULL_SANITIZER` makes the
instrumented build bit-identical to an uninstrumented one — including
across migration-epoch (mid-resize) paths on both engines, which is
pinned by a regression test.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.telemetry.recorder import NULL_RECORDER

__all__ = [
    "Sanitizer",
    "NULL_SANITIZER",
    "Violation",
    "ACCESS_KINDS",
    "VIOLATION_KINDS",
]

#: Every access kind the dynamic passes understand (see module docs).
ACCESS_KINDS = ("read", "write", "probe", "atomic")

#: Violation taxonomy, by pass.  The static passes (determinism lint,
#: protocol contracts) report :class:`~repro.sanitizer.lint.LintFinding`
#: / :class:`~repro.sanitizer.contracts.ContractFinding` instead of
#: :class:`Violation` and are tabulated in their own modules.
VIOLATION_KINDS = {
    "racecheck": ("race", "unlocked-write"),
    "lockcheck": ("double-acquire", "double-release", "leaked-lock",
                  "lock-not-exclusive", "second-subtable-lock"),
    "memcheck": ("oob-access", "use-after-retire", "stash-overflow",
                 "alloc-leak", "double-free"),
    "initcheck": ("uninit-read",),
    "synccheck": ("divergent-sync", "divergent-exit",
                  "unmatched-kernel-bracket"),
}

#: Bucket/value addresses pack ``(subtable << 40) | bucket`` — the same
#: encoding :meth:`repro.kernels.insert._InsertWarp._lock_id` uses, so
#: "holds the word's lock" is an address-set membership test and the
#: memcheck decode is a shift and a mask.
_ADDR_BITS = 40
_ADDR_MASK = (1 << _ADDR_BITS) - 1


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding, attributed to file/round/warp."""

    #: Which pass produced it (a key of :data:`VIOLATION_KINDS`).
    pass_name: str
    #: Taxonomy entry (see :data:`VIOLATION_KINDS`).
    kind: str
    #: Human-readable description of the specific event.
    message: str
    #: ``path:function`` of the instrumented code that observed it.
    site: str = ""
    #: Device round the event happened in (-1 outside any round).
    round_index: int = -1
    #: Warp id of the offender (-1 when not warp-attributable).
    warp: int = -1
    #: The other warp of a racing pair (-1 when not applicable).
    other_warp: int = -1
    #: Address space of the word involved ("bucket", "value", "lock").
    space: str = ""
    #: Word address (bucket lock id for bucket/value space).
    address: int = -1

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        where = f" at {self.site}" if self.site else ""
        when = (f" [round {self.round_index}]"
                if self.round_index >= 0 else "")
        return (f"{self.pass_name}:{self.kind}{when} "
                f"{self.message}{where}")

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name, "kind": self.kind,
            "message": self.message, "site": self.site,
            "round": self.round_index, "warp": self.warp,
            "other_warp": self.other_warp, "space": self.space,
            "address": self.address,
        }


_EMPTY_LOCKSET: frozenset = frozenset()


@dataclass
class _Access:
    """One logged storage access inside the current device round."""

    warp: int
    kind: str
    space: str
    address: int
    lockset: frozenset
    site: str = field(default="")


class Sanitizer:
    """Dynamic racecheck/lockcheck/memcheck/initcheck/synccheck state.

    Attach to a table with
    :meth:`repro.core.table.DyCuckooTable.set_sanitizer`; every kernel
    launch and resize on that table is then audited.  One instance can
    observe many kernels (and many tables — the fault audit shares one
    across stages): per-launch state is reset by
    :meth:`begin_kernel`/:meth:`end_kernel`, while per-table state
    (retired epoch extents, initcheck bitmaps) is keyed weakly by the
    table object passed to :meth:`begin_kernel`.
    """

    #: Gate checked by every hook; the null subclass overrides to False.
    enabled = True

    #: Flight recorder tripped on every recorded violation.  A class
    #: attribute so attaching one needs no constructor change;
    #: :meth:`repro.core.table.DyCuckooTable.set_recorder` sets it on
    #: the *instance* of an enabled sanitizer, never on
    #: :data:`NULL_SANITIZER`.
    recorder: Any = NULL_RECORDER

    def __init__(self, *, racecheck: bool = True, lockcheck: bool = True,
                 memcheck: bool = True, initcheck: bool = True,
                 synccheck: bool = True,
                 max_violations: int = 1000) -> None:
        self.racecheck = racecheck
        self.lockcheck = lockcheck
        self.memcheck = memcheck
        self.initcheck = initcheck
        self.synccheck = synccheck
        self.max_violations = max_violations
        self.violations: list[Violation] = []
        self.stats: dict[str, int] = {
            "kernels": 0,
            "rounds": 0,
            "accesses": 0,
            "words_checked": 0,
            "lock_acquires": 0,
            "lock_releases": 0,
            "round_releases": 0,
            "unwind_releases": 0,
            "subtable_locks": 0,
            "injected_events": 0,
            "atomic_ops": 0,
            "memory_transactions": 0,
            "extent_checks": 0,
            "init_checks": 0,
            "votes_checked": 0,
            "kernel_exits": 0,
            "stash_writes": 0,
            "allocs": 0,
            "frees": 0,
            "retired_epochs": 0,
        }
        #: Current device round (-1 between kernels).
        self._round = -1
        #: Access log of the current round.
        self._log: list[_Access] = []
        #: Per-warp locksets (resource ids currently held).
        self._held: dict[int, set[int]] = {}
        #: Active kernel context, ``(name, locking_contract)`` or None.
        self._kernel: tuple[str, bool] | None = None
        #: The table whose storage the active kernel addresses (memcheck
        #: geometry source); None for table-less launches (fixtures).
        self._table: Any = None
        #: Subtable resize locks currently held: index -> operation.
        self._subtable_locks: dict[int, str] = {}
        #: Dedup keys of already-reported violations.
        self._reported: set[tuple] = set()
        #: Per-table retired source-view extents: table -> {subtable:
        #: physical rows *before* the downsize epoch finalized}.
        self._retired: weakref.WeakKeyDictionary[Any, dict[int, int]] = (
            weakref.WeakKeyDictionary())
        #: Per-table initcheck bitmaps, sparse form: table ->
        #: {subtable: set of *uninitialized* bucket rows}.  Real
        #: allocations zero-fill (EMPTY sentinel), so this is empty
        #: unless :meth:`mark_uninitialized` seeded it.
        self._uninit: weakref.WeakKeyDictionary[
            Any, dict[int, set[int]]] = weakref.WeakKeyDictionary()
        #: Device allocations currently live: client -> bytes.
        self._live_allocs: dict[str, int] = {}
        #: Clients allocated inside the open alloc scope (None = no
        #: scope open); leak accounting at :meth:`end_alloc_scope`.
        self._alloc_scope: set[str] | None = None

    def __getstate__(self) -> dict[str, Any]:
        """The process-pool shard executor ships tables (and their
        attached sanitizer) by pickle.  The per-table attribution maps
        are WeakKeyDictionaries keyed by object identity — neither the
        weak callbacks nor the identities survive a process hop, so
        they cross empty and are rebuilt by ``__setstate__``."""
        state = self.__dict__.copy()
        state["_retired"] = None
        state["_uninit"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._retired = weakref.WeakKeyDictionary()
        self._uninit = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True iff no violation has been recorded."""
        return not self.violations

    def report(self) -> dict:
        """Machine-readable summary of everything observed so far."""
        return {
            "ok": self.ok,
            "stats": dict(self.stats),
            "subtable_locks_held": len(self._subtable_locks),
            "violations": [v.to_dict() for v in self.violations],
        }

    def _violate(self, pass_name: str, kind: str, message: str, *,
                 site: str = "", warp: int = -1, other_warp: int = -1,
                 space: str = "", address: int = -1,
                 dedup: tuple | None = None) -> None:
        if len(self.violations) >= self.max_violations:
            return
        if dedup is not None:
            key = (pass_name, kind) + dedup
            if key in self._reported:
                return
            self._reported.add(key)
        self.violations.append(Violation(
            pass_name=pass_name, kind=kind, message=message, site=site,
            round_index=self._round, warp=warp, other_warp=other_warp,
            space=space, address=address))
        if self.recorder.enabled:
            self.recorder.trip("sanitizer_violation",
                               **self.violations[-1].to_dict())

    # ------------------------------------------------------------------
    # Kernel and round lifecycle
    # ------------------------------------------------------------------

    def begin_kernel(self, name: str, locking: bool = True,
                     table: Any = None) -> None:
        """Open a kernel scope.

        ``locking`` declares the kernel's contract: True means every
        structural bucket write must happen under that bucket's lock
        (the insert kernels); False exempts the kernel from the
        ``unlocked-write`` check (FIND/DELETE are lock-free by design).

        ``table`` is the table whose storage the kernel addresses; when
        given, memcheck validates every decoded bucket/value access
        against that table's live subtable extents (and initcheck
        against its bitmap).  Fixtures that fabricate raw addresses
        omit it and skip extent checking.
        """
        if self.synccheck and self._kernel is not None:
            self._violate(
                "synccheck", "unmatched-kernel-bracket",
                f"begin_kernel('{name}') while kernel "
                f"'{self._kernel[0]}' is still open — a previous "
                "end_kernel() is missing",
                site=f"kernel:{name}")
        self.stats["kernels"] += 1
        self._kernel = (name, locking)
        self._table = table
        self._round = -1
        self._log.clear()
        self._held.clear()

    def end_kernel(self) -> None:
        """Close the kernel scope; flag locks that outlived the kernel."""
        self._flush_round()
        if self._kernel is None:
            if self.synccheck:
                self._violate(
                    "synccheck", "unmatched-kernel-bracket",
                    "end_kernel() with no kernel open — a begin_kernel()"
                    " is missing or the bracket closed twice",
                    site="kernel:<none>")
            return
        name, _locking = self._kernel
        if self.lockcheck:
            for warp in sorted(self._held):
                for resource in sorted(self._held[warp]):
                    self._violate(
                        "lockcheck", "leaked-lock",
                        f"warp {warp} exited kernel '{name}' still "
                        f"holding lock {resource:#x}",
                        site=f"kernel:{name}", warp=warp, space="lock",
                        address=resource)
        self._held.clear()
        self._kernel = None
        self._table = None
        self._round = -1

    def begin_round(self, index: int) -> None:
        """Start device round ``index``; closes the previous round."""
        self._flush_round()
        self._round = index
        self.stats["rounds"] += 1

    # ------------------------------------------------------------------
    # racecheck + memcheck + initcheck access stream
    # ------------------------------------------------------------------

    def record_access(self, warp: int, kind: str, space: str,
                      address: int, site: str = "") -> None:
        """Log one storage access of the current round.

        ``address`` is the word identity used for same-word pairing;
        bucket-space accesses use the bucket's lock id, so "holds the
        word's lock" is exactly ``address in lockset`` and the memcheck
        decode recovers ``(subtable, bucket)`` from the same word.
        """
        self.stats["accesses"] += 1
        held = self._held.get(warp)
        lockset = frozenset(held) if held else _EMPTY_LOCKSET
        if self.racecheck:
            self._log.append(_Access(warp, kind, space, address,
                                     lockset, site))
            if (kind == "write" and space == "bucket"
                    and self._kernel is not None and self._kernel[1]
                    and address not in lockset):
                self._violate(
                    "racecheck", "unlocked-write",
                    f"warp {warp} wrote bucket word {address:#x} without "
                    f"holding its lock (kernel '{self._kernel[0]}' "
                    "declares a locking contract)",
                    site=site, warp=warp, space=space, address=address)
        if ((self.memcheck or self.initcheck)
                and self._table is not None
                and space in ("bucket", "value")):
            self._check_word(warp, kind, space, address, site)

    def _check_word(self, warp: int, kind: str, space: str,
                    address: int, site: str) -> None:
        """memcheck extent decode + initcheck bitmap for one word."""
        self.stats["extent_checks"] += 1
        table = self._table
        subtable = address >> _ADDR_BITS
        bucket = address & _ADDR_MASK
        subtables = table.subtables
        if not 0 <= subtable < len(subtables):
            if self.memcheck:
                self._violate(
                    "memcheck", "oob-access",
                    f"warp {warp} {kind} addressed subtable {subtable} "
                    f"but the table has {len(subtables)} subtables",
                    site=site, warp=warp, space=space, address=address,
                    dedup=(space, address))
            return
        rows = int(subtables[subtable].keys.shape[0])
        if bucket >= rows:
            if not self.memcheck:
                return
            retired = self._retired.get(table)
            limit = retired.get(subtable, 0) if retired else 0
            if bucket < limit:
                self._violate(
                    "memcheck", "use-after-retire",
                    f"warp {warp} {kind} bucket {bucket} of subtable "
                    f"{subtable} — retired with its downsize epoch's "
                    f"source view (live extent {rows}, pre-retire "
                    f"extent {limit})",
                    site=site, warp=warp, space=space, address=address,
                    dedup=(space, address))
            else:
                self._violate(
                    "memcheck", "oob-access",
                    f"warp {warp} {kind} bucket {bucket} of subtable "
                    f"{subtable}, beyond its live extent of {rows} "
                    "buckets",
                    site=site, warp=warp, space=space, address=address,
                    dedup=(space, address))
            return
        if self.initcheck and self._uninit:
            marks = self._uninit.get(table)
            rowset = marks.get(subtable) if marks else None
            if rowset:
                self.stats["init_checks"] += 1
                if kind == "write":
                    rowset.discard(bucket)
                elif bucket in rowset:
                    self._violate(
                        "initcheck", "uninit-read",
                        f"warp {warp} {kind} bucket {bucket} of "
                        f"subtable {subtable} never written since "
                        "allocation (EMPTY-sentinel discipline)",
                        site=site, warp=warp, space=space,
                        address=address, dedup=(space, address))

    def _flush_round(self) -> None:
        """Lockset-pair the closing round's access log."""
        log = self._log
        if not self.racecheck or len(log) < 2:
            log.clear()
            return
        by_word: dict[tuple[str, int], list[_Access]] = {}
        for acc in log:
            if acc.kind in ("read", "write"):
                by_word.setdefault((acc.space, acc.address),
                                   []).append(acc)
        self.stats["words_checked"] += len(by_word)
        for (space, address), accs in by_word.items():
            if len(accs) < 2:
                continue
            for i, a in enumerate(accs):
                for b in accs[i + 1:]:
                    if a.warp == b.warp:
                        continue
                    if a.kind != "write" and b.kind != "write":
                        continue
                    if a.lockset & b.lockset:
                        continue  # ordered by a common lock
                    self._violate(
                        "racecheck", "race",
                        f"warps {a.warp} and {b.warp} touched word "
                        f"{address:#x} in the same round "
                        f"({a.kind}/{b.kind}) with no common lock",
                        site=b.site or a.site, warp=a.warp,
                        other_warp=b.warp, space=space, address=address,
                        dedup=(space, address, self._round))
        log.clear()

    # ------------------------------------------------------------------
    # lockcheck: warp-level bucket locks
    # ------------------------------------------------------------------

    def on_lock_acquire(self, warp: int, resource: int,
                        site: str = "") -> None:
        self.stats["lock_acquires"] += 1
        if not self.lockcheck:
            self._held.setdefault(warp, set()).add(resource)
            return
        for holder, locks in self._held.items():
            if resource in locks:
                if holder == warp:
                    self._violate(
                        "lockcheck", "double-acquire",
                        f"warp {warp} re-acquired lock {resource:#x} it "
                        "already holds",
                        site=site, warp=warp, space="lock",
                        address=resource)
                else:
                    self._violate(
                        "lockcheck", "lock-not-exclusive",
                        f"warp {warp} acquired lock {resource:#x} while "
                        f"warp {holder} still holds it",
                        site=site, warp=warp, other_warp=holder,
                        space="lock", address=resource)
        self._held.setdefault(warp, set()).add(resource)

    def on_lock_release(self, warp: int, resource: int,
                        site: str = "") -> None:
        self.stats["lock_releases"] += 1
        locks = self._held.get(warp)
        if locks is not None and resource in locks:
            locks.remove(resource)
            return
        if self.lockcheck:
            self._violate(
                "lockcheck", "double-release",
                f"warp {warp} released lock {resource:#x} it does not "
                "hold",
                site=site, warp=warp, space="lock", address=resource)

    def on_unwind_release(self, warp: int, resource: int,
                          site: str = "") -> None:
        """A lock released while unwinding from an exception.

        Not a violation — it is the *fix* for the release-on-exception
        gap — but it is accounted separately so tests can assert the
        unwind actually ran.
        """
        self.stats["unwind_releases"] += 1
        locks = self._held.get(warp)
        if locks is not None:
            locks.discard(resource)

    def on_round_release(self) -> None:
        """All locks released at a round boundary (``end_round()``).

        Kernels built on :meth:`LockArbiter.end_round` release every
        lock when the round's ``atomicExch`` unlocks land; that bulk
        release pairs with every outstanding acquire by construction.
        """
        self.stats["round_releases"] += 1
        for locks in self._held.values():
            locks.clear()

    # ------------------------------------------------------------------
    # lockcheck: subtable resize locks
    # ------------------------------------------------------------------

    def on_subtable_lock(self, subtable: int, op: str,
                         site: str = "") -> None:
        self.stats["subtable_locks"] += 1
        if self.lockcheck:
            if subtable in self._subtable_locks:
                self._violate(
                    "lockcheck", "double-acquire",
                    f"{op} re-locked subtable {subtable} already locked "
                    f"by {self._subtable_locks[subtable]}",
                    site=site, space="subtable", address=subtable)
            elif self._subtable_locks:
                held = ", ".join(
                    f"{idx} ({what})"
                    for idx, what in self._subtable_locks.items())
                self._violate(
                    "lockcheck", "second-subtable-lock",
                    f"{op} locked subtable {subtable} while holding "
                    f"subtable lock(s) {held} — a resize must touch "
                    "exactly one subtable",
                    site=site, space="subtable", address=subtable)
        self._subtable_locks[subtable] = op

    def on_subtable_unlock(self, subtable: int, site: str = "") -> None:
        if subtable in self._subtable_locks:
            del self._subtable_locks[subtable]
            return
        if self.lockcheck:
            self._violate(
                "lockcheck", "double-release",
                f"released subtable lock {subtable} that is not held",
                site=site, space="subtable", address=subtable)

    # ------------------------------------------------------------------
    # memcheck: epoch retirement, stash and device allocations
    # ------------------------------------------------------------------

    def on_epoch_retire(self, table: Any, subtable: int, old_rows: int,
                        new_rows: int, site: str = "") -> None:
        """A downsize epoch finalized: rows ``[new_rows, old_rows)`` of
        ``subtable`` — the epoch's source view — were just truncated.

        Later accesses to them are ``use-after-retire`` rather than a
        bare ``oob-access``, which is the attribution that matters when
        a stale dual-view probe survives :meth:`finish_migration`.
        """
        self.stats["retired_epochs"] += 1
        if not (self.memcheck or self.initcheck):
            return
        extents = self._retired.get(table)
        if extents is None:
            extents = {}
            self._retired[table] = extents
        extents[subtable] = max(extents.get(subtable, 0), int(old_rows))
        marks = self._uninit.get(table)
        if marks and subtable in marks:
            # Truncated rows no longer exist; keep only surviving marks
            # (the bitmap "survives resize copy-over" for live rows).
            marks[subtable] = {b for b in marks[subtable]
                               if b < int(new_rows)}

    def mark_uninitialized(self, table: Any, subtable: int,
                           buckets: Iterable[int]) -> None:
        """Seed initcheck's bitmap: ``buckets`` of ``subtable`` hold
        garbage (allocated without the EMPTY-sentinel zero fill).

        Real allocations zero-fill, so production code never calls
        this; fixtures (and any future raw-``np.empty`` allocator)
        do.  A structural write clears a row's mark.
        """
        marks = self._uninit.get(table)
        if marks is None:
            marks = {}
            self._uninit[table] = marks
        marks.setdefault(subtable, set()).update(
            int(b) for b in buckets)

    def on_stash_write(self, occupancy: int, capacity: int,
                       site: str = "") -> None:
        """The stash absorbed a pair; ``occupancy`` is its new size."""
        self.stats["stash_writes"] += 1
        if self.memcheck and occupancy > capacity:
            self._violate(
                "memcheck", "stash-overflow",
                f"stash holds {occupancy} pairs, over its capacity of "
                f"{capacity} — an over-capacity write corrupts the "
                "spill contract",
                site=site, space="stash", address=occupancy,
                dedup=("stash", capacity))

    def on_alloc(self, client: str, num_bytes: int,
                 site: str = "") -> None:
        """A device allocation was created or resized for ``client``."""
        self.stats["allocs"] += 1
        self._live_allocs[client] = int(num_bytes)
        if self._alloc_scope is not None:
            self._alloc_scope.add(client)

    def on_free(self, client: str, known: bool = True,
                site: str = "") -> None:
        """``client``'s device allocation was freed.

        ``known`` is whether the memory manager actually held a record
        for it; freeing an unknown (never-allocated or already-freed)
        client is the classic double-free.
        """
        self.stats["frees"] += 1
        was_live = self._live_allocs.pop(client, None) is not None
        if self._alloc_scope is not None:
            self._alloc_scope.discard(client)
        if self.memcheck and not known and not was_live:
            self._violate(
                "memcheck", "double-free",
                f"freed device allocation '{client}' that is not live "
                "(double free or never allocated)",
                site=site, space="device")

    def begin_alloc_scope(self) -> None:
        """Start leak accounting: allocations made from here must be
        freed by :meth:`end_alloc_scope` (kernel-exit discipline)."""
        self._alloc_scope = set()

    def end_alloc_scope(self, site: str = "") -> None:
        """Close the alloc scope; surviving allocations are leaks."""
        scope = self._alloc_scope
        self._alloc_scope = None
        if not scope or not self.memcheck:
            return
        for client in sorted(scope):
            if client in self._live_allocs:
                self._violate(
                    "memcheck", "alloc-leak",
                    f"device allocation '{client}' "
                    f"({self._live_allocs[client]} B) outlived its "
                    "scope without a free()",
                    site=site, space="device")

    # ------------------------------------------------------------------
    # synccheck
    # ------------------------------------------------------------------

    def on_vote(self, warp: int, vote_mask: int, active_mask: int,
                site: str = "") -> None:
        """A leader-election ballot completed on ``warp``.

        Hooked only at election sites (``_InsertWarp._elect`` and the
        cohort's ``_phase_one`` rotate) — slot-match ballots legally
        involve lanes whose predicate is False, so they are exempt.
        A vote bit from a lane outside the active mask means an exited
        lane participated in ``__ballot_sync``: undefined behaviour on
        real hardware.
        """
        self.stats["votes_checked"] += 1
        if self.synccheck and vote_mask & ~active_mask:
            rogue = vote_mask & ~active_mask
            self._violate(
                "synccheck", "divergent-sync",
                f"warp {warp} ballot includes inactive lane(s) "
                f"{rogue:#x} outside the active mask "
                f"{active_mask:#x}",
                site=site, warp=warp, space="warp", address=rogue,
                dedup=(warp, site))

    def on_kernel_exit(self, live_lanes: int, site: str = "") -> None:
        """The kernel's scheduler completed normally.

        ``live_lanes`` counts lanes still active at that point — zero
        by construction on both engines (the round loop runs until no
        warp has work); a nonzero count means the kernel exited with
        divergent lanes still resident.
        """
        self.stats["kernel_exits"] += 1
        if self.synccheck and live_lanes > 0:
            name = self._kernel[0] if self._kernel else "<none>"
            self._violate(
                "synccheck", "divergent-exit",
                f"kernel '{name}' exited normally with {live_lanes} "
                "live lane(s) still resident",
                site=site or f"kernel:{name}", space="warp",
                address=live_lanes)

    # ------------------------------------------------------------------
    # Classification hooks (never violations)
    # ------------------------------------------------------------------

    def note_injected(self, site: str) -> None:
        """An injected fault fired at ``site`` — intentional, not a bug."""
        del site
        self.stats["injected_events"] += 1

    def on_atomic(self, address: int, site: str = "") -> None:
        """One atomic op executed (ordered by definition; stats only)."""
        del address, site
        self.stats["atomic_ops"] += 1

    def on_atomic_round(self, counts: dict) -> None:
        """Per-address conflict counts from an AtomicMemory round."""
        del counts

    def on_transactions(self, count: int) -> None:
        """Memory transactions observed by a MemoryTracker."""
        self.stats["memory_transactions"] += count


class _NullSanitizer(Sanitizer):
    """Disabled singleton: every hook gates on ``enabled`` and skips."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(racecheck=False, lockcheck=False,
                         memcheck=False, initcheck=False,
                         synccheck=False)

    def __reduce__(self) -> tuple:
        # Unpickle back to the module singleton so identity gates
        # (``table.sanitizer is NULL_SANITIZER``) survive the pool's
        # pickle round-trip.
        return (_resolve_null_sanitizer, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SANITIZER"


#: The default, disabled sanitizer (see module docs for the pattern).
def _resolve_null_sanitizer() -> "_NullSanitizer":
    """Pickle target for :data:`NULL_SANITIZER` (see ``__reduce__``)."""
    return NULL_SANITIZER


NULL_SANITIZER = _NullSanitizer()
