"""DyCuckoo - dynamic hash tables on (simulated) GPUs.

A from-scratch Python reproduction of *"Dynamic Hash Tables on GPUs"*
(Li, Zhu, Lyu, Huang, Sun - ICDE 2021).  The package provides:

* :mod:`repro.core` - the DyCuckoo two-layer dynamic cuckoo hash table,
* :mod:`repro.gpusim` - a SIMT execution and cost model standing in for
  the paper's GTX 1080,
* :mod:`repro.kernels` - warp-centric kernels (voter insert, two-lookup
  find/delete, resize) written against the simulator,
* :mod:`repro.baselines` - MegaKV, CUDPP-style cuckoo, and SlabHash
  reimplementations used as comparison points,
* :mod:`repro.workloads` - surrogate dataset generators and the dynamic
  batch protocol of the paper's evaluation,
* :mod:`repro.bench` - the measurement harness regenerating every table
  and figure,
* :mod:`repro.telemetry` - structured tracing, metric time series, and
  Chrome-trace/Prometheus export for any table run,
* :mod:`repro.faults` - deterministic, replayable fault injection
  (atomic failure storms, lock-holder stalls, allocation failures,
  resize aborts) with a bounded stash as the recovery path,
* :mod:`repro.shard` - a sharded front-end partitioning the key space
  over independent DyCuckoo tables, with an SM-group cost model for the
  simulated parallel speedup.
"""

from repro.core import (DyCuckooConfig, DyCuckooTable, MemoryFootprint,
                        PAPER_PARAMETERS, TableStats)
from repro.errors import (CapacityError, InvalidConfigError, InvalidKeyError,
                          ReproError, ResizeError, StashOverflowError,
                          UnsupportedOperationError)
from repro.faults import NO_FAULTS, FaultPlan, default_chaos_plan
from repro.shard import ShardedDyCuckoo
from repro.telemetry import NULL_TELEMETRY, Telemetry

__version__ = "1.0.0"

__all__ = [
    "DyCuckooTable",
    "ShardedDyCuckoo",
    "DyCuckooConfig",
    "PAPER_PARAMETERS",
    "MemoryFootprint",
    "TableStats",
    "ReproError",
    "InvalidKeyError",
    "InvalidConfigError",
    "CapacityError",
    "StashOverflowError",
    "ResizeError",
    "UnsupportedOperationError",
    "Telemetry",
    "NULL_TELEMETRY",
    "FaultPlan",
    "NO_FAULTS",
    "default_chaos_plan",
    "__version__",
]
