"""Warp-level primitives for the lane-level SIMT interpreter.

CUDA kernels in the paper coordinate through three intra-warp
primitives: ``__ballot`` (which lanes satisfy a predicate), ``__shfl``
(broadcast a register from one lane to the whole warp) and implicit
lockstep execution.  :class:`WarpContext` reproduces them over numpy
lane vectors, so kernels in :mod:`repro.kernels` can be written as a
near-literal transcription of the paper's Algorithm 1 and validated
against the vectorized fast path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfigError


class WarpContext:
    """State and primitives of one warp (default width 32).

    A *lane vector* is a length-``width`` numpy array holding one value
    per lane.  ``active`` masks lanes that still have work; inactive
    lanes participate in votes with a False predicate, exactly like
    exited CUDA threads.
    """

    def __init__(self, warp_id: int, width: int = 32) -> None:
        if width < 1:
            raise InvalidConfigError(f"warp width must be >= 1, got {width}")
        self.warp_id = warp_id
        self.width = width
        self.lanes = np.arange(width, dtype=np.int64)
        self.active = np.zeros(width, dtype=bool)
        #: Reusable lane-predicate buffer for striped bucket scans.  A
        #: warp ballots one stripe at a time; allocating a fresh
        #: predicate vector per stripe dominated the kernels' profile,
        #: so scans overwrite this scratch instead (callers must not
        #: hold a reference across warp steps).
        self.scratch_pred = np.zeros(width, dtype=bool)
        #: Count of executed warp-synchronous steps (for profiling).
        self.steps = 0

    def ballot(self, predicate: np.ndarray) -> int:
        """``__ballot``: bitmask of lanes whose predicate is true."""
        predicate = np.asarray(predicate, dtype=bool)
        if predicate.shape != (self.width,):
            raise InvalidConfigError(
                f"ballot predicate must have shape ({self.width},), "
                f"got {predicate.shape}"
            )
        bits = 0
        for lane in np.flatnonzero(predicate):
            bits |= 1 << int(lane)
        return bits

    @staticmethod
    def ffs(mask: int) -> int:
        """First set lane of a ballot mask, or -1 when empty.

        Mirrors CUDA's ``__ffs(mask) - 1`` idiom used to elect a warp
        leader from a ballot.
        """
        if mask == 0:
            return -1
        return (mask & -mask).bit_length() - 1

    def shfl(self, values: np.ndarray, src_lane: int):
        """``__shfl``: broadcast lane ``src_lane``'s register to the warp."""
        values = np.asarray(values)
        if values.shape[0] != self.width:
            raise InvalidConfigError(
                f"shfl values must have {self.width} lanes, got {values.shape}"
            )
        if not 0 <= src_lane < self.width:
            raise InvalidConfigError(f"shfl source lane out of range: {src_lane}")
        return values[src_lane]

    def any_active(self) -> bool:
        """True while at least one lane still has work."""
        return bool(self.active.any())

    def elect_leader(self) -> int:
        """Vote among active lanes; return the winning lane or -1.

        This is lines 1-5 of Algorithm 1: ``l' = ballot(active == 1)``
        followed by taking the first set lane.
        """
        self.steps += 1
        return self.ffs(self.ballot(self.active))
