"""Device-memory access model: coalescing analysis and transaction counts.

GPU global memory is accessed in cache-line granules (128 bytes on the
paper's GTX 1080).  When a warp's 32 lanes read consecutive addresses the
hardware serves them with a single transaction ("coalesced"); scattered
addresses cost one transaction per distinct line touched.  The paper's
bucket layout (Figure 2) exists precisely to turn every bucket probe into
one coalesced transaction, while chaining baselines pay one transaction
per chain hop.

:class:`MemoryTracker` counts transactions and bytes;
:func:`coalesced_transactions` computes, for a warp's address vector, how
many transactions the access requires — this is used by the lane-level
interpreter and by tests that verify the bucket layout really coalesces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.device import DeviceSpec, GTX_1080


def coalesced_transactions(addresses: np.ndarray,
                           access_bytes: int = 4,
                           line_bytes: int = 128) -> int:
    """Number of memory transactions for one warp-wide access.

    ``addresses`` holds the byte address touched by each active lane.
    The hardware coalescer issues one transaction per distinct
    ``line_bytes``-aligned segment covered by any lane's
    ``access_bytes``-wide access.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if len(addresses) == 0:
        return 0
    first_line = addresses // line_bytes
    last_line = (addresses + access_bytes - 1) // line_bytes
    lines = np.unique(np.concatenate([first_line, last_line]))
    return int(len(lines))


@dataclass
class MemoryTracker:
    """Accumulates transaction and byte counts for a simulated kernel."""

    device: DeviceSpec = field(default_factory=lambda: GTX_1080)
    transactions: int = 0
    bytes_moved: int = 0
    #: Optional :class:`repro.sanitizer.Sanitizer` receiving per-call
    #: transaction accounting (None, the default, costs one check).
    sanitizer: object = None

    def access(self, addresses: np.ndarray, access_bytes: int = 4) -> int:
        """Record one warp-wide access; returns transactions issued."""
        tx = coalesced_transactions(addresses, access_bytes,
                                    self.device.cache_line_bytes)
        self.transactions += tx
        self.bytes_moved += tx * self.device.cache_line_bytes
        if self.sanitizer is not None and self.sanitizer.enabled:
            self.sanitizer.on_transactions(tx)
        return tx

    def bucket_access(self, count: int = 1) -> None:
        """Record ``count`` fully-coalesced bucket transactions."""
        self.transactions += count
        self.bytes_moved += count * self.device.cache_line_bytes
        if self.sanitizer is not None and self.sanitizer.enabled:
            self.sanitizer.on_transactions(count)

    def random_access(self, count: int = 1, access_bytes: int = 16) -> None:
        """Record ``count`` isolated accesses (chain hops, slab pointers).

        Each still occupies a full cache line of bandwidth even though
        only ``access_bytes`` are useful — that waste is exactly why the
        paper's bucket layout wins over chaining.
        """
        del access_bytes  # the line is fetched regardless
        self.transactions += count
        self.bytes_moved += count * self.device.cache_line_bytes
        if self.sanitizer is not None and self.sanitizer.enabled:
            self.sanitizer.on_transactions(count)

    @property
    def seconds(self) -> float:
        """Time to move the recorded bytes at sustained bandwidth."""
        return self.bytes_moved / self.device.effective_bandwidth_bytes_per_s

    def reset(self) -> None:
        self.transactions = 0
        self.bytes_moved = 0
