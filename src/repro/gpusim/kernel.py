"""Kernel launch abstraction and round-synchronous warp scheduling.

A GPU executes a kernel as a grid of warps; warps progress independently
but contend on shared structures.  The simulator models a kernel as a
collection of *warp programs* stepped in **device rounds**: in each round
every unfinished warp executes one step.  Contended resources (bucket
locks) are arbitrated per round: all requests are collected first, then
one winner per resource is granted — a legal and adversarial
interleaving that exercises the same races real hardware does.

:class:`Occupancy` models how many warps are simultaneously resident,
which the cost model uses to convert per-warp work into wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import InvalidConfigError
from repro.faults import NO_FAULTS
from repro.gpusim.device import DeviceSpec, GTX_1080
from repro.sanitizer import NULL_SANITIZER
from repro.telemetry.profiler import NULL_PROFILER
from repro.telemetry.tracer import NULL_TRACER

_SITE_ACQUIRE = "repro/gpusim/kernel.py:LockArbiter.try_acquire"
_SITE_RELEASE = "repro/gpusim/kernel.py:LockArbiter.release"


@dataclass(frozen=True)
class Occupancy:
    """Resident-warp calculation for a kernel launch.

    ``registers_per_thread`` and ``shared_bytes_per_block`` limit how
    many warps fit on an SM (the "Control Resource Usage" guideline of
    Section II-B).  The defaults describe the paper's lean hash kernels,
    which are memory-bound and run at high occupancy.
    """

    device: DeviceSpec = GTX_1080
    registers_per_thread: int = 32
    shared_bytes_per_block: int = 0
    threads_per_block: int = 256

    #: Pascal per-SM register file (32K 32-bit registers * 2 banks).
    REGISTERS_PER_SM: int = 65536
    #: Pascal per-SM shared memory.
    SHARED_BYTES_PER_SM: int = 98304

    def warps_per_sm(self) -> int:
        """Resident warps per SM under register/shared/architectural limits."""
        if self.threads_per_block % self.device.warp_size:
            raise InvalidConfigError(
                "threads_per_block must be a multiple of the warp size"
            )
        by_registers = self.REGISTERS_PER_SM // max(
            1, self.registers_per_thread * self.device.warp_size)
        blocks_by_shared = (self.SHARED_BYTES_PER_SM //
                            max(1, self.shared_bytes_per_block)
                            if self.shared_bytes_per_block else 10 ** 9)
        warps_per_block = self.threads_per_block // self.device.warp_size
        by_shared = blocks_by_shared * warps_per_block
        return max(1, min(self.device.max_warps_per_sm, by_registers, by_shared))

    def resident_warps(self) -> int:
        """Device-wide concurrently resident warps."""
        return self.warps_per_sm() * self.device.num_sms


#: Concurrent warps per batched operation in the paper's regime: the
#: GTX 1080 keeps ~1280 warps resident while a batch holds 1e6 ops, so
#: roughly one op in 780 executes concurrently with a given op.  Scaled
#: (smaller) batches keep this ratio so contention statistics match the
#: full-size system instead of exploding when a small table meets the
#: full resident-warp count.
REFERENCE_CONCURRENCY = 1280.0 / 1_000_000.0


def estimate_lock_conflicts(num_ops: int, num_buckets: int,
                            resident_warps: int | None = None,
                            device: DeviceSpec = GTX_1080) -> int:
    """Expected same-round lock collisions for a batched kernel.

    A batch of ``num_ops`` operations executes as waves of concurrently
    resident warps; within one wave, two operations targeting the same
    bucket collide on its lock (birthday estimate ``W * (W - 1) /
    (2 * B)`` per wave).  Operations in *different* waves never contend,
    which is why conflicts scale with occupancy and bucket count, not
    with batch size squared.  The wave size is the smaller of the
    device's resident-warp limit and the batch-proportional concurrency
    of the paper's regime (see :data:`REFERENCE_CONCURRENCY`).
    """
    if num_ops <= 1 or num_buckets <= 0:
        return 0
    if resident_warps is None:
        resident_warps = min(
            Occupancy(device=device).resident_warps(),
            max(1, round(num_ops * REFERENCE_CONCURRENCY)))
    wave = max(1, min(num_ops, resident_warps))
    full_waves, remainder = divmod(num_ops, wave)
    collisions = (full_waves * wave * (wave - 1)
                  + remainder * (remainder - 1)) / (2.0 * num_buckets)
    return int(round(collisions))


class RoundScheduler:
    """Steps a set of warp programs in device rounds.

    A *warp program* is any object with ``finished() -> bool`` and
    ``step(round_index) -> None``.  Arbitration between warps is the
    caller's business (see :class:`LockArbiter`); the scheduler only
    provides the bulk-synchronous round structure and counts rounds.
    """

    def __init__(self, warps: Iterable, max_rounds: int = 1_000_000,
                 seed: int = 0, tracer=None, sanitizer=None) -> None:
        self.warps = list(warps)
        self.max_rounds = max_rounds
        self.rounds_executed = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.sanitizer = (sanitizer if sanitizer is not None
                          else NULL_SANITIZER)
        self._rng = __import__("numpy").random.default_rng(seed)

    def run(self, before_round: Callable[[int], None] | None = None,
            after_round: Callable[[int], None] | None = None) -> int:
        """Run every warp to completion; returns rounds executed.

        Warps step in a freshly shuffled order each round: real hardware
        gives no warp a standing priority, and a fixed order would let
        warp 0 win every lock race.
        """
        with self.tracer.span("kernel.run", "kernel", warps=len(self.warps)):
            round_index = self._run_rounds(before_round, after_round)
        self.rounds_executed = round_index
        return round_index

    def _run_rounds(self, before_round, after_round) -> int:
        tracer = self.tracer
        round_index = 0
        while any(not w.finished() for w in self.warps):
            if round_index >= self.max_rounds:
                raise RuntimeError(
                    f"kernel did not converge within {self.max_rounds} rounds"
                )
            if self.sanitizer.enabled:
                self.sanitizer.begin_round(round_index)
            if before_round is not None:
                before_round(round_index)
            if tracer.enabled:
                tracer.instant("kernel.round", "kernel", index=round_index,
                               active=sum(1 for w in self.warps
                                          if not w.finished()))
            order = self._rng.permutation(len(self.warps))
            for idx in order:
                warp = self.warps[idx]
                if not warp.finished():
                    warp.step(round_index)
            if after_round is not None:
                after_round(round_index)
            round_index += 1
        return round_index


class LockArbiter:
    """Per-round mutual exclusion over integer resource ids.

    Models the paper's bucket locks: within one device round many warp
    leaders may issue ``atomicCAS(&lock, 0, 1)`` on the same bucket; the
    memory subsystem serializes them and exactly one sees ``0``.  The
    arbiter grants the first requester of each resource per round and
    counts the failed attempts (the spinning the voter scheme avoids).
    """

    def __init__(self, tracer=None, faults=None, sanitizer=None,
                 profiler=None) -> None:
        self._held: set[int] = set()
        #: Resources camped on by an injected stalled holder, mapped to
        #: the device rounds the stall has left (aged by :meth:`tick`).
        self._stalled: dict[int, int] = {}
        self.acquisitions = 0
        self.conflicts = 0
        #: Acquisitions denied by an injected ``lock.acquire`` fault.
        self.injected_failures = 0
        #: Stalled-holder faults injected (``lock.stall``).
        self.injected_stalls = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults if faults is not None else NO_FAULTS
        self.sanitizer = (sanitizer if sanitizer is not None
                          else NULL_SANITIZER)
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    def try_acquire(self, resource: int, warp: int = -1) -> bool:
        """Attempt to lock ``resource``; False means revote/spin.

        ``warp`` identifies the acquiring warp for the sanitizer's
        lockcheck pass; callers without warp identity may omit it.
        """
        if self._stalled and resource in self._stalled:
            # A stalled holder (injected fault) is camping on the lock.
            self.conflicts += 1
            if self.profiler.enabled:
                self.profiler.lock_conflict(resource)
            if self.tracer.enabled:
                self.tracer.instant("lock.retry", "lock", resource=resource,
                                    stalled=True)
            return False
        if resource in self._held:
            self.conflicts += 1
            if self.profiler.enabled:
                self.profiler.lock_conflict(resource)
            if self.tracer.enabled:
                self.tracer.instant("lock.retry", "lock", resource=resource)
            return False
        if self.faults.enabled:
            fault = self.faults.fire("lock.acquire")
            if fault is not None:
                # The CAS lost to a competitor the simulator did not
                # model — the caller must revote, like any conflict.
                self.conflicts += 1
                self.injected_failures += 1
                if self.profiler.enabled:
                    self.profiler.lock_conflict(resource)
                if self.sanitizer.enabled:
                    # Intentional: the acquisition never happened, so
                    # there is nothing for lockcheck to pair.
                    self.sanitizer.note_injected("lock.acquire")
                if self.tracer.enabled:
                    self.tracer.instant("fault.inject", "fault",
                                        site="lock.acquire",
                                        resource=resource)
                return False
            fault = self.faults.fire("lock.stall")
            if fault is not None:
                # A phantom holder wins the lock and stalls on it for
                # ``param`` device rounds; everyone (including this
                # warp) must revote until the stall expires.
                self._stalled[resource] = max(1, fault.param)
                self.conflicts += 1
                self.injected_stalls += 1
                if self.profiler.enabled:
                    self.profiler.lock_conflict(resource)
                if self.sanitizer.enabled:
                    # Intentional: the phantom holder is not a tracked
                    # warp, so it cannot be reported as a leak.
                    self.sanitizer.note_injected("lock.stall")
                if self.tracer.enabled:
                    self.tracer.instant("fault.inject", "fault",
                                        site="lock.stall", resource=resource,
                                        rounds=max(1, fault.param))
                return False
        self._held.add(resource)
        self.acquisitions += 1
        if self.profiler.enabled:
            self.profiler.lock_grant(resource)
        if self.sanitizer.enabled:
            self.sanitizer.on_lock_acquire(warp, resource,
                                           site=_SITE_ACQUIRE)
        if self.tracer.enabled:
            self.tracer.instant("lock.acquire", "lock", resource=resource)
        return True

    def release(self, resource: int, warp: int = -1,
                unwind: bool = False) -> None:
        """Unlock ``resource`` (atomicExch(&lock, 0)).

        ``unwind=True`` marks a release performed while propagating an
        exception out of a kernel: the sanitizer accounts it separately
        instead of pairing it against a normal acquire.
        """
        self._held.discard(resource)
        if self.sanitizer.enabled:
            if unwind:
                self.sanitizer.on_unwind_release(warp, resource,
                                                 site=_SITE_RELEASE)
            else:
                self.sanitizer.on_lock_release(warp, resource,
                                               site=_SITE_RELEASE)

    def tick(self) -> None:
        """Age injected lock-holder stalls by one device round.

        Kernels that hold locks across rounds (the two-phase insert
        kernel) call this from their ``after_round`` hook; kernels that
        call :meth:`end_round` get it for free.
        """
        if not self._stalled:
            return
        for resource in list(self._stalled):
            remaining = self._stalled[resource] - 1
            if remaining <= 0:
                del self._stalled[resource]
            else:
                self._stalled[resource] = remaining

    def end_round(self) -> None:
        """Release every lock at the round boundary.

        A device round models one iteration of every warp's Algorithm-1
        loop executing concurrently: locks acquired during the round are
        held against all other warps of that round (producing conflicts)
        and the matching ``atomicExch`` unlocks land at the iteration
        end, i.e. here.  Stalled holders do *not* release — that is the
        fault being modelled — but their stalls age by one round.
        """
        self._held.clear()
        if self.sanitizer.enabled:
            self.sanitizer.on_round_release()
        self.tick()
