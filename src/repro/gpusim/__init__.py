"""SIMT execution and cost model — the substrate standing in for a GPU.

The paper's experiments run on an NVIDIA GTX 1080; this subpackage
provides the pieces of that machine the hash tables interact with:

* :mod:`repro.gpusim.device` — device specifications (GTX 1080 preset),
* :mod:`repro.gpusim.warp` — warp primitives (ballot/shfl/leader vote),
* :mod:`repro.gpusim.kernel` — round-synchronous scheduling, occupancy
  and per-round lock arbitration,
* :mod:`repro.gpusim.memory` — coalescing analysis and transaction
  accounting,
* :mod:`repro.gpusim.atomics` — functional atomics plus the
  contention-degradation model of Figure 5,
* :mod:`repro.gpusim.metrics` — the cost model turning event counts
  into simulated seconds and Mops,
* :mod:`repro.gpusim.cohort` — the vectorized structure-of-arrays warp
  engine, bit-for-bit conformant with the per-warp interpreter.
"""

from repro.gpusim.atomics import (AtomicMemory, atomic_batch_seconds,
                                  atomic_throughput_mops,
                                  coalesced_io_throughput_mops)
from repro.gpusim.device import GTX_1050, GTX_1080, V100, DeviceSpec
from repro.gpusim.kernel import LockArbiter, Occupancy, RoundScheduler
from repro.gpusim.memory import MemoryTracker, coalesced_transactions
from repro.gpusim.memory_manager import DeviceMemoryManager, PCIE_BANDWIDTH
from repro.gpusim.metrics import CostModel, KernelCosts, mops
from repro.gpusim.profile import KernelProfile, profile_batch, profile_operation
from repro.gpusim.warp import WarpContext

# Imported last: the cohort engine depends on the modules above and on
# repro.kernels (lazily), so keeping it at the tail avoids import cycles.
from repro.gpusim.cohort import (cohort_delete, cohort_find,  # noqa: E402
                                 cohort_insert)

__all__ = [
    "DeviceSpec",
    "GTX_1080",
    "GTX_1050",
    "V100",
    "WarpContext",
    "RoundScheduler",
    "LockArbiter",
    "Occupancy",
    "MemoryTracker",
    "coalesced_transactions",
    "AtomicMemory",
    "atomic_batch_seconds",
    "atomic_throughput_mops",
    "coalesced_io_throughput_mops",
    "CostModel",
    "KernelCosts",
    "mops",
    "DeviceMemoryManager",
    "PCIE_BANDWIDTH",
    "KernelProfile",
    "profile_batch",
    "profile_operation",
    "cohort_find",
    "cohort_delete",
    "cohort_insert",
]
