"""Compatibility shim — the profiling report moved to the telemetry
layer (:mod:`repro.telemetry.profiler`), where the deep per-round
profiler lives, so there is exactly one profiling path.

Import :class:`KernelProfile`, :func:`profile_batch` and
:func:`profile_operation` from :mod:`repro.telemetry.profiler` (or from
:mod:`repro.gpusim`, which keeps re-exporting them) in new code.
"""

from __future__ import annotations

from repro.telemetry.profiler import (KernelProfile, profile_batch,
                                      profile_operation)

__all__ = ["KernelProfile", "profile_batch", "profile_operation"]
