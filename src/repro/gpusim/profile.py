"""Kernel profiling reports — the paper's profiling methodology.

The paper's evaluation draft profiles three hardware counters per
kernel: *warp efficiency* (useful lanes over issued lanes), *cache/memory
bandwidth utilization*, and atomic behaviour.  This module derives the
same style of report from our event counters, so any table run can be
inspected the way ``nvprof`` output would be.

The derivations:

* **warp efficiency** — batched ops run one op per lane; lanes idle when
  their op finished but the warp still loops (eviction rounds) or when a
  vote loses.  We estimate the useful-lane fraction from completed ops
  versus (rounds x resident lanes) style accounting.
* **memory utilization** — achieved bytes/second over the device's
  sustained bandwidth for the simulated duration.
* **atomic intensity** — atomics per operation and the conflict rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.gpusim.metrics import CostModel


@dataclass(frozen=True)
class KernelProfile:
    """Profiling counters for one batch execution."""

    name: str
    num_ops: int
    simulated_seconds: float
    warp_efficiency: float
    memory_utilization: float
    atomics_per_op: float
    atomic_conflict_rate: float
    transactions_per_op: float

    def __str__(self) -> str:
        return (f"{self.name}: {self.num_ops} ops in "
                f"{self.simulated_seconds * 1e6:.1f} us | "
                f"warp eff {self.warp_efficiency:.0%} | "
                f"mem util {self.memory_utilization:.0%} | "
                f"{self.atomics_per_op:.2f} atomics/op "
                f"({self.atomic_conflict_rate:.1%} conflicted) | "
                f"{self.transactions_per_op:.2f} tx/op")


def profile_batch(name: str, delta: Mapping[str, int], num_ops: int,
                  cost_model: CostModel | None = None,
                  compute_ns_per_op: float = 0.3) -> KernelProfile:
    """Build a :class:`KernelProfile` from a stats delta.

    ``delta`` is a counter snapshot difference
    (:meth:`repro.core.stats.TableStats.delta`).
    """
    cost_model = cost_model or CostModel()
    device = cost_model.device
    seconds = cost_model.batch_seconds(delta, num_ops, compute_ns_per_op)

    transactions = (delta.get("bucket_reads", 0)
                    + delta.get("bucket_writes", 0)
                    + delta.get("random_accesses", 0))
    bytes_moved = transactions * device.cache_line_bytes
    memory_utilization = 0.0
    if seconds > 0:
        memory_utilization = min(1.0, (bytes_moved / seconds)
                                 / device.effective_bandwidth_bytes_per_s)

    atomics = (delta.get("lock_acquisitions", 0)
               + delta.get("atomic_exchanges", 0))
    conflicts = delta.get("lock_conflicts", 0)
    atomics_per_op = atomics / num_ops if num_ops else 0.0
    conflict_rate = conflicts / atomics if atomics else 0.0

    # Useful lane-ops: one per operation plus one per eviction (the
    # displaced pair is real work).  Wasted lane-ops: failed lock
    # attempts (revotes) and retry rounds.  Warp efficiency is the
    # useful fraction.
    evictions = delta.get("evictions", 0)
    retries = conflicts + max(0, delta.get("eviction_rounds", 0) - 1)
    useful = num_ops + evictions
    issued = useful + evictions + retries
    warp_efficiency = min(1.0, useful / issued) if issued else 1.0

    return KernelProfile(
        name=name,
        num_ops=num_ops,
        simulated_seconds=seconds,
        warp_efficiency=warp_efficiency,
        memory_utilization=memory_utilization,
        atomics_per_op=atomics_per_op,
        atomic_conflict_rate=conflict_rate,
        transactions_per_op=transactions / num_ops if num_ops else 0.0,
    )


def profile_operation(table, name: str, operation, *args,
                      cost_model: CostModel | None = None) -> KernelProfile:
    """Profile one batched call on a stats-carrying table.

    Example::

        profile = profile_operation(table, "insert", table.insert,
                                    keys, values)
    """
    before = table.stats.snapshot()
    operation(*args)
    delta = table.stats.delta(before)
    num_ops = len(args[0]) if args else 0
    return profile_batch(name, delta, num_ops, cost_model)
