"""Device specifications for the SIMT simulator.

The paper evaluates on an NVIDIA GeForce GTX 1080 (Pascal, 20 SMs with
128 SPs each, 8 GB GDDR5X).  :data:`GTX_1080` encodes that machine; the
cost model in :mod:`repro.gpusim.metrics` reads its parameters to turn
event counts into simulated time.  Other presets make it easy to ask
"what if" questions the paper could not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidConfigError


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU for simulation purposes.

    Attributes
    ----------
    name:
        Marketing name, for reports.
    num_sms:
        Streaming multiprocessors.
    cores_per_sm:
        CUDA cores per SM.
    warp_size:
        Threads per warp (32 on every NVIDIA architecture to date).
    clock_ghz:
        Boost clock in GHz.
    mem_bandwidth_gbps:
        Peak device-memory bandwidth in GB/s.
    mem_efficiency:
        Achievable fraction of peak bandwidth for well-coalesced access
        (hash probing reaches roughly 70-80% in practice).
    cache_line_bytes:
        L1/L2 transaction granularity; equals one 32x4-byte bucket.
    max_warps_per_sm:
        Resident warp limit per SM (occupancy ceiling).
    kernel_launch_us:
        Host-side launch + sync overhead per kernel invocation, in
        microseconds.  Charged once per device-wide round.
    atomic_base_ns:
        Amortized cost of one uncontended global atomic.
    atomic_conflict_ns:
        Extra serialized cost per additional atomic landing on the *same*
        address in the same round (the degradation of Figure 5).
    device_memory_bytes:
        Total device memory; memory-budget reports check against it.
    """

    name: str = "NVIDIA GeForce GTX 1080"
    num_sms: int = 20
    cores_per_sm: int = 128
    warp_size: int = 32
    clock_ghz: float = 1.733
    mem_bandwidth_gbps: float = 320.0
    mem_efficiency: float = 0.75
    cache_line_bytes: int = 128
    max_warps_per_sm: int = 64
    kernel_launch_us: float = 5.0
    atomic_base_ns: float = 0.6
    atomic_conflict_ns: float = 9.0
    device_memory_bytes: int = 8 * 1024 ** 3

    def __post_init__(self) -> None:
        if self.warp_size < 1:
            raise InvalidConfigError(f"warp_size must be >= 1, got {self.warp_size}")
        if self.num_sms < 1:
            raise InvalidConfigError(f"num_sms must be >= 1, got {self.num_sms}")
        if not 0.0 < self.mem_efficiency <= 1.0:
            raise InvalidConfigError(
                f"mem_efficiency must be in (0, 1], got {self.mem_efficiency}"
            )

    @property
    def total_cores(self) -> int:
        """Total CUDA cores on the device."""
        return self.num_sms * self.cores_per_sm

    @property
    def max_resident_warps(self) -> int:
        """Device-wide resident warp limit."""
        return self.num_sms * self.max_warps_per_sm

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Sustained coalesced bandwidth in bytes/second."""
        return self.mem_bandwidth_gbps * 1e9 * self.mem_efficiency


def partition_device(device: DeviceSpec, groups: int) -> DeviceSpec:
    """Carve ``device`` into ``groups`` equal SM groups; return one group.

    Models co-scheduling independent shards on disjoint SM groups of one
    GPU (the sharding front-end's execution model): each group owns
    ``num_sms / groups`` SMs and a fair ``1 / groups`` share of the DRAM
    bandwidth.  Bandwidth-bound work therefore sees *no* speedup from
    sharding (the memory bus is shared), while round-synchronization,
    compute, and contention costs parallelize — matching how partitioned
    hash tables behave on real hardware.

    ``groups`` beyond ``num_sms`` still yields a 1-SM spec with a
    ``1 / groups`` bandwidth share (groups time-share SMs).
    """
    if groups < 1:
        raise InvalidConfigError(f"groups must be >= 1, got {groups}")
    if groups == 1:
        return device
    import dataclasses

    return dataclasses.replace(
        device,
        name=f"{device.name} [1/{groups} SM group]",
        num_sms=max(1, device.num_sms // groups),
        mem_bandwidth_gbps=device.mem_bandwidth_gbps / groups,
        device_memory_bytes=device.device_memory_bytes // groups,
    )


#: The paper's evaluation machine.
GTX_1080 = DeviceSpec()

#: A smaller laptop-class part, useful for sensitivity experiments.
GTX_1050 = DeviceSpec(
    name="NVIDIA GeForce GTX 1050",
    num_sms=5,
    cores_per_sm=128,
    clock_ghz=1.455,
    mem_bandwidth_gbps=112.0,
    device_memory_bytes=2 * 1024 ** 3,
)

#: A server-class part, for headroom experiments.
V100 = DeviceSpec(
    name="NVIDIA Tesla V100",
    num_sms=80,
    cores_per_sm=64,
    clock_ghz=1.53,
    mem_bandwidth_gbps=900.0,
    device_memory_bytes=32 * 1024 ** 3,
)
