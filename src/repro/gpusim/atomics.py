"""Atomic-operation model: functional emulation plus a contention model.

Two consumers:

* The **lane-level interpreter** (:mod:`repro.gpusim.warp`) needs working
  ``atomicCAS``/``atomicExch`` semantics over a shared lock array — that
  is :class:`AtomicMemory`.
* The **cost model** needs the empirical observation of the paper's
  Figure 5: throughput of atomics collapses as more of them land on the
  same address, while an equivalent amount of coalesced memory IO stays
  flat.  :func:`atomic_batch_seconds`, :func:`atomic_throughput_mops` and
  :func:`coalesced_io_throughput_mops` encode that curve.

The contention model is a serialization model: the memory subsystem
retires conflicting atomics to one address sequentially, so a group of
``c`` conflicting atomics costs ``base + (c - 1) * conflict_penalty``.
``atomicCAS`` carries a higher per-op cost than ``atomicExch`` because it
performs a compare and conditionally writes (the paper profiles both).
"""

from __future__ import annotations

import numpy as np

from repro.faults import NO_FAULTS
from repro.gpusim.device import DeviceSpec, GTX_1080
from repro.sanitizer import NULL_SANITIZER
from repro.telemetry.tracer import NULL_TRACER

_SITE_CAS = "repro/gpusim/atomics.py:AtomicMemory.atomic_cas"
_SITE_EXCH = "repro/gpusim/atomics.py:AtomicMemory.atomic_exch"

#: Relative cost multiplier of atomicCAS over atomicExch (read-compare-write
#: versus blind write; consistent with the gap in the paper's Figure 5).
CAS_COST_FACTOR = 1.6


class AtomicMemory:
    """A word-addressed memory supporting CUDA-style atomics.

    Used as the lock table by the lane-level kernels.  Operations are
    sequentially consistent — the simulator executes one device round at
    a time, and within a round the winning order is the lane order the
    scheduler chose, which is a legal GPU interleaving.
    """

    def __init__(self, num_words: int, tracer=None, faults=None,
                 sanitizer=None) -> None:
        self.words = np.zeros(num_words, dtype=np.int64)
        #: Total atomic operations executed.
        self.ops = 0
        #: CAS operations that lost their race to an injected fault.
        self.injected_failures = 0
        #: Operations grouped by address within the current round, used to
        #: derive conflict statistics.
        self._round_addresses: list[int] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults if faults is not None else NO_FAULTS
        self.sanitizer = (sanitizer if sanitizer is not None
                          else NULL_SANITIZER)

    def atomic_cas(self, address: int, compare: int, value: int) -> int:
        """``old = mem[address]; if old == compare: mem[address] = value``.

        Returns ``old`` (CUDA semantics: success iff return == compare).
        An injected ``atomics.cas`` fault models a lost race: the CAS
        observes a word that differs from ``compare`` and writes nothing,
        exactly what a competing thread's interleaved write produces.
        """
        self.ops += 1
        self._round_addresses.append(address)
        if self.sanitizer.enabled:
            # Atomics are ordered by definition: stats only, no pairing.
            self.sanitizer.on_atomic(address, site=_SITE_CAS)
        if self.faults.enabled and self.faults.fire("atomics.cas") is not None:
            self.injected_failures += 1
            if self.sanitizer.enabled:
                self.sanitizer.note_injected("atomics.cas")
            if self.tracer.enabled:
                self.tracer.instant("fault.inject", "fault",
                                    site="atomics.cas", address=address)
            return compare ^ 1
        old = int(self.words[address])
        if old == compare:
            self.words[address] = value
        return old

    def atomic_exch(self, address: int, value: int) -> int:
        """Atomically write ``value``; return the previous word."""
        self.ops += 1
        self._round_addresses.append(address)
        if self.sanitizer.enabled:
            self.sanitizer.on_atomic(address, site=_SITE_EXCH)
        old = int(self.words[address])
        self.words[address] = value
        return old

    def end_round(self) -> dict[int, int]:
        """Close the current round; return per-address conflict counts."""
        counts: dict[int, int] = {}
        for address in self._round_addresses:
            counts[address] = counts.get(address, 0) + 1
        if self.sanitizer.enabled and counts:
            self.sanitizer.on_atomic_round(counts)
        if self.tracer.enabled and counts:
            self.tracer.instant(
                "atomic.round", "atomic",
                ops=len(self._round_addresses), addresses=len(counts),
                max_degree=max(counts.values()))
        self._round_addresses.clear()
        return counts


#: Independent atomic pipelines (L2 partitions) the model assumes.
ATOMIC_BANKS = 4


def effective_atomic_ns(conflict_degree: float,
                        device: DeviceSpec = GTX_1080,
                        cas: bool = True) -> float:
    """Per-operation atomic cost at a given same-address conflict degree.

    An uncontended atomic pipelines at ``atomic_base_ns``; each extra
    atomic on the same address serializes behind the previous one, and
    deeper queues also suffer growing retry/queueing overhead (the
    steady decline of Figure 5 across decades of conflict counts).
    """
    conflict_degree = max(1.0, float(conflict_degree))
    factor = CAS_COST_FACTOR if cas else 1.0
    base = device.atomic_base_ns * factor
    penalty = device.atomic_conflict_ns * factor
    serialized_share = 1.0 - 1.0 / conflict_degree
    queueing = 1.0 + np.log2(conflict_degree) / 4.0
    return base + serialized_share * penalty * queueing


def atomic_batch_seconds(conflict_group_sizes: np.ndarray,
                         device: DeviceSpec = GTX_1080,
                         cas: bool = True) -> float:
    """Simulated time for one round of atomics.

    ``conflict_group_sizes[i]`` is the number of atomics that landed on
    the i-th distinct address.  The memory subsystem retires atomics on
    :data:`ATOMIC_BANKS` independent pipelines; each op costs the
    effective per-op time of its group's conflict degree.
    """
    sizes = np.asarray(conflict_group_sizes, dtype=np.float64)
    if len(sizes) == 0:
        return 0.0
    per_group_ns = np.array([s * effective_atomic_ns(s, device, cas)
                             for s in sizes])
    return float(per_group_ns.sum()) / ATOMIC_BANKS * 1e-9


def atomic_throughput_mops(num_ops: int, conflicts_per_address: int,
                           device: DeviceSpec = GTX_1080,
                           cas: bool = True) -> float:
    """Throughput (Mops) of ``num_ops`` atomics at a given conflict degree.

    Reproduces the x-axis of Figure 5: ``conflicts_per_address`` atomics
    target each distinct address.  Degree 1 means fully spread out.
    """
    conflicts_per_address = max(1, conflicts_per_address)
    num_groups = max(1, num_ops // conflicts_per_address)
    group_sizes = np.full(num_groups, conflicts_per_address)
    seconds = atomic_batch_seconds(group_sizes, device, cas)
    return num_ops / seconds / 1e6 if seconds > 0 else float("inf")


def coalesced_io_throughput_mops(num_ops: int, access_bytes: int = 8,
                                 device: DeviceSpec = GTX_1080) -> float:
    """Throughput of an equivalent amount of sequential device IO.

    The flat baseline of Figure 5: coalesced reads/writes are bound by
    bandwidth only and do not degrade with "conflicts".
    """
    seconds = num_ops * access_bytes / device.effective_bandwidth_bytes_per_s
    return num_ops / seconds / 1e6 if seconds > 0 else float("inf")
