"""Device memory manager: the "coexisting structures" story.

The paper's introduction motivates dynamic tables with multi-structure
GPUs: a static hash table that hogs device memory forces other resident
structures out over PCIe.  :class:`DeviceMemoryManager` models that
environment — named clients allocate and free against the device's
capacity; an allocation that does not fit *spills*: some resident
structure must round-trip over PCIe, whose cost the manager accounts.

Used by the multi-tenant example and the memory-budget experiments; it
is deliberately simple (no fragmentation model) because the quantity of
interest is peak residency and spill traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, InvalidConfigError
from repro.faults import NO_FAULTS
from repro.gpusim.device import DeviceSpec, GTX_1080
from repro.sanitizer import NULL_SANITIZER

#: Sustained host<->device PCIe 3.0 x16 bandwidth (bytes/second).
PCIE_BANDWIDTH = 12e9

_SITE_ALLOC = "repro/gpusim/memory_manager.py:set_allocation"
_SITE_FREE = "repro/gpusim/memory_manager.py:free"


@dataclass
class AllocationRecord:
    """One client's live allocation."""

    client: str
    num_bytes: int
    #: Whether the allocation currently resides on the device (False
    #: means it was spilled to host memory).
    resident: bool = True


class DeviceMemoryManager:
    """Tracks allocations of several structures against one device.

    Parameters
    ----------
    device:
        The GPU being shared.
    reserve_fraction:
        Fraction of device memory unavailable to clients (context,
        framework overheads).
    sanitizer:
        Optional :class:`~repro.sanitizer.Sanitizer`; memcheck then
        accounts allocation lifetimes (``double-free`` on freeing a
        client with no live record, ``alloc-leak`` at alloc-scope
        exit).  The null default keeps both hooks one attribute check.
    """

    def __init__(self, device: DeviceSpec = GTX_1080,
                 reserve_fraction: float = 0.05, faults=None,
                 sanitizer=None) -> None:
        if not 0.0 <= reserve_fraction < 1.0:
            raise InvalidConfigError(
                f"reserve_fraction must be in [0, 1), got {reserve_fraction}")
        self.device = device
        self.capacity = int(device.device_memory_bytes
                            * (1.0 - reserve_fraction))
        self._allocations: dict[str, AllocationRecord] = {}
        #: Bytes moved over PCIe due to spills and restores.
        self.spill_bytes = 0
        #: Highest device residency observed.
        self.peak_resident_bytes = 0
        #: Growth requests denied by an injected ``memory.alloc`` fault.
        self.injected_failures = 0
        self.faults = faults if faults is not None else NO_FAULTS
        self.sanitizer = (sanitizer if sanitizer is not None
                          else NULL_SANITIZER)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return sum(rec.num_bytes for rec in self._allocations.values()
                   if rec.resident)

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.resident_bytes

    @property
    def spill_seconds(self) -> float:
        """Time spent on PCIe traffic caused by spills."""
        return self.spill_bytes / PCIE_BANDWIDTH

    def allocation_of(self, client: str) -> AllocationRecord | None:
        return self._allocations.get(client)

    def clients(self) -> list[str]:
        return sorted(self._allocations)

    # ------------------------------------------------------------------
    # Allocation protocol
    # ------------------------------------------------------------------

    def set_allocation(self, client: str, num_bytes: int) -> None:
        """Declare ``client``'s current footprint (grow or shrink).

        If the new total does not fit, other clients' structures are
        spilled to the host (largest first) until it does; the evicted
        bytes are charged as PCIe traffic.  If even spilling everything
        else cannot make room, :class:`CapacityError` is raised.
        """
        if num_bytes < 0:
            raise InvalidConfigError("num_bytes must be non-negative")
        if num_bytes > self.capacity:
            raise CapacityError(
                f"{client}: {num_bytes / 1e9:.2f} GB exceeds device "
                f"capacity {self.capacity / 1e9:.2f} GB")
        record = self._allocations.get(client)
        current = record.num_bytes if record is not None else 0
        if (self.faults.enabled and num_bytes > current
                and self.faults.fire("memory.alloc") is not None):
            # Injected cudaMalloc failure: nothing is mutated, so the
            # caller sees the same state as before the request.
            self.injected_failures += 1
            raise CapacityError(
                f"injected allocation failure for {client} "
                f"({num_bytes / 1e6:.2f} MB requested)")
        if record is None:
            record = AllocationRecord(client, 0)
            self._allocations[client] = record
        # A client touching its structure needs it resident.
        if not record.resident:
            self.spill_bytes += record.num_bytes  # restore transfer
            record.resident = True
        record.num_bytes = num_bytes

        overflow = self.resident_bytes - self.capacity
        if overflow > 0:
            self._spill_others(client, overflow)
        self.peak_resident_bytes = max(self.peak_resident_bytes,
                                       self.resident_bytes)
        if self.sanitizer.enabled:
            self.sanitizer.on_alloc(client, num_bytes, site=_SITE_ALLOC)

    def free(self, client: str) -> None:
        """Release a client's allocation entirely.

        Freeing a client with no live record is a silent no-op for the
        residency model but, with a sanitizer attached, is reported as
        a ``double-free`` — the cudaFree-twice bug class.
        """
        known = self._allocations.pop(client, None) is not None
        if self.sanitizer.enabled:
            self.sanitizer.on_free(client, known=known, site=_SITE_FREE)

    def _spill_others(self, protected: str, overflow: int) -> None:
        victims = sorted(
            (rec for name, rec in self._allocations.items()
             if name != protected and rec.resident),
            key=lambda rec: rec.num_bytes, reverse=True)
        for victim in victims:
            if overflow <= 0:
                break
            victim.resident = False
            self.spill_bytes += victim.num_bytes  # eviction transfer
            overflow -= victim.num_bytes
        if overflow > 0:
            raise CapacityError(
                f"device over capacity by {overflow / 1e6:.1f} MB even "
                "after spilling every other structure")

    def report(self) -> str:
        """Human-readable residency summary."""
        lines = [f"device {self.device.name}: "
                 f"{self.resident_bytes / 1e6:.1f} / "
                 f"{self.capacity / 1e6:.1f} MB resident, "
                 f"{self.spill_bytes / 1e6:.1f} MB spilled over PCIe "
                 f"({self.spill_seconds * 1e3:.2f} ms)"]
        for name in self.clients():
            rec = self._allocations[name]
            location = "device" if rec.resident else "host (spilled)"
            lines.append(f"  {name}: {rec.num_bytes / 1e6:.2f} MB on "
                         f"{location}")
        return "\n".join(lines)
