"""Cost model: event counts -> simulated GPU time -> Mops.

Every table implementation in this package counts the same events while
executing (bucket transactions, random accesses, lock atomics, device
rounds, rehash traffic).  :class:`CostModel` converts a delta of those
counters into simulated wall-clock time on a :class:`DeviceSpec`:

* **memory time** — bytes moved over sustained coalesced bandwidth; a
  bucket probe moves one cache line, a chain hop wastes a full line on a
  few useful bytes (the coalescing argument of Section II-B);
* **atomic time** — pipelined base cost per lock atomic plus a
  serialization penalty per conflicting atomic (Figure 5's degradation);
* **compute time** — per-op instruction cost; matters only for
  compute-heavier schemes (e.g. DyCuckoo's extra hash layer, the reason
  Figure 9 shows MegaKV slightly ahead on FIND);
* **round overhead** — one device-wide synchronization per eviction
  round plus kernel-launch costs, which is what penalizes long cuckoo
  chains and full rehashes.

Absolute numbers are calibrated to a GTX 1080 and are *not* claimed to
match the authors' testbed; relative shapes are the reproduction target
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.gpusim.atomics import ATOMIC_BANKS, effective_atomic_ns
from repro.gpusim.device import DeviceSpec, GTX_1080

#: Cost of one device-wide eviction round.  The kernels loop *inside*
#: one launch (no grid synchronization), so a round costs only the
#: re-ballot/bookkeeping work; the real price of long chains is their
#: memory traffic, which is counted separately.
ROUND_SYNC_SECONDS = 3e-7

#: Fixed overhead per full-table rehash: one cudaMalloc/cudaFree pair
#: plus the extra kernel launches.  Kept small so the *traffic* of
#: moving every entry — which scales with table size and is therefore
#: scale-invariant in relative comparisons — dominates the rehash cost.
FULL_REHASH_OVERHEAD_SECONDS = 5e-5

#: Default per-operation compute cost (hashing + bookkeeping), ns.
DEFAULT_COMPUTE_NS = 0.30

#: Exposed latency per dependent chain hop (ns).  A dependent probe
#: cannot issue until the previous one returns (~300 ns raw latency);
#: warp over-subscription hides most but not all of it — pointer-chasing
#: structures measurably trail array-probing ones on real GPUs, and this
#: term is that residue.
CHAIN_HOP_NS = 4.0


@dataclass(frozen=True)
class KernelCosts:
    """Per-operation compute costs (ns) for one table implementation.

    These express *relative* instruction-path lengths: DyCuckoo's find
    performs one extra layer of hashing over MegaKV's; SlabHash's find
    executes pointer-chasing control flow; CUDPP recomputes up to five
    hash functions.
    """

    find_ns: float = DEFAULT_COMPUTE_NS
    insert_ns: float = DEFAULT_COMPUTE_NS
    delete_ns: float = DEFAULT_COMPUTE_NS


@dataclass
class CostModel:
    """Converts :class:`repro.core.stats.TableStats` deltas to seconds.

    ``overhead_scale`` multiplies the *fixed* costs (kernel launches,
    round bookkeeping, allocation overheads).  Full-size experiments use
    1.0; experiments run at a reduced dataset scale pass that same scale
    so fixed costs keep the proportion to traffic they would have at
    full size — otherwise a 1/100-scale run's launch overheads would
    dwarf its (1/100-sized) memory traffic and distort every ratio.
    """

    device: DeviceSpec = field(default_factory=lambda: GTX_1080)
    overhead_scale: float = 1.0

    def memory_seconds(self, delta: Mapping[str, int]) -> float:
        """Bandwidth-bound time for the recorded transactions."""
        line = self.device.cache_line_bytes
        coalesced = delta.get("bucket_reads", 0) + delta.get("bucket_writes", 0)
        random = delta.get("random_accesses", 0)
        bytes_moved = (coalesced + random) * line
        return bytes_moved / self.device.effective_bandwidth_bytes_per_s

    def atomic_seconds(self, delta: Mapping[str, int]) -> float:
        """Lock traffic: pipelined CAS/Exch plus serialized conflicts."""
        acquisitions = delta.get("lock_acquisitions", 0)
        conflicts = delta.get("lock_conflicts", 0)
        exchanges = delta.get("atomic_exchanges", 0)
        if acquisitions + conflicts + exchanges == 0:
            return 0.0
        # Each successful acquisition is one CAS plus one Exch (unlock);
        # each conflict is a failed CAS serialized behind the holder at
        # the average conflict degree the batch exhibited.  Standalone
        # exchanges (lock-free designs) pipeline at the Exch rate.
        degree = 1.0 + conflicts / max(1, acquisitions)
        per_cas_ns = effective_atomic_ns(degree, self.device, cas=True)
        per_exch_ns = effective_atomic_ns(1.0, self.device, cas=False)
        total_ns = ((acquisitions + conflicts) * per_cas_ns
                    + (acquisitions + exchanges) * per_exch_ns)
        return total_ns / ATOMIC_BANKS * 1e-9

    def overhead_seconds(self, delta: Mapping[str, int],
                         kernel_launches: int = 0) -> float:
        """Fixed costs: launches, round bookkeeping, rehash allocation."""
        rounds = delta.get("eviction_rounds", 0)
        resizes = delta.get("upsizes", 0) + delta.get("downsizes", 0)
        rehashes = delta.get("full_rehashes", 0)
        launch_seconds = self.device.kernel_launch_us * 1e-6
        fixed = (rounds * ROUND_SYNC_SECONDS
                 + (resizes + kernel_launches) * launch_seconds
                 + rehashes * FULL_REHASH_OVERHEAD_SECONDS)
        return fixed * self.overhead_scale

    def batch_seconds(self, delta: Mapping[str, int], num_ops: int,
                      compute_ns_per_op: float = DEFAULT_COMPUTE_NS,
                      kernel_launches: int = 1) -> float:
        """Total simulated time for a batch of ``num_ops`` operations.

        Memory and atomic traffic overlap on real hardware (warps hide
        each other's latency), so the slower of the two binds; compute
        and fixed overheads add on top.
        """
        bound = max(self.memory_seconds(delta), self.atomic_seconds(delta))
        compute = num_ops * compute_ns_per_op * 1e-9
        latency = delta.get("chain_hops", 0) * CHAIN_HOP_NS * 1e-9
        return (bound + compute + latency
                + self.overhead_seconds(delta, kernel_launches))

    def mops(self, delta: Mapping[str, int], num_ops: int,
             compute_ns_per_op: float = DEFAULT_COMPUTE_NS) -> float:
        """Throughput in million operations per second (the paper's unit)."""
        seconds = self.batch_seconds(delta, num_ops, compute_ns_per_op)
        return num_ops / seconds / 1e6 if seconds > 0 else float("inf")


def mops(num_ops: int, seconds: float) -> float:
    """Plain Mops helper for directly measured times."""
    return num_ops / seconds / 1e6 if seconds > 0 else float("inf")
