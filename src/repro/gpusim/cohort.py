"""Structure-of-arrays warp-cohort execution engine.

The reference kernel path (:mod:`repro.kernels` over
:class:`~repro.gpusim.kernel.RoundScheduler`) steps every warp as a
separate Python object per device round, which is lane-faithful but
100-1000x slower than the vectorized table path.  This module executes
the *same* warp programs with the whole launch held as parallel numpy
arrays — one row per resident warp — and advances every warp per round
with a handful of vectorized mask operations:

* lane ballots are ``uint32`` masks in a ``(W,)`` array instead of
  per-warp bool vectors;
* leader election (including the voter scheme's rotating start lane) is
  a bitwise rotate plus a count-trailing-zeros over all warps at once;
* per-round lock arbitration replaces the per-resource
  :class:`~repro.gpusim.kernel.LockArbiter` loop with sorted-group
  winner selection over ``(lock_id, round_position)`` pairs;
* bucket inspection (existing-key ballot, alternate probe, free-slot
  ballot, victim choice) is batched per target subtable.

Conformance contract
--------------------
The cohort engine is **bit-for-bit conformant** with the per-warp
engine: identical table storage after a run, identical
``(values, found, removed)`` outputs, and identical aggregate cost
counters (rounds, memory transactions, lock acquisitions/conflicts,
evictions, votes).  Three mechanisms make that exact rather than
approximate:

1. **Identical scheduling randomness.**  The round loop consumes
   ``np.random.default_rng(0).permutation(W)`` exactly like
   :class:`RoundScheduler`, and every order-sensitive decision (lock
   arbitration, victim-counter consumption) is ranked by each warp's
   position in that permutation — the order the reference engine would
   have stepped them in.

2. **Hazard-exact phase-two vectorization.**  Within one round, a
   locked warp only ever writes *keys* into its own locked bucket, so
   every other warp's own-bucket ballots are stable and the round can
   be applied from a start-of-round snapshot — *except* when carried
   keys coincide.  Two precise hazard conditions (duplicate carried
   keys in the cohort; an eviction whose victim key equals another
   warp's carried key aimed at the evicting bucket) are detected per
   round; a hazardous round re-resolves the alternate-bucket probes
   with a vectorized fixpoint over the round's key writes
   (:func:`_resolve_hazard`) and lands the value writes
   last-writer-wins in permutation order (:func:`_apply_hazard_round`)
   — the reference replay semantics at array speed.  Fault-free
   unique-key workloads essentially never trip the hazards.

3. **Fault plans in the SoA path.**  :class:`repro.faults.FaultPlan`
   decisions are a pure hash of the per-site *invocation index*.  In a
   fault-free round the warps that consult the plan are exactly the
   round's lock winners, in permutation order, so phase one asks the
   plan whether any decision inside that consult window could fire
   (:meth:`~repro.faults.FaultPlan.window_may_fire`); if none can, it
   advances the per-site counters wholesale and stays vectorized.
   Only rounds where an injected fault actually lands replay the
   reference arbitration walk (:func:`_phase_one_fault_walk`), keeping
   injected behaviour byte-identical to the per-warp engine's
   :class:`~repro.gpusim.kernel.LockArbiter` without delegating whole
   kernels.

FIND and DELETE have no scheduler and no locks in the reference engine
(one warp processes ops sequentially), so their cohort forms are plain
grouped-gather pipelines with transaction accounting reproduced from
the probe/hit structure.
"""

from __future__ import annotations

import numpy as np

from repro.core.subtable import EMPTY
from repro.errors import CapacityError
from repro.sanitizer import NULL_SANITIZER
from repro.telemetry.profiler import NULL_PROFILER

#: Lane count of a warp (fixed by the reference kernels).
WARP_WIDTH = 32

_SITE_PH1 = "repro/gpusim/cohort.py:_phase_one"
_SITE_PH2 = "repro/gpusim/cohort.py:_phase_two"
_SITE_DELETE = "repro/gpusim/cohort.py:cohort_delete"
_SITE_UNWIND = "repro/gpusim/cohort.py:cohort_insert"
_SITE_EXIT = "repro/gpusim/cohort.py:cohort_insert"

_U32_MASK = np.uint64(0xFFFFFFFF)
_ONE = np.uint64(1)


def _ctz(masks: np.ndarray) -> np.ndarray:
    """Count trailing zeros of nonzero uint64 masks (vectorized ffs)."""
    low = masks & (~masks + _ONE)
    # Isolated low bits are exact powers of two < 2**53: log2 is exact.
    return np.log2(low.astype(np.float64)).astype(np.int64)


def _first_slot(match: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row first True column of a 2-D predicate, as (any, argmax)."""
    return match.any(axis=1), match.argmax(axis=1)


# ----------------------------------------------------------------------
# FIND
# ----------------------------------------------------------------------

def cohort_find(table, codes: np.ndarray, first=None, second=None,
                raw_of=None):
    """Vectorized form of :func:`repro.kernels.find.run_find_kernel`.

    ``codes`` are already-encoded keys; ``first``/``second`` are the
    pair-hash targets (computed here when omitted) and ``raw_of`` an
    optional ``t -> raw-hash-array`` cache aligned with ``codes``.
    Returns ``(values, found, result)`` with transaction counts equal
    to the sequential warp walk: one per first-bucket probe plus one
    per second probe on a miss.
    """
    from repro.kernels.insert import KernelRunResult

    codes = np.asarray(codes, dtype=np.uint64)
    n = len(codes)
    values = np.zeros(n, dtype=np.uint64)
    found = np.zeros(n, dtype=bool)
    result = KernelRunResult()
    if n == 0:
        return values, found, result
    if first is None or second is None:
        first, second = table.pair_hash.tables_for(codes)

    def probe(idx: np.ndarray, targets: np.ndarray) -> None:
        for t in range(table.num_tables):
            sel = idx[targets == t]
            if len(sel) == 0:
                continue
            st = table.subtables[t]
            if raw_of is None:
                buckets = table.bucket_for(t, codes[sel])
            else:
                buckets = table.bucket_for(t, raw=raw_of(t)[sel])
            hit, slots = _first_slot(st.keys[buckets] == codes[sel][:, None])
            dest = sel[hit]
            values[dest] = st.values[buckets[hit], slots[hit]]
            found[dest] = True

    everyone = np.arange(n)
    probe(everyone, np.asarray(first, dtype=np.int64))
    missing = np.flatnonzero(~found)
    if len(missing):
        probe(missing, np.asarray(second, dtype=np.int64)[missing])
    result.memory_transactions = n + len(missing)
    result.completed_ops = n
    result.rounds = n  # one warp processes queries sequentially
    san = getattr(table, "sanitizer", NULL_SANITIZER)
    if san.enabled:
        # Mirror the per-warp MemoryTracker's sanitizer feed (one
        # notification per counted transaction) so stats conform.
        san.on_transactions(result.memory_transactions)
    prof = getattr(table, "profiler", NULL_PROFILER)
    if prof.enabled:
        # Ops resolved on the first bucket probed length 1; the rest
        # read the second bucket too — identical to the per-warp walk.
        prof.observe_probes(n, n - len(missing))
    return values, found, result


# ----------------------------------------------------------------------
# DELETE
# ----------------------------------------------------------------------

def cohort_delete(table, codes: np.ndarray, first=None, second=None,
                  raw_of=None):
    """Vectorized form of :func:`repro.kernels.delete.run_delete_kernel`.

    Sequential duplicate semantics are reproduced exactly: only a
    key's first occurrence can observe (and clear) the entry; later
    duplicates probe both buckets, miss, and pay two transactions.
    Returns ``(removed, result)``.
    """
    from repro.core.grouping import first_occurrence_mask
    from repro.kernels.insert import KernelRunResult

    codes = np.asarray(codes, dtype=np.uint64)
    n = len(codes)
    removed = np.zeros(n, dtype=bool)
    result = KernelRunResult()
    if n == 0:
        return removed, result
    if first is None or second is None:
        first, second = table.pair_hash.tables_for(codes)
    first = np.asarray(first, dtype=np.int64)
    second = np.asarray(second, dtype=np.int64)

    # Distinct keys never interact (clearing one key's slot cannot make
    # another key appear or vanish), so only first occurrences can hit.
    unique_idx = np.flatnonzero(first_occurrence_mask(codes))
    hit_first = np.zeros(n, dtype=bool)

    def clear(idx: np.ndarray, targets: np.ndarray, hit_out) -> None:
        for t in range(table.num_tables):
            sel = idx[targets == t]
            if len(sel) == 0:
                continue
            st = table.subtables[t]
            if raw_of is None:
                buckets = table.bucket_for(t, codes[sel])
            else:
                buckets = table.bucket_for(t, raw=raw_of(t)[sel])
            hit, slots = _first_slot(st.keys[buckets] == codes[sel][:, None])
            if np.any(hit):
                st.keys[buckets[hit], slots[hit]] = EMPTY
                st.size -= int(hit.sum())
                dest = sel[hit]
                removed[dest] = True
                if hit_out is not None:
                    hit_out[dest] = True
                san = getattr(table, "sanitizer", NULL_SANITIZER)
                if san.enabled:
                    # Same access log as the per-warp engine: one
                    # lock-free slot-clear write per removal (exempt
                    # from the locking contract — see run_delete_kernel).
                    for b in buckets[hit]:
                        san.record_access(0, "write", "bucket",
                                          (t << 40) | int(b),
                                          site=_SITE_DELETE)

    clear(unique_idx, first[unique_idx], hit_first)
    pending = unique_idx[~removed[unique_idx]]
    if len(pending):
        clear(pending, second[pending], None)

    n_removed = int(removed.sum())
    # Every op reads its first bucket; ops that miss there (including
    # every non-first duplicate) read the second; each removal is one
    # slot-clear write.
    result.memory_transactions = (n + (n - int(hit_first.sum()))
                                  + n_removed)
    result.completed_ops = n_removed
    result.rounds = n
    san = getattr(table, "sanitizer", NULL_SANITIZER)
    if san.enabled:
        san.on_transactions(result.memory_transactions)
    prof = getattr(table, "profiler", NULL_PROFILER)
    if prof.enabled:
        prof.observe_probes(n, int(hit_first.sum()))
    return removed, result


# ----------------------------------------------------------------------
# INSERT (Algorithm 1, voter and spin variants)
# ----------------------------------------------------------------------

class _CohortState:
    """All resident warps of one insert launch, structure-of-arrays."""

    def __init__(self, codes: np.ndarray, values: np.ndarray,
                 targets: np.ndarray) -> None:
        n = len(codes)
        width = WARP_WIDTH
        self.num_warps = (n + width - 1) // width
        W = self.num_warps
        self.keys = np.zeros((W, width), dtype=np.uint64)
        self.values = np.zeros((W, width), dtype=np.uint64)
        self.targets = np.zeros((W, width), dtype=np.int64)
        self.keys.ravel()[:n] = codes
        self.values.ravel()[:n] = values
        self.targets.ravel()[:n] = targets
        #: Lane ballots: bit ``l`` set while lane ``l`` still has work.
        self.active = np.zeros(W, dtype=np.uint64)
        full, rem = divmod(n, width)
        self.active[:full] = _U32_MASK
        if rem:
            self.active[full] = (_ONE << np.uint64(rem)) - _ONE
        #: Voter scheme: lane the next election starts scanning from.
        self.next_start = np.zeros(W, dtype=np.int64)
        #: Consecutive lock-failure rounds (stall detector).
        self.stalled = np.zeros(W, dtype=np.int64)
        #: Program counter, effectively: a locked warp is in phase two.
        self.locked = np.zeros(W, dtype=bool)
        self.lk_leader = np.zeros(W, dtype=np.int64)
        self.lk_target = np.zeros(W, dtype=np.int64)
        self.lk_bucket = np.zeros(W, dtype=np.int64)
        self.lk_lockid = np.zeros(W, dtype=np.int64)
        #: Per-lane eviction-chain depth; allocated only when a profiler
        #: is attached (see :func:`cohort_insert`), ``None`` otherwise.
        self.depth: np.ndarray | None = None


def cohort_insert(table, codes: np.ndarray, values: np.ndarray,
                  targets: np.ndarray, voter: bool,
                  max_rounds: int = 1_000_000,
                  max_rounds_per_op: int = 4096,
                  faults=None):
    """Vectorized Algorithm-1 insert over pre-routed ``(code, value)``s.

    ``targets`` must come from the same router call the per-warp engine
    would make (see :func:`repro.kernels.insert._run_insert`, which
    computes them before dispatching on the engine).  ``faults`` is the
    table's :class:`~repro.faults.FaultPlan` (or None); injected lock
    faults reproduce the per-warp arbiter byte for byte.  Returns a
    :class:`~repro.kernels.insert.KernelRunResult` whose every field
    matches the per-warp engine on the same inputs; the engine-specific
    hazard diagnostics ride along as non-field attributes
    ``hazard_rounds`` / ``hazard_lanes``.
    """
    from repro.kernels.insert import KernelRunResult

    result = KernelRunResult()
    result.hazard_rounds = 0
    result.hazard_lanes = 0
    codes = np.asarray(codes, dtype=np.uint64)
    if len(codes) == 0:
        return result
    state = _CohortState(codes, np.asarray(values, dtype=np.uint64),
                         np.asarray(targets, dtype=np.int64))
    rng = np.random.default_rng(0)
    W = state.num_warps
    rounds = 0
    san = getattr(table, "sanitizer", NULL_SANITIZER)
    prof = getattr(table, "profiler", NULL_PROFILER)
    fp = faults if (faults is not None and faults.enabled) else None
    #: Buckets camped on by an injected holder stall -> rounds left;
    #: the cohort-local mirror of ``LockArbiter._stalled``.
    stalled_locks: dict[int, int] = {}
    if prof.enabled:
        state.depth = np.zeros((W, WARP_WIDTH), dtype=np.int64)
    if san.enabled:
        san.begin_kernel("insert", locking=True, table=table)
    # Round-invariant scratch, hoisted out of the loop: the permutation
    # -> position scatter buffer and its identity source.
    pos = np.empty(W, dtype=np.int64)
    base = np.arange(W, dtype=np.int64)
    # Occupancy tracked as plain ints so the per-round profiler sample
    # costs no array reductions: live lanes fall as ops complete, a
    # warp leaves residency when its ballot empties, and the locked
    # count entering a round is exactly last round's winner count
    # (every held lock is released in its phase two).
    live_lanes = len(codes)
    resident = W
    locked_count = 0
    hazard_rounds = 0
    hazard_lanes = 0
    round_samples: list[tuple] = []
    try:
        while live_lanes or locked_count:
            if rounds >= max_rounds:
                raise RuntimeError(
                    f"kernel did not converge within {max_rounds} rounds"
                )
            if san.enabled:
                san.begin_round(rounds)
            if prof.enabled:
                # Same round-boundary snapshot the reference engine's
                # before_round hook takes: a warp is resident while it
                # holds a lock or has live lanes.
                round_samples.append((resident, live_lanes, locked_count,
                                      result.evictions,
                                      result.completed_ops))
            perm = rng.permutation(W)
            pos[perm] = base
            ph2 = np.flatnonzero(state.locked)
            ph1 = np.flatnonzero(~state.locked & (state.active != 0))
            # Lock holders at round start: they complete and release at
            # their permutation position, which phase-one arbitration
            # needs.
            holder_ids = state.lk_lockid[ph2]
            holder_pos = pos[ph2]
            if len(ph2):
                hazard, n_done, n_dead = _phase_two(
                    table, state, result, ph2, pos, san, prof)
                live_lanes -= n_done
                resident -= n_dead
                if hazard:
                    hazard_rounds += 1
                    hazard_lanes += len(ph2)
                    if prof.enabled:
                        prof.note_hazard(len(ph2))
            locked_count = 0
            if len(ph1):
                locked_count = _phase_one(
                    table, state, result, ph1, pos, holder_ids,
                    holder_pos, voter, max_rounds_per_op, san, prof,
                    fp, stalled_locks)
            if fp is not None and stalled_locks:
                # Mirror of LockArbiter.tick(): injected holder stalls
                # age at the end of every device round.
                for lid in list(stalled_locks):
                    remaining = stalled_locks[lid] - 1
                    if remaining <= 0:
                        del stalled_locks[lid]
                    else:
                        stalled_locks[lid] = remaining
            rounds += 1
        if san.enabled:
            # Normal completion: the loop condition drains every lane,
            # so a live lane here is a divergent exit (synccheck).
            san.on_kernel_exit(
                sum(bin(int(lanes)).count("1") for lanes in state.active),
                site=_SITE_EXIT)
    except BaseException:
        # Release-on-exception: _phase_one raises CapacityError *after*
        # the same round's winners entered phase two, and the
        # non-convergence abort fires with warps mid-critical-section.
        # Their bucket locks must be cleared on the way out (the warp
        # engine does the same via _InsertWarp.unwind_locks).
        for w in np.flatnonzero(state.locked):
            if san.enabled:
                san.on_unwind_release(int(w), int(state.lk_lockid[w]),
                                      site=_SITE_UNWIND)
        state.locked[:] = False
        raise
    finally:
        if prof.enabled and round_samples:
            prof.record_rounds_many(round_samples)
        if san.enabled:
            if result.memory_transactions:
                # Mirror the per-warp MemoryTracker's sanitizer feed
                # (one notification per counted transaction).
                san.on_transactions(result.memory_transactions)
            san.end_kernel()
    result.rounds = rounds
    result.hazard_rounds = hazard_rounds
    result.hazard_lanes = hazard_lanes
    return result


def _phase_one(table, state: _CohortState, result, ph1: np.ndarray,
               pos: np.ndarray, holder_ids: np.ndarray,
               holder_pos: np.ndarray, voter: bool,
               max_stall: int, san=NULL_SANITIZER,
               prof=NULL_PROFILER, fp=None,
               stalled_locks: dict | None = None) -> int:
    """Elect leaders, hash buckets, arbitrate locks — all warps at once.

    Returns the number of locks granted (the warps entering phase two).
    """
    m = state.active[ph1]
    result.votes += len(ph1)
    if san.enabled:
        # One election ballot per unlocked warp with live lanes — the
        # same count (and vote masks) the reference engine's
        # _InsertWarp._elect feeds synccheck.
        for i in range(len(ph1)):
            vote = int(m[i])
            san.on_vote(int(ph1[i]), vote, vote, site=_SITE_PH1)
    if voter:
        s = state.next_start[ph1].astype(np.uint64)
        # Rotate the ballot so bit j is lane (start + j) % 32, then the
        # first set bit is the first active lane at-or-after start.
        rot = ((m >> s) | (m << (np.uint64(WARP_WIDTH) - s))) & _U32_MASK
        leader = (state.next_start[ph1] + _ctz(rot)) % WARP_WIDTH
    else:
        leader = _ctz(m)
    key = state.keys[ph1, leader]
    target = state.targets[ph1, leader]
    bucket = np.empty(len(ph1), dtype=np.int64)
    for t in range(table.num_tables):
        g = np.flatnonzero(target == t)
        if len(g):
            bucket[g] = table.bucket_for(t, key[g])
    lock_id = (target << 40) | bucket
    my_pos = pos[ph1]

    # Arbitration: within this round, a request succeeds iff its lock is
    # not blocked by a phase-two holder stepping later (holders release
    # at their own position) and no earlier request already took it —
    # exactly what the per-request LockArbiter sees when the reference
    # scheduler steps warps in permutation order.
    order = np.lexsort((my_pos, lock_id))
    lid_s = lock_id[order]
    pos_s = my_pos[order]
    if len(holder_ids):
        h_order = np.argsort(holder_ids)
        h_ids = holder_ids[h_order]
        h_pos = holder_pos[h_order]
        where = np.searchsorted(h_ids, lid_s)
        where_c = np.clip(where, 0, len(h_ids) - 1)
        held = h_ids[where_c] == lid_s
        blocker = np.where(held, h_pos[where_c], np.int64(-1))
    else:
        blocker = np.full(len(lid_s), -1, dtype=np.int64)
    eligible = pos_s > blocker
    if stalled_locks:
        # Buckets held down by an injected stall deny without ever
        # consulting the plan (the arbiter's stalled check comes first).
        eligible &= ~np.isin(lid_s, np.fromiter(
            stalled_locks.keys(), dtype=np.int64,
            count=len(stalled_locks)))
    group_start = np.empty(len(lid_s), dtype=bool)
    group_start[0] = True
    group_start[1:] = lid_s[1:] != lid_s[:-1]
    grp = np.cumsum(group_start) - 1
    running = np.cumsum(eligible)
    starts = np.flatnonzero(group_start)
    before_group = np.concatenate(
        [[0], running[starts[1:] - 1]]) if len(starts) > 1 else np.zeros(
            1, dtype=np.int64)
    winner_s = eligible & ((running - before_group[grp]) == 1)
    win = np.zeros(len(ph1), dtype=bool)
    win[order] = winner_s

    n_win = int(win.sum())
    if fp is not None:
        # In a fault-free round the plan is consulted exactly once per
        # winner at each lock site, in permutation order: every other
        # candidate is denied by the stalled/held/taken checks *before*
        # the consult.  So the round's consult window at each site is
        # [counter, counter + n_win); if no decision inside either
        # window can fire, advance both counters wholesale and keep the
        # vectorized winners.  Otherwise replay the reference
        # arbitration walk so indices and side effects stay exact.
        if (fp.window_may_fire("lock.acquire", n_win)
                or fp.window_may_fire("lock.stall", n_win)):
            blocker_row = np.empty(len(ph1), dtype=np.int64)
            blocker_row[order] = blocker
            win = _phase_one_fault_walk(fp, stalled_locks, lock_id,
                                        my_pos, blocker_row, san)
            n_win = int(win.sum())
        else:
            fp.advance("lock.acquire", n_win)
            fp.advance("lock.stall", n_win)
    result.lock_acquisitions += n_win
    result.lock_conflicts += len(ph1) - n_win
    # Phase one of a won lock: one coalesced bucket read issued.
    result.memory_transactions += n_win
    if prof.enabled:
        # Same grant/conflict attribution the LockArbiter hook makes on
        # the reference path: winners acquired their leader's bucket
        # lock, losers conflicted on theirs.
        prof.lock_grants_many(lock_id[win])
        prof.lock_conflicts_many(lock_id[~win])

    w_idx = ph1[win]
    state.locked[w_idx] = True
    state.lk_leader[w_idx] = leader[win]
    state.lk_target[w_idx] = target[win]
    state.lk_bucket[w_idx] = bucket[win]
    state.lk_lockid[w_idx] = lock_id[win]
    state.stalled[w_idx] = 0
    if san.enabled:
        won_ids = lock_id[win]
        for i, w in enumerate(w_idx):
            san.on_lock_acquire(int(w), int(won_ids[i]), site=_SITE_PH1)
            san.record_access(int(w), "read", "bucket", int(won_ids[i]),
                              site=_SITE_PH1)

    l_idx = ph1[~win]
    if len(l_idx):
        if voter:
            state.next_start[l_idx] = (leader[~win] + 1) % WARP_WIDTH
        state.stalled[l_idx] += 1
        if bool(np.any(state.stalled[l_idx] > max_stall)):
            raise CapacityError(
                "insert kernel stalled: no lock progress "
                f"after {max_stall} rounds"
            )
    return n_win


def _phase_one_fault_walk(fp, stalled_locks: dict, lock_id: np.ndarray,
                          my_pos: np.ndarray, blocker_row: np.ndarray,
                          san=NULL_SANITIZER) -> np.ndarray:
    """Reference-order lock arbitration for a round where a fault fires.

    Steps the phase-one candidates in permutation order, replaying the
    exact consult sequence of ``LockArbiter.try_acquire``: a stalled or
    held (or already-taken) lock denies *without* consulting the plan;
    everyone else fires ``lock.acquire`` and, if that passes, fires
    ``lock.stall`` before winning.  An injected stall camps on the
    bucket for ``max(1, param)`` rounds, denying same-round and
    later-round candidates alike.  Returns the win mask over the
    candidates.
    """
    win = np.zeros(len(lock_id), dtype=bool)
    won: set[int] = set()
    lids = lock_id.tolist()
    blockers = blocker_row.tolist()
    posl = my_pos.tolist()
    for j in np.argsort(my_pos).tolist():
        lid = lids[j]
        if lid in stalled_locks or blockers[j] > posl[j] or lid in won:
            continue
        fault = fp.fire("lock.acquire")
        if fault is not None:
            if san.enabled:
                san.note_injected("lock.acquire")
            continue
        fault = fp.fire("lock.stall")
        if fault is not None:
            stalled_locks[lid] = max(1, fault.param)
            if san.enabled:
                san.note_injected("lock.stall")
            continue
        win[j] = True
        won.add(lid)
    return win


def _phase_two(table, state: _CohortState, result, ph2: np.ndarray,
               pos: np.ndarray, san=NULL_SANITIZER,
               prof=NULL_PROFILER) -> tuple[bool, int, int]:
    """Complete every held lock: upsert, place, or evict, then release.

    Classifies all locked warps from a start-of-round snapshot and
    applies the whole round vectorized.  When a key-coincidence hazard
    makes the order of operations observable, the alternate-bucket
    probes are re-resolved by :func:`_resolve_hazard` and the value
    writes land last-writer-wins in permutation order — still without
    leaving the vectorized path.  Returns ``(hazard, n_done, n_dead)``:
    whether the round was hazardous, how many lanes completed, and how
    many warps finished their last lane.
    """
    cap = table.subtables[0].bucket_capacity
    tgt = state.lk_target[ph2]
    bkt = state.lk_bucket[ph2]
    ldr = state.lk_leader[ph2]
    key = state.keys[ph2, ldr]
    val = state.values[ph2, ldr]
    mcount = len(ph2)

    own = np.empty((mcount, cap), dtype=np.uint64)
    for t in range(table.num_tables):
        g = np.flatnonzero(tgt == t)
        if len(g):
            own[g] = table.subtables[t].keys[bkt[g]]

    has_exist, exist_slot = _first_slot(own == key[:, None])
    miss = np.flatnonzero(~has_exist)

    # Alternate-bucket probe for every own-bucket miss.
    alt_t = np.empty(len(miss), dtype=np.int64)
    alt_b = np.empty(len(miss), dtype=np.int64)
    a_hit = np.zeros(len(miss), dtype=bool)
    a_slot = np.zeros(len(miss), dtype=np.int64)
    if len(miss):
        alt_t = table.pair_hash.alternate_table(key[miss], tgt[miss])
        for t in range(table.num_tables):
            g = np.flatnonzero(alt_t == t)
            if len(g):
                st = table.subtables[t]
                alt_b[g] = table.bucket_for(t, key[miss][g])
                hit, slots = _first_slot(
                    st.keys[alt_b[g]] == key[miss][g][:, None])
                a_hit[g] = hit
                a_slot[g] = slots

    has_free, free_slot = _first_slot(own[miss] == EMPTY)
    place = miss[~a_hit & has_free]
    evict = miss[~a_hit & ~has_free]

    # Hazard H1: two in-flight copies of one key — placement/update
    # order decides which value survives and whether a second probe
    # sees the first copy.  Hazard H2: an eviction removes (or has its
    # victim's value overwritten by) a key some other warp is probing
    # for in the evicting bucket this round.  Both require carried-key
    # coincidences; either forces the ordered hazard resolution.
    hazard = len(np.unique(key)) != mcount
    vict_rank = np.empty(0, dtype=np.int64)
    if len(evict):
        vict_rank = np.empty(len(evict), dtype=np.int64)
        vict_rank[np.argsort(pos[ph2[evict]], kind="stable")] = np.arange(
            len(evict))
        vslot = (table._victim_counter + vict_rank + bkt[evict]) % cap
        victim_key = own[evict, vslot]
        if not hazard and len(miss):
            e_lock = state.lk_lockid[ph2[evict]]
            e_order = np.argsort(e_lock)
            e_lock_s = e_lock[e_order]
            e_vkey_s = victim_key[e_order]
            probe_lock = (alt_t << 40) | alt_b
            where = np.searchsorted(e_lock_s, probe_lock)
            where_c = np.clip(where, 0, len(e_lock_s) - 1)
            same = e_lock_s[where_c] == probe_lock
            hazard = bool(np.any(same & (e_vkey_s[where_c] == key[miss])))

    victim_val = None
    if hazard:
        (a_hit, a_slot, place, evict, vslot, victim_key,
         victim_val) = _resolve_hazard(
            table, state, ph2, pos, tgt, bkt, key, val, own, miss,
            alt_t, alt_b, a_hit, a_slot, has_free, free_slot, cap)

    # ---- vectorized apply (ordering resolved above if observable) ----
    n_miss = len(miss)
    n_up = mcount - n_miss
    n_ahit = int(a_hit.sum())
    # Upserts pay one write; every miss pays the alternate read, then
    # one more write whichever way it resolves (value / place / swap).
    result.memory_transactions += n_up + 2 * n_miss
    result.completed_ops += n_up + n_ahit + len(place)
    result.evictions += len(evict)

    exist = np.flatnonzero(has_exist)
    if hazard:
        _apply_hazard_round(table, state, ph2, pos, tgt, bkt, key, val,
                            exist, exist_slot, miss, alt_t, alt_b,
                            a_hit, a_slot, place, free_slot, evict,
                            vslot, cap)
        if len(evict):
            table._victim_counter += len(evict)
    else:
        for t in range(table.num_tables):
            st = table.subtables[t]
            g = exist[tgt[exist] == t]
            if len(g):
                st.values[bkt[g], exist_slot[g]] = val[g]
            gp = place[tgt[place] == t]
            if len(gp):
                pslot = free_slot[np.searchsorted(miss, gp)]
                st.keys[bkt[gp], pslot] = key[gp]
                st.values[bkt[gp], pslot] = val[gp]
                st.size += len(gp)
        if n_ahit:
            hit_rows = np.flatnonzero(a_hit)
            for t in range(table.num_tables):
                g = hit_rows[alt_t[hit_rows] == t]
                if len(g):
                    table.subtables[t].values[alt_b[g], a_slot[g]] = val[
                        miss[g]]
        if len(evict):
            victim_val = np.empty(len(evict), dtype=np.uint64)
            for t in range(table.num_tables):
                g = np.flatnonzero(tgt[evict] == t)
                if len(g):
                    st = table.subtables[t]
                    rows = evict[g]
                    victim_val[g] = st.values[bkt[rows], vslot[g]]
                    st.keys[bkt[rows], vslot[g]] = key[rows]
                    st.values[bkt[rows], vslot[g]] = val[rows]
            table._victim_counter += len(evict)

    if len(evict):
        # The evicted pair continues on the leader's lane, retargeted
        # at the victim's alternate subtable; the lane stays active.
        e_warp = ph2[evict]
        e_lane = ldr[evict]
        state.keys[e_warp, e_lane] = victim_key
        state.values[e_warp, e_lane] = victim_val
        state.targets[e_warp, e_lane] = table.pair_hash.alternate_table(
            victim_key, tgt[evict])
        if state.depth is not None:
            # The victims continue on their lanes one eviction deeper.
            state.depth[e_warp, e_lane] += 1

    done = np.concatenate([exist, miss[a_hit], place])
    n_done = len(done)
    n_dead = 0
    if n_done:
        d_warp = ph2[done]
        d_lane = ldr[done]
        state.active[d_warp] &= ~(_ONE << d_lane.astype(np.uint64))
        n_dead = int((state.active[d_warp] == 0).sum())
        state.next_start[d_warp] = (d_lane + 1) % WARP_WIDTH
        if state.depth is not None:
            prof.observe_chains(state.depth[d_warp, d_lane])
    if san.enabled:
        # Mirror the warp engine's per-warp access log for this round:
        # upsert/place/evict are bucket writes under the warp's own
        # lock; an alternate-bucket probe is a sanctioned lock-free
        # read, and an alternate hit is a single-word value update.
        lids = state.lk_lockid[ph2]
        for i in range(mcount):
            w = int(ph2[i])
            lid = int(lids[i])
            if has_exist[i]:
                san.record_access(w, "write", "bucket", lid,
                                  site=_SITE_PH2)
            else:
                j = int(np.searchsorted(miss, i))
                a_lock = (int(alt_t[j]) << 40) | int(alt_b[j])
                san.record_access(w, "probe", "bucket", a_lock,
                                  site=_SITE_PH2)
                if a_hit[j]:
                    san.record_access(w, "atomic", "value", a_lock,
                                      site=_SITE_PH2)
                else:
                    san.record_access(w, "write", "bucket", lid,
                                      site=_SITE_PH2)
            san.on_lock_release(w, lid, site=_SITE_PH2)
    state.locked[ph2] = False
    return hazard, n_done, n_dead


def _resolve_hazard(table, state: _CohortState, ph2: np.ndarray,
                    pos: np.ndarray, tgt: np.ndarray, bkt: np.ndarray,
                    key: np.ndarray, val: np.ndarray, own: np.ndarray,
                    miss: np.ndarray, alt_t: np.ndarray,
                    alt_b: np.ndarray, a_hit0: np.ndarray,
                    a_slot0: np.ndarray, has_free: np.ndarray,
                    free_slot: np.ndarray, cap: int):
    """Re-resolve alternate-bucket probes under a key-coincidence hazard.

    In a hazardous round a warp's alternate probe can observe a key
    written earlier in the same round by the probed bucket's lock
    holder.  Own-bucket ballots stay snapshot-stable regardless (only
    the holder writes keys into a locked bucket), so the only mutable
    outcome is each miss row's alternate probe — and it depends solely
    on the single key write of the probed bucket's holder, a warp
    acting strictly earlier in the permutation.  That dependency graph
    is a forest pointing at strictly earlier positions, so iterating
    the probe recomputation from the start-of-round snapshot converges
    in at most ``mcount`` steps to exactly the outcomes the reference
    engine observes when it steps warps in permutation order.

    Returns the final ``(a_hit, a_slot, place, evict, vslot,
    victim_key, victim_val)``; storage is *not* touched.
    """
    mcount = len(ph2)
    nm = len(miss)
    pos2 = pos[ph2]
    lockids = state.lk_lockid[ph2]
    probe_lock = (alt_t << np.int64(40)) | alt_b
    # The ph2-local row holding each probed bucket's lock, if any; its
    # write is visible only to probers acting after it.
    ho = np.argsort(lockids)
    lsort = lockids[ho]
    where = np.clip(np.searchsorted(lsort, probe_lock), 0,
                    max(mcount - 1, 0))
    holder = np.where(lsort[where] == probe_lock, ho[where], -1)
    hvalid = holder >= 0
    hvalid[hvalid] = pos2[holder[hvalid]] < pos2[miss[hvalid]]

    vc0 = table._victim_counter
    nh = a_hit0.copy()
    ns = a_slot0.copy()
    ev_m = np.flatnonzero(~nh & ~has_free)
    vslot = np.empty(0, dtype=np.int64)
    for _ in range(mcount + 2):
        # Key-write slot of every ph2 row under the current outcomes:
        # EXIST and ALT_HIT write no key (an upsert rewrites the same
        # key — no content change); PLACE fills its snapshot-free slot;
        # EVICT overwrites its victim slot, counter ranked among the
        # current evictors in permutation order.
        wslot = np.full(mcount, -1, dtype=np.int64)
        pl_m = np.flatnonzero(~nh & has_free)
        wslot[miss[pl_m]] = free_slot[pl_m]
        ev_m = np.flatnonzero(~nh & ~has_free)
        vslot = np.empty(len(ev_m), dtype=np.int64)
        if len(ev_m):
            rank = np.empty(len(ev_m), dtype=np.int64)
            rank[np.argsort(pos2[miss[ev_m]],
                            kind="stable")] = np.arange(len(ev_m))
            vslot = (vc0 + rank + bkt[miss[ev_m]]) % cap
            wslot[miss[ev_m]] = vslot
        # Recompute every probe from the snapshot plus its holder's
        # single key write (if the holder acts first).
        sH = np.full(nm, -1, dtype=np.int64)
        kH = np.zeros(nm, dtype=np.uint64)
        sH[hvalid] = wslot[holder[hvalid]]
        kH[hvalid] = key[holder[hvalid]]
        no_write = sH < 0
        kmatch = ~no_write & (kH == key[miss])
        base = a_hit0 & (no_write | (a_slot0 != sH))
        new_nh = base | kmatch
        new_ns = np.where(
            kmatch & base, np.minimum(a_slot0, sH),
            np.where(kmatch, sH, np.where(base, a_slot0, 0)))
        if (np.array_equal(new_nh, nh)
                and np.array_equal(new_ns, ns)):
            break
        nh = new_nh
        ns = new_ns
    place = miss[np.flatnonzero(~nh & has_free)]
    evict = miss[ev_m]
    victim_key = own[evict, vslot]

    # Victim values are read live at the evictor's turn: start from the
    # snapshot and override with the latest earlier-position
    # alternate-hit value write landing in the same slot, if any.
    victim_val = np.empty(len(evict), dtype=np.uint64)
    for t in range(table.num_tables):
        g = np.flatnonzero(tgt[evict] == t)
        if len(g):
            st = table.subtables[t]
            victim_val[g] = st.values[bkt[evict[g]], vslot[g]]
    ah_m = np.flatnonzero(nh)
    if len(ah_m) and len(evict):
        w_total = len(pos)
        w_addr = probe_lock[ah_m] * cap + ns[ah_m]
        w_pos = pos2[miss[ah_m]]
        e_addr = lockids[evict] * cap + vslot
        e_pos = pos2[evict]
        _uq, inv = np.unique(np.concatenate([w_addr, e_addr]),
                             return_inverse=True)
        winv = inv[:len(w_addr)]
        einv = inv[len(w_addr):]
        combined = winv * w_total + w_pos
        order = np.argsort(combined)
        srt = combined[order]
        r = np.searchsorted(srt, einv * w_total + e_pos)
        cand = order[np.maximum(r - 1, 0)]
        ok = (r > 0) & (winv[cand] == einv)
        victim_val[ok] = val[miss[ah_m[cand[ok]]]]
    return nh, ns, place, evict, vslot, victim_key, victim_val


def _apply_hazard_round(table, state: _CohortState, ph2: np.ndarray,
                        pos: np.ndarray, tgt: np.ndarray,
                        bkt: np.ndarray, key: np.ndarray,
                        val: np.ndarray, exist: np.ndarray,
                        exist_slot: np.ndarray, miss: np.ndarray,
                        alt_t: np.ndarray, alt_b: np.ndarray,
                        a_hit: np.ndarray, a_slot: np.ndarray,
                        place: np.ndarray, free_slot: np.ndarray,
                        evict: np.ndarray, vslot: np.ndarray,
                        cap: int) -> None:
    """Apply a hazardous round's writes with reference write ordering.

    Key writes are conflict-free (one lock holder per bucket) and land
    directly; value writes from different warps can collide on one
    slot (an upsert racing an alternate hit on a freshly written key),
    so every value write carries its warp's permutation position and
    each slot keeps the last writer — exactly the state the reference
    replay leaves behind.
    """
    # Keys and sizes: PLACE fills a snapshot-EMPTY slot, EVICT
    # overwrites its victim's key.  The hazard round's access stream is
    # emitted by _phase_two for the whole round (one record per held
    # lock), so these resolved writes are already on the sanitizer's
    # log — re-recording here would double-count them.
    for t in range(table.num_tables):
        st = table.subtables[t]
        gp = place[tgt[place] == t]
        if len(gp):
            pslot = free_slot[np.searchsorted(miss, gp)]
            st.keys[bkt[gp], pslot] = key[gp]  # sanitize: allow(unguarded-structural-write)
            st.size += len(gp)
        ge = np.flatnonzero(tgt[evict] == t)
        if len(ge):
            st.keys[bkt[evict[ge]], vslot[ge]] = key[evict[ge]]  # sanitize: allow(unguarded-structural-write)
    # Value writes, last-writer-wins by permutation position.
    pos2 = pos[ph2]
    lockids = state.lk_lockid[ph2]
    ah_m = np.flatnonzero(a_hit)
    pl_m = np.searchsorted(miss, place)
    addr = np.concatenate([
        lockids[exist] * cap + exist_slot[exist],
        (((alt_t[ah_m] << np.int64(40)) | alt_b[ah_m]) * cap
         + a_slot[ah_m]),
        lockids[place] * cap + free_slot[pl_m],
        lockids[evict] * cap + vslot,
    ])
    if not len(addr):
        return
    wval = np.concatenate([val[exist], val[miss[ah_m]], val[place],
                           val[evict]])
    wpos = np.concatenate([pos2[exist], pos2[miss[ah_m]], pos2[place],
                           pos2[evict]])
    order = np.lexsort((wpos, addr))
    addr_s = addr[order]
    last = np.empty(len(addr_s), dtype=bool)
    last[-1] = True
    last[:-1] = addr_s[1:] != addr_s[:-1]
    sel = order[last]
    lock = addr[sel] // cap
    slot = addr[sel] % cap
    t_of = lock >> 40
    b_of = lock & ((1 << 40) - 1)
    v_of = wval[sel]
    for t in range(table.num_tables):
        g = np.flatnonzero(t_of == t)
        if len(g):
            table.subtables[t].values[b_of[g], slot[g]] = v_of[g]
