"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library version, the simulated device, and the paper's
    default parameters.
``demo``
    Run a small end-to-end demonstration (insert/find/delete with
    automatic resizing) and print the resulting statistics.
``datasets``
    Print Table 2 (paper statistics and generated surrogate statistics
    at a chosen scale).
``dynamic``
    Run the dynamic-workload comparison (DyCuckoo vs MegaKV vs SlabHash)
    on one dataset and print throughput, fill-factor tracking, and peak
    memory — a one-command version of Figures 11/12.
``profile``
    Deep-profile DyCuckoo: derived per-batch kernel metrics, a
    lane-faithful deep pass on both execution engines (occupancy and
    divergence timelines, lock-contention heatmap, probe/chain
    histograms, cross-checked for identity), a dynamic pass with
    resizes (fill timeline, batch-latency percentiles), and a seeded
    flight-recorder demonstration.  ``--html`` writes a self-contained
    report; ``--smoke`` is CI's profiler health check.
``trace``
    Run a dynamic workload on DyCuckoo with telemetry enabled and write
    a Chrome-trace JSON (``chrome://tracing`` / Perfetto), optionally a
    JSON-lines event log and a Prometheus metrics dump.  ``--smoke``
    runs a fast built-in configuration and fails if the trace misses
    the expected structure (CI's telemetry health check).

``shard``
    Run a mixed workload through the sharded front-end
    (:class:`repro.shard.ShardedDyCuckoo`), differentially check it
    against a single table, and report per-shard balance plus the
    simulated SM-group speedup.  ``--sweep`` scans S in {1, 2, 4, 8}.

``kernel``
    Run one mixed insert/find/delete batch through the lane-faithful
    kernels and report cost counters per execution engine.  With
    ``--engine both`` (the default) the per-warp reference and the
    vectorized cohort engine both run, their results and counters are
    cross-checked for exact equality, and the speedup is reported.

``faults``
    Run a seeded chaos session: a mixed insert/find/delete workload with
    fault injection at every site (CAS storms, lock stalls, allocation
    failures, resize aborts), continuously differentially checked
    against a plain-dict model, with structural invariants verified per
    batch.  Prints a survival report; ``--script``/``--save-script``
    replay or capture the exact fault sequence; ``--smoke`` is CI's fast
    robustness health check.

``scenarios``
    Run composed soak scenarios — YCSB mixes with hot-key storms,
    delete/reinsert churn under tight resize bands, seeded chaos fault
    plans with stash degradation, the sanitizer attached, and
    memory-budget eviction — and grade each against its latency SLO
    and structural invariants.  Every run emits a
    ``SCORECARD_<name>.json``; ``--list`` shows the registry,
    ``--matrix`` runs it all, ``--smoke`` is CI's scaled-down check
    with the dict oracle attached.

``demo``, ``dynamic``, and ``profile`` all take ``--seed`` (exact
reproducibility) and ``--json`` (machine-readable results on stdout
instead of the human-readable rendering).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

import numpy as np


def _emit_json(payload) -> None:
    """Print one machine-readable JSON document to stdout."""
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_info(_args) -> int:
    import repro
    from repro.core.config import PAPER_PARAMETERS
    from repro.gpusim import GTX_1080

    print(f"repro {repro.__version__} — DyCuckoo reproduction (ICDE 2021)")
    print(f"simulated device: {GTX_1080.name} "
          f"({GTX_1080.num_sms} SMs, {GTX_1080.total_cores} cores, "
          f"{GTX_1080.mem_bandwidth_gbps:.0f} GB/s, "
          f"{GTX_1080.device_memory_bytes / 2**30:.0f} GB)")
    print("paper defaults (Table 3):")
    for name, grid in PAPER_PARAMETERS.items():
        print(f"  {name}: default {grid['default']}, "
              f"settings {grid['settings']}")
    return 0


def _cmd_demo(args) -> int:
    from repro import DyCuckooConfig, DyCuckooTable

    table = DyCuckooTable(DyCuckooConfig())
    rng = np.random.default_rng(args.seed)
    keys = rng.permutation(np.arange(args.keys, dtype=np.uint64))
    table.insert(keys, keys * np.uint64(2))
    fill_after_insert = table.load_factor
    _values, found = table.find(keys[: args.keys // 2])
    hit_rate = float(found.mean()) if len(found) else 0.0
    table.delete(keys[: int(args.keys * 0.8)])
    table.validate()
    if args.json:
        _emit_json({
            "command": "demo",
            "seed": args.seed,
            "keys": args.keys,
            "inserted": args.keys,
            "live_entries": len(table),
            "fill_after_insert": fill_after_insert,
            "find_hit_rate": hit_rate,
            "fill_after_delete": table.load_factor,
            "stats": table.stats.snapshot(),
        })
        return 0
    print(f"inserted {args.keys:,} keys, filled factor "
          f"{fill_after_insert:.1%}")
    print(f"find hit rate: {hit_rate:.1%}")
    print(f"after deleting 80%: filled factor {table.load_factor:.1%} "
          f"({table.stats.downsizes} downsizes)")
    print("validate(): ok")
    return 0


def _cmd_datasets(args) -> int:
    from repro.bench import format_table
    from repro.workloads import ALL_DATASETS

    rows = []
    for spec in ALL_DATASETS:
        keys, _values = spec.generate(scale=args.scale, seed=args.seed)
        unique = len(np.unique(keys))
        rows.append([spec.name, f"{spec.total_pairs:,}",
                     f"{spec.unique_keys:,}", f"{len(keys):,}",
                     f"{unique:,}"])
    print(format_table(
        ["dataset", "paper KVs", "paper unique",
         f"KVs @ {args.scale}", f"unique @ {args.scale}"],
        rows, title="Table 2: datasets"))
    return 0


def _cmd_dynamic(args) -> int:
    from repro.baselines import DyCuckooAdapter, MegaKVTable, SlabHashTable
    from repro.baselines.slab import slab_buckets_for_fill
    from repro.bench import format_series, format_table, run_dynamic
    from repro.core.config import DyCuckooConfig
    from repro.gpusim.metrics import CostModel
    from repro.workloads import DynamicWorkload, dataset_by_name

    spec = dataset_by_name(args.dataset)
    keys, values = spec.generate(scale=args.scale, seed=args.seed)
    expected_live = max(1, len(np.unique(keys)) // 2)
    cost_model = CostModel(overhead_scale=args.scale)

    runs = {}
    for factory in (
            lambda: DyCuckooAdapter(DyCuckooConfig(initial_buckets=8)),
            lambda: MegaKVTable(initial_buckets=32),
            lambda: SlabHashTable(
                n_buckets=slab_buckets_for_fill(expected_live, 0.85))):
        table = factory()
        workload = DynamicWorkload(keys, values, batch_size=args.batch,
                                   ratio_r=args.ratio, seed=args.seed)
        runs[table.NAME] = run_dynamic(table, workload,
                                       cost_model=cost_model)

    if args.json:
        _emit_json({
            "command": "dynamic",
            "dataset": spec.name,
            "scale": args.scale,
            "batch": args.batch,
            "ratio": args.ratio,
            "seed": args.seed,
            "approaches": {
                name: {
                    "mops": run.mops,
                    "total_ops": run.total_ops,
                    "peak_memory_bytes": run.peak_memory_bytes,
                    "fill_series": run.fill_series,
                }
                for name, run in runs.items()
            },
        })
        return 0
    print(format_table(
        ["approach", "Mops", "peak MB"],
        [[name, run.mops, run.peak_memory_bytes / 1e6]
         for name, run in runs.items()],
        title=f"dynamic workload on {spec.name} "
              f"(scale {args.scale}, r={args.ratio}, batch {args.batch})"))
    print()
    print(format_series("filled factor per batch",
                        {name: run.fill_series for name, run in runs.items()},
                        lo=0.0, hi=1.0))
    return 0


def _profile_deep_pass(engine: str, seed: int, n: int) -> tuple[dict, dict]:
    """One deep-profiler pass: a mixed kernel batch on a pre-sized table.

    Returns ``(snapshot, hazards)`` — the snapshot feeds the
    cross-engine conformance check, while the hazard counters (rounds
    that hit the vectorized key-coincidence resolver, and the lanes in
    them) are engine-side cost telemetry reported separately.
    """
    from repro import DyCuckooConfig, DyCuckooTable
    from repro.telemetry import Profiler

    rng = np.random.default_rng(seed)
    ops, keys, values = _make_mixed_workload(rng, n)
    # Pre-size so the kernels (which never resize) stay below ~50% fill.
    capacity = 16
    buckets = 8
    while 4 * buckets * capacity < n:
        buckets *= 2
    table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=buckets, bucket_capacity=capacity,
        auto_resize=False, seed=seed))
    profiler = table.set_profiler(Profiler())
    table.execute_mixed(ops, keys, values, engine=engine)
    hazards = {"rounds": profiler.hazard_rounds,
               "lanes": profiler.hazard_lanes}
    return profiler.snapshot(), hazards


def _cmd_profile(args) -> int:
    from repro import DyCuckooConfig, DyCuckooTable
    from repro.baselines import DyCuckooAdapter
    from repro.bench import run_dynamic
    from repro.faults import FaultPlan
    from repro.gpusim.metrics import CostModel
    from repro.telemetry import (FlightRecorder, Profiler, format_summary,
                                 summarize_batches)
    from repro.telemetry.profiler import profile_operation
    from repro.telemetry.report import write_html_report
    from repro.workloads import DynamicWorkload, dataset_by_name

    smoke = args.smoke
    keys_n = 2_000 if smoke else args.keys
    deep_ops = 1_200 if smoke else args.ops
    scale, batch = (0.0005, 250) if smoke else (0.001, 500)

    # Phase 0 — derived per-batch metrics (the classic report).
    table = DyCuckooTable(DyCuckooConfig())
    rng = np.random.default_rng(args.seed)
    keys = rng.permutation(np.arange(keys_n, dtype=np.uint64))
    profiles = [
        profile_operation(table, "insert", table.insert, keys, keys),
        profile_operation(table, "find", table.find, keys),
        profile_operation(table, "delete", table.delete, keys),
    ]

    # Phase 1 — deep pass through the lane-faithful kernel engines:
    # occupancy/divergence timelines, lock heatmap, probe and chain
    # histograms.  With both engines the snapshots are cross-checked.
    engines = (["warp", "cohort"] if args.engine == "both"
               else [args.engine])
    passes = {engine: _profile_deep_pass(engine, args.seed, deep_ops)
              for engine in engines}
    snapshots = {engine: snap for engine, (snap, _hz) in passes.items()}
    hazard_counts = {engine: hz for engine, (_snap, hz) in passes.items()}

    # Phase 2 — dynamic pass with resizes: per-subtable fill timeline,
    # stash samples, and batch-latency percentiles on the simulated
    # clock.
    spec = dataset_by_name("COM")
    dyn_keys, dyn_values = spec.generate(scale=scale, seed=args.seed)
    adapter = DyCuckooAdapter(DyCuckooConfig(initial_buckets=8))
    dyn_profiler = adapter.set_profiler(Profiler())
    workload = DynamicWorkload(dyn_keys, dyn_values, batch_size=batch,
                               ratio_r=0.2, seed=args.seed)
    run = run_dynamic(adapter, workload,
                      cost_model=CostModel(overhead_scale=scale))
    latency = summarize_batches(run.batches)
    dynamic = dyn_profiler.snapshot()

    # Phase 3 — flight-recorder demonstration: a seeded fault plan that
    # aborts every resize trips the recorder and dumps bundles.
    rec_table = DyCuckooTable(DyCuckooConfig(initial_buckets=8))
    rec_table.set_profiler(Profiler())
    recorder = rec_table.set_recorder(FlightRecorder())
    rec_table.set_fault_plan(FaultPlan(
        seed=args.seed, rates={"resize.abort.trigger": 1.0}))
    slots = rec_table.total_slots
    rec_keys = rng.permutation(
        np.arange(1, int(slots * 0.88) + 1, dtype=np.uint64))
    rec_table.insert(rec_keys, rec_keys)
    recorder_summary = recorder.summary()

    report = {
        "command": "profile",
        "seed": args.seed,
        "keys": keys_n,
        "ops": deep_ops,
        "profiles": [dataclasses.asdict(p) for p in profiles],
        "engines": snapshots,
        "hazards": hazard_counts,
        "dynamic": dynamic,
        "latency": latency,
        "recorder": recorder_summary,
    }
    if len(engines) == 2:
        report["conformant"] = snapshots["warp"] == snapshots["cohort"]

    written = None
    if args.html:
        written = write_html_report(args.html, report)
        report["html"] = written

    if args.json:
        _emit_json(report)
    else:
        for profile in profiles:
            print(profile)
        for engine in engines:
            snap = snapshots[engine]
            rounds = sum(len(k["rounds"]) for k in snap["kernels"])
            conflicts = sum(c["conflicts"] for c in snap["lock_heatmap"])
            hz = hazard_counts[engine]
            print(f"deep pass [{engine}]: {len(snap['kernels'])} kernels, "
                  f"{rounds} occupancy samples, "
                  f"{len(snap['lock_heatmap'])} heatmap cells "
                  f"({conflicts} conflicts), "
                  f"{hz['rounds']} hazard rounds "
                  f"({hz['lanes']} lanes), "
                  f"probe lengths {snap['probe_lengths']}, "
                  f"chain depths {snap['chain_depths']}")
        if "conformant" in report:
            print("engine snapshots: "
                  + ("identical" if report["conformant"] else "DIVERGENT"))
        print(f"dynamic pass: {len(run.batches)} batches, "
              f"{len(dynamic['fill_timeline'])} fill samples "
              f"({sum(1 for p in dynamic['fill_timeline'] if p['event'] != 'batch')} resizes)")
        print("batch latency: " + format_summary(latency))
        print(f"flight recorder: {recorder_summary['trips']} trips, "
              f"{recorder_summary['bundles']} bundles retained")
        if written:
            print(f"wrote {written}")

    problems: list[str] = []
    if smoke:
        for engine in engines:
            snap = snapshots[engine]
            if not any(k["rounds"] for k in snap["kernels"]):
                problems.append(f"{engine}: empty divergence timeline")
            if not snap["lock_heatmap"]:
                problems.append(f"{engine}: empty lock heatmap")
            if not snap["probe_lengths"]:
                problems.append(f"{engine}: empty probe-length histogram")
        if report.get("conformant") is False:
            problems.append("engine snapshots diverged")
        if not dynamic["fill_timeline"]:
            problems.append("dynamic pass recorded no fill timeline")
        if not latency["count"]:
            problems.append("no batch latency samples")
        if not recorder_summary["trips"]:
            problems.append("seeded fault plan never tripped the recorder")
        if problems:
            print("profile smoke check FAILED: " + "; ".join(problems),
                  file=sys.stderr)
            return 1
        if not args.json:
            print("profile smoke check ok")
    return 1 if problems else 0


def _cmd_trace(args) -> int:
    from repro.baselines import DyCuckooAdapter
    from repro.bench import run_dynamic
    from repro.core.config import DyCuckooConfig
    from repro.gpusim.metrics import CostModel
    from repro.telemetry import Telemetry
    from repro.telemetry.export import (prometheus_text, write_chrome_trace,
                                        write_jsonl)
    from repro.workloads import DynamicWorkload, dataset_by_name

    # --smoke: a fast fixed configuration with structural validation,
    # used as CI's telemetry health check.
    scale = 0.0005 if args.smoke else args.scale
    batch = 250 if args.smoke else args.batch

    spec = dataset_by_name(args.workload)
    keys, values = spec.generate(scale=scale, seed=args.seed)
    table = DyCuckooAdapter(DyCuckooConfig(initial_buckets=8))
    telemetry = table.set_telemetry(Telemetry())
    workload = DynamicWorkload(keys, values, batch_size=batch,
                               ratio_r=args.ratio, seed=args.seed)
    run = run_dynamic(table, workload, cost_model=CostModel(
        overhead_scale=scale))

    out = args.out
    if out is None:
        out = f"trace_{spec.name.lower()}.json"
    tracer = telemetry.tracer
    path = write_chrome_trace(tracer, out, metadata={
        "workload": spec.name, "scale": scale, "batch": batch,
        "ratio": args.ratio, "seed": args.seed})
    written = [str(path)]
    if args.jsonl:
        written.append(str(write_jsonl(tracer, args.jsonl)))
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(telemetry.metrics))
        written.append(args.metrics_out)

    summary = {
        "command": "trace",
        "workload": spec.name,
        "batches": len(run.batches),
        "mops": run.mops,
        "events": len(tracer.events),
        "spans": len(tracer.spans()),
        "resize_upsizes": (len(tracer.spans("resize.upsize"))
                           + len(tracer.spans("resize.upsize_epoch"))),
        "resize_downsizes": (len(tracer.spans("resize.downsize"))
                             + len(tracer.spans("resize.downsize_epoch"))),
        "resize_triggers": len(tracer.instants("resize.trigger")),
        "fill_samples": len(tracer.counters("fill.subtable")),
        "written": written,
    }
    if args.json:
        _emit_json(summary)
    else:
        print(f"{spec.name}: {summary['batches']} batches, "
              f"{run.mops:.1f} simulated Mops")
        print(f"trace: {summary['events']} events "
              f"({summary['spans']} spans, "
              f"{summary['resize_upsizes']} upsizes, "
              f"{summary['resize_downsizes']} downsizes, "
              f"{summary['fill_samples']} fill samples)")
        for item in written:
            print(f"wrote {item}")
        print("open in chrome://tracing or https://ui.perfetto.dev")

    if args.smoke:
        problems = []
        if summary["spans"] == 0:
            problems.append("no spans recorded")
        if summary["resize_upsizes"] == 0:
            problems.append("no resize.upsize span (table never grew)")
        if summary["resize_triggers"] == 0:
            problems.append("no resize.trigger instant")
        if summary["fill_samples"] != len(run.batches):
            problems.append("fill gauge samples != batches")
        if problems:
            print("telemetry smoke check FAILED: " + "; ".join(problems),
                  file=sys.stderr)
            return 1
        print("telemetry smoke check ok")
    return 0


def _run_sharded(num_shards: int, keys: np.ndarray, values: np.ndarray,
                 batch: int, reference: dict) -> dict:
    """Drive one shard count through the standard mixed protocol."""
    from repro.core.config import DyCuckooConfig
    from repro.shard import ShardedDyCuckoo, speedup_for_table

    table = ShardedDyCuckoo(num_shards=num_shards,
                            config=DyCuckooConfig(initial_buckets=8))
    before = [stats.snapshot() for stats in table.shard_stats()]
    for start in range(0, len(keys), batch):
        segment = slice(start, start + batch)
        table.insert(keys[segment], values[segment])
    _found_values, found = table.find(keys)
    removed = table.delete(keys[: len(keys) // 2])
    table.validate()
    diverged = table.to_dict() != reference

    op_keys = np.concatenate([keys, keys, keys[: len(keys) // 2]])
    shard_ops = np.bincount(table.shard_ids(op_keys),
                            minlength=num_shards).tolist()
    report = speedup_for_table(table, before, shard_ops)
    return {
        "num_shards": num_shards,
        "find_hit_rate": float(found.mean()),
        "delete_hit_rate": float(removed.mean()),
        "shard_loads": table.shard_loads(),
        "live_entries": len(table),
        "diverged_from_reference": diverged,
        "report": report.to_dict(),
    }


def _run_parallel_shard_check(args) -> dict:
    """Differential leg for the process-pool executor.

    Runs the same mixed workload through a serial and a
    ``parallel_workers`` sharded front-end and checks that results and
    final storage are bit-identical (the executor's determinism
    contract), reporting wall-clock for both.
    """
    import time

    from repro.core.config import DyCuckooConfig
    from repro.shard import ShardedDyCuckoo

    rng = np.random.default_rng(args.seed + 1)
    ops, keys, values = _make_mixed_workload(rng, max(args.keys, 4))
    shards = max(args.shards, 2)
    config = DyCuckooConfig(initial_buckets=8)

    serial = ShardedDyCuckoo(num_shards=shards, config=config)
    t0 = time.perf_counter()
    rs = serial.execute_mixed(ops, keys, values, engine="cohort")
    serial_s = time.perf_counter() - t0

    with ShardedDyCuckoo(num_shards=shards, config=config,
                         parallel_workers=args.parallel) as parallel:
        t0 = time.perf_counter()
        rp = parallel.execute_mixed(ops, keys, values, engine="cohort")
        parallel_s = time.perf_counter() - t0
        identical = (np.array_equal(rs.values, rp.values)
                     and np.array_equal(rs.found, rp.found)
                     and np.array_equal(rs.removed, rp.removed)
                     and rs.runs == rp.runs
                     and serial.to_dict() == parallel.to_dict())
    return {
        "workers": args.parallel,
        "num_shards": shards,
        "ops": len(ops),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "identical": identical,
    }


def _cmd_shard(args) -> int:
    from repro import DyCuckooConfig, DyCuckooTable
    from repro.bench import format_table

    rng = np.random.default_rng(args.seed)
    keys = rng.choice(np.arange(1, args.keys * 20, dtype=np.uint64),
                      size=args.keys, replace=False)
    values = rng.integers(1, 1 << 40, size=args.keys, dtype=np.uint64)

    reference_table = DyCuckooTable(DyCuckooConfig(initial_buckets=8))
    for start in range(0, len(keys), args.batch):
        segment = slice(start, start + args.batch)
        reference_table.insert(keys[segment], values[segment])
    reference_table.find(keys)
    reference_table.delete(keys[: len(keys) // 2])
    reference = reference_table.to_dict()

    shard_counts = (1, 2, 4, 8) if args.sweep else (args.shards,)
    results = [_run_sharded(s, keys, values, args.batch, reference)
               for s in shard_counts]
    diverged = any(r["diverged_from_reference"] for r in results)
    parallel_check = (_run_parallel_shard_check(args)
                      if args.parallel >= 2 else None)
    if parallel_check is not None and not parallel_check["identical"]:
        diverged = True

    if args.json:
        payload = {
            "command": "shard",
            "keys": args.keys,
            "batch": args.batch,
            "seed": args.seed,
            "results": results,
        }
        if parallel_check is not None:
            payload["parallel"] = parallel_check
        _emit_json(payload)
        return 1 if diverged else 0

    print(format_table(
        ["S", "serial Mops", "parallel Mops", "speedup", "lock fraction",
         "shard loads"],
        [[r["num_shards"], r["report"]["serial_mops"],
          r["report"]["parallel_mops"], r["report"]["speedup"],
          r["report"]["resize_lock_fraction"],
          "/".join(str(n) for n in r["shard_loads"])]
         for r in results],
        title=f"sharded front-end: {args.keys:,} keys, "
              f"batch {args.batch}"))
    for r in results:
        if r["diverged_from_reference"]:
            print(f"S={r['num_shards']}: DIVERGED from the single-table "
                  f"reference", file=sys.stderr)
    if parallel_check is not None:
        pc = parallel_check
        verdict = "identical" if pc["identical"] else "DIVERGED"
        print(f"parallel executor ({pc['workers']} workers, "
              f"S={pc['num_shards']}): {verdict} to serial — "
              f"serial {pc['serial_seconds']:.3f}s, "
              f"parallel {pc['parallel_seconds']:.3f}s",
              file=sys.stderr if not pc["identical"] else sys.stdout)
    if not diverged:
        print("differential check ok: every shard count matches the "
              "single-table reference")
    return 1 if diverged else 0


def _make_mixed_workload(rng: np.random.Generator, n: int):
    """Run-structured mixed workload: ops, keys, values arrays."""
    from repro.core.batch_ops import OP_DELETE, OP_FIND, OP_INSERT

    ops = np.empty(n, dtype=np.int64)
    pos = 0
    while pos < n:
        kind = rng.choice([OP_INSERT, OP_FIND, OP_DELETE],
                          p=[0.5, 0.3, 0.2])
        length = min(int(rng.integers(50, 500)), n - pos)
        ops[pos:pos + length] = kind
        pos += length
    keyspace = max(2, n // 2)
    keys = rng.integers(1, keyspace + 1, n).astype(np.uint64)
    values = rng.integers(1, 1 << 32, n).astype(np.uint64)
    return ops, keys, values


def _cmd_kernel(args) -> int:
    import time

    from repro import DyCuckooConfig, DyCuckooTable

    rng = np.random.default_rng(args.seed)
    n = args.ops
    ops, keys, values = _make_mixed_workload(rng, n)

    # Pre-size so the kernels (which never resize) stay below ~50% fill:
    # at most n/2 distinct keys are ever live, so target ~n total slots.
    capacity = 16
    buckets = 8
    while 4 * buckets * capacity < n:
        buckets *= 2

    def fresh() -> DyCuckooTable:
        return DyCuckooTable(DyCuckooConfig(
            initial_buckets=buckets, bucket_capacity=capacity,
            auto_resize=False, seed=args.seed))

    engines = ["warp", "cohort"] if args.engine == "both" else [args.engine]
    outcomes = {}
    for engine in engines:
        table = fresh()
        start = time.perf_counter()
        result = table.execute_mixed(ops, keys, values, engine=engine)
        elapsed = time.perf_counter() - start
        outcomes[engine] = (table, result, elapsed)

    problems: list[str] = []
    if len(engines) == 2:
        tw, rw, _ = outcomes["warp"]
        tc, rc, _ = outcomes["cohort"]
        if not (np.array_equal(rw.values, rc.values)
                and np.array_equal(rw.found, rc.found)
                and np.array_equal(rw.removed, rc.removed)):
            problems.append("engine results diverged")
        if rw.kernel != rc.kernel:
            problems.append(
                f"cost counters diverged: {rw.kernel} != {rc.kernel}")
        for t_idx, (sw, sc) in enumerate(zip(tw.subtables, tc.subtables)):
            if not (np.array_equal(sw.keys, sc.keys)
                    and np.array_equal(sw.values, sc.values)):
                problems.append(f"subtable {t_idx} storage diverged")

    report = {
        "command": "kernel",
        "ops": n,
        "seed": args.seed,
        "buckets": buckets,
        "bucket_capacity": capacity,
        "engines": {},
        "conformant": not problems,
        "problems": problems,
    }
    for engine in engines:
        _table, result, elapsed = outcomes[engine]
        report["engines"][engine] = {
            "seconds": elapsed,
            "ops_per_sec": n / elapsed if elapsed else float("inf"),
            "runs": result.runs,
            **dataclasses.asdict(result.kernel),
        }
    if len(engines) == 2:
        report["speedup"] = (outcomes["warp"][2]
                             / max(outcomes["cohort"][2], 1e-12))

    if args.json:
        _emit_json(report)
    else:
        print(f"mixed batch: {n:,} ops over "
              f"{outcomes[engines[0]][1].runs} homogeneous runs "
              f"(seed {args.seed})")
        for engine in engines:
            stats = report["engines"][engine]
            print(f"  {engine:6s}: {stats['seconds']:.3f}s "
                  f"({stats['ops_per_sec']:,.0f} ops/s), "
                  f"{stats['rounds']} rounds, "
                  f"{stats['memory_transactions']} transactions, "
                  f"{stats['evictions']} evictions, "
                  f"{stats['lock_conflicts']} lock conflicts")
        if "speedup" in report:
            print(f"cohort speedup: {report['speedup']:.1f}x")
        if problems:
            print("CONFORMANCE FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
        elif len(engines) == 2:
            print("conformance: results, storage, and cost counters "
                  "identical across engines")
    return 1 if problems else 0


def _cmd_faults(args) -> int:
    from repro import DyCuckooConfig, DyCuckooTable
    from repro.core.analysis import check_invariants
    from repro.errors import CapacityError
    from repro.faults import FaultPlan, default_chaos_plan
    from repro.gpusim.atomics import AtomicMemory
    from repro.gpusim.memory_manager import DeviceMemoryManager
    from repro.kernels.insert import run_voter_insert_kernel

    batches = 10 if args.smoke else args.batches
    batch = 200 if args.smoke else args.batch
    keyspace = max(batch * 4, args.keyspace)

    if args.script:
        with open(args.script, encoding="utf-8") as handle:
            plan = FaultPlan.from_script(handle.read())
    else:
        plan = default_chaos_plan(seed=args.seed, intensity=args.intensity)

    config = DyCuckooConfig(initial_buckets=16, bucket_capacity=8,
                            min_buckets=8)
    table = DyCuckooTable(config)
    table.set_fault_plan(plan)

    # Phase 1: differential chaos on the vectorized table — every batch
    # is checked against a plain-dict model and the invariant suite.
    model: dict[int, int] = {}
    rng = np.random.default_rng(args.seed)
    problems: list[str] = []
    total_ops = 0
    for index in range(batches):
        ins_keys = rng.integers(0, keyspace, batch).astype(np.uint64)
        ins_values = rng.integers(0, 1 << 32, batch).astype(np.uint64)
        table.insert(ins_keys, ins_values)
        for k, v in zip(ins_keys.tolist(), ins_values.tolist()):
            model[k] = v

        find_keys = rng.integers(0, keyspace, batch // 2).astype(np.uint64)
        values, found = table.find(find_keys)
        for k, v, hit in zip(find_keys.tolist(), values.tolist(),
                             found.tolist()):
            if hit != (k in model) or (hit and v != model[k]):
                problems.append(f"batch {index}: FIND({k}) diverged")
        del_keys = rng.integers(0, keyspace, batch // 4).astype(np.uint64)
        removed = table.delete(del_keys)
        seen: set[int] = set()
        for k, hit in zip(del_keys.tolist(), removed.tolist()):
            expect = k in model and k not in seen
            seen.add(k)
            if hit != expect:
                problems.append(f"batch {index}: DELETE({k}) diverged")
            model.pop(k, None)
        total_ops += batch + batch // 2 + batch // 4
        try:
            check_invariants(table)
        except AssertionError as exc:
            problems.append(f"batch {index}: invariant violated: {exc}")
    if table.to_dict() != model:
        problems.append("final table state diverged from the model")

    # Phase 2: the lane-level voter kernel under lock faults (the
    # vectorized path never consults the lock/atomic sites).
    kernel_table = DyCuckooTable(DyCuckooConfig(
        initial_buckets=64, bucket_capacity=8, min_buckets=8,
        auto_resize=False))
    kernel_table.set_fault_plan(plan)
    kernel_keys = rng.integers(0, 1 << 40, 512).astype(np.uint64)
    kernel_keys = np.unique(kernel_keys)
    kernel_result = run_voter_insert_kernel(kernel_table, kernel_keys,
                                            kernel_keys + np.uint64(1),
                                            engine=args.engine)
    _kv, kernel_found = kernel_table.find(kernel_keys)
    if not bool(kernel_found.all()):
        problems.append(
            f"voter kernel lost {int((~kernel_found).sum())} inserts")

    # Phase 3: raw atomics and the device memory manager.
    memory = AtomicMemory(num_words=8, faults=plan)
    cas_wins = 0
    for attempt in range(200):
        if memory.atomic_cas(attempt % 8, 0, 1) == 0:
            cas_wins += 1
            memory.words[attempt % 8] = 0  # release
    if cas_wins == 0:
        problems.append("atomic CAS never succeeded under the fault storm")
    manager = DeviceMemoryManager(faults=plan)
    alloc_failures = 0
    for step in range(1, 51):
        try:
            manager.set_allocation("table", step * 1_000_000)
        except CapacityError:
            alloc_failures += 1

    counts = plan.fired_by_site()
    invocations = plan.invocations()
    report = {
        "command": "faults",
        "seed": plan.seed,
        "mode": "script" if args.script else "chaos",
        "batches": batches,
        "total_ops": total_ops,
        "live_entries": len(table),
        "stash_entries": len(table.stash),
        "faults_fired": len(plan.fired),
        "fired_by_site": counts,
        "invocations_by_site": invocations,
        "resize_aborts": table.stats.resize_aborts,
        "stash_pushes": table.stats.stash_pushes,
        "stash_drained": table.stats.stash_drained,
        "kernel_rounds": kernel_result.rounds,
        "kernel_lock_conflicts": kernel_result.lock_conflicts,
        "injected_cas_failures": memory.injected_failures,
        "injected_alloc_failures": manager.injected_failures,
        "problems": problems,
        "survived": not problems,
    }
    if args.save_script:
        with open(args.save_script, "w", encoding="utf-8") as handle:
            handle.write(plan.script_json())
        report["script"] = args.save_script

    if args.json:
        _emit_json(report)
    else:
        print(f"chaos session: {total_ops:,} table ops over {batches} "
              f"batches, seed {plan.seed}")
        print(f"faults fired: {len(plan.fired)} across "
              f"{len(counts)} sites")
        for site in sorted(invocations):
            print(f"  {site}: {counts.get(site, 0)} fired / "
                  f"{invocations[site]} invocations")
        print(f"recovery: {table.stats.resize_aborts} resize aborts rolled "
              f"back, {table.stats.stash_pushes} keys stashed, "
              f"{table.stats.stash_drained} drained back, "
              f"{len(table.stash)} still stashed")
        outcome = ("no lost inserts" if bool(kernel_found.all())
                   else "LOST INSERTS")
        print(f"voter kernel: {kernel_result.rounds} rounds, "
              f"{kernel_result.lock_conflicts} lock conflicts, {outcome}")
        if args.save_script:
            print(f"wrote fault script to {args.save_script}")
        if problems:
            print("SURVIVAL CHECK FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
        else:
            print("survival check ok: zero divergences, all invariants held")
    return 1 if problems else 0


def _cmd_sanitize(args) -> int:
    from repro.sanitizer.audit import run_clean_audit, run_fixture_suite
    from repro.sanitizer.contracts import check_paths
    from repro.sanitizer.lint import lint_paths

    # Pass selectors, compute-sanitizer --tool style: any selector
    # restricts the run to the named passes; none selected runs the
    # whole six-pass suite.
    dynamic_sel = {name for name in ("memcheck", "initcheck", "synccheck")
                   if getattr(args, name)}
    static_sel = {name for name in ("lint", "contracts")
                  if getattr(args, name)}
    run_all = not (dynamic_sel or static_sel or args.fixtures)
    smoke = args.smoke
    report: dict = {"command": "sanitize"}
    problems: list[str] = []

    if run_all or args.fixtures or dynamic_sel:
        suite_passes = (None if run_all or args.fixtures
                        else dynamic_sel | static_sel)
        fixtures = run_fixture_suite(passes=suite_passes)
        report["fixtures"] = fixtures
        if not fixtures["ok"]:
            for name, res in fixtures["fixtures"].items():
                if not res["ok"]:
                    problems.append(
                        f"fixture '{name}' expected {res['expected']} "
                        f"but detected {res['detected']}")

    if run_all or dynamic_sel:
        engines = (("warp", "cohort") if args.engine == "both"
                   else (args.engine,))
        ops = 256 if smoke else args.ops
        audit = run_clean_audit(ops=ops, seed=args.seed, engines=engines,
                                passes=None if run_all else dynamic_sel)
        report["audit"] = audit
        if not audit["ok"]:
            for phase, res in audit["phases"].items():
                for v in res["violations"]:
                    problems.append(f"{phase}: {v['pass']}:{v['kind']} "
                                    f"{v['message']}")
                if res["subtable_locks_held"]:
                    problems.append(
                        f"{phase}: {res['subtable_locks_held']} subtable "
                        "lock(s) still held after the audit")
        if run_all and audit["injected_events"] == 0:
            problems.append("fault phase injected nothing — the "
                            "intentional-fault classification went "
                            "unexercised")

    if run_all or "lint" in static_sel:
        findings = lint_paths()
        report["lint"] = {
            "findings": [str(f) for f in findings],
            "ok": not findings,
        }
        problems.extend(str(f) for f in findings)

    if run_all or "contracts" in static_sel:
        cfindings = check_paths()
        report["contracts"] = {
            "findings": [str(f) for f in cfindings],
            "ok": not cfindings,
        }
        problems.extend(str(f) for f in cfindings)

    report["problems"] = problems
    report["ok"] = not problems

    if args.json:
        _emit_json(report)
    else:
        if "fixtures" in report:
            n = len(report["fixtures"]["fixtures"])
            good = sum(1 for r in report["fixtures"]["fixtures"].values()
                       if r["ok"])
            print(f"fixtures: {good}/{n} seeded violations detected "
                  "with round/warp attribution")
        if "audit" in report:
            audit = report["audit"]
            for phase, res in audit["phases"].items():
                stats = res["stats"]
                print(f"{phase}: {stats['accesses']} accesses over "
                      f"{stats['rounds']} rounds, "
                      f"{stats['lock_acquires']} lock acquires, "
                      f"{len(res['violations'])} violations")
            print(f"fault classification: "
                  f"{audit['injected_events']} injected events counted "
                  "as intentional")
        if "lint" in report:
            n_lint = len(report["lint"]["findings"])
            print(f"determinism lint: {n_lint} finding(s) in src/repro")
        if "contracts" in report:
            n_con = len(report["contracts"]["findings"])
            print(f"protocol contracts: {n_con} finding(s) in "
                  "kernel/engine/resize code")
        if problems:
            print("SANITIZE FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
        else:
            print("sanitize ok: zero violations, all selected seeded "
                  "fixtures detected, static passes clean")
    return 1 if problems else 0


def _scenario_row(card: dict) -> str:
    lat = card["latency"]
    extras = []
    if card["faults"]["enabled"]:
        extras.append(f"faults={card['faults']['fired']}")
    if card["stash"]["high_water"]:
        extras.append(f"stash_hw={card['stash']['high_water']}")
    if card["memory"]["budget_bytes"] is not None:
        extras.append(f"evicted={card['memory']['evictions']}")
    if card["sanitizer"]["enabled"]:
        extras.append("san=" + ("ok" if card["sanitizer"]["ok"]
                                else "VIOLATED"))
    resizes = card["resizes"]
    extras.append(f"resizes={resizes['upsizes']}+{resizes['downsizes']}"
                  f"/{resizes['aborts']}ab")
    return (f"{card['name']:<24} {card['verdict']:<4} "
            f"p50 {lat['p50']:6.1f}  p99 {lat['p99']:7.1f}  "
            f"worst {lat['worst']:8.1f} ns/op  " + "  ".join(extras))


def _cmd_scenarios(args) -> int:
    from repro.scenarios import (REGISTRY, get_scenario, run_scenario,
                                 validate_scorecard)

    if args.list or not (args.run or args.matrix or args.smoke):
        if args.json:
            _emit_json([{"name": s.name,
                         "description": s.description,
                         "composition": s.composition()}
                        for s in REGISTRY.values()])
            return 0
        print(f"{len(REGISTRY)} registered scenarios "
              f"(axes: storm/churn/faults/sanitizer/budget/shards)")
        for spec in REGISTRY.values():
            axes = [axis for axis, on in spec.composition().items()
                    if on and axis != "skew"]
            tag = f" [{', '.join(axes)}]" if axes else ""
            print(f"  {spec.name:<24} {spec.description}{tag}")
        return 0

    if args.smoke:
        specs = list(REGISTRY.values())
        scale = args.scale if args.scale is not None else 0.02
        differential = True
        out_dir = args.out_dir  # smoke writes only when asked
    else:
        specs = ([get_scenario(args.run)] if args.run
                 else list(REGISTRY.values()))
        scale = args.scale if args.scale is not None else 1.0
        differential = args.differential
        out_dir = args.out_dir or "scorecards"

    if args.sanitize:
        # Nightly soak: every selected scenario runs with the full
        # six-pass sanitizer attached (specs are frozen; derive).
        specs = [dataclasses.replace(spec, sanitizer=True)
                 for spec in specs]

    problems: list[str] = []
    cards = []
    for spec in specs:
        card = run_scenario(spec, scale=scale, out_dir=out_dir,
                            differential=differential)
        cards.append(card)
        schema_problems = validate_scorecard(card)
        problems.extend(f"{spec.name}: {p}" for p in schema_problems)
        if card["verdict"] != "pass":
            problems.extend(f"{spec.name}: {p}"
                            for p in card["problems"])
        if not args.json:
            print(_scenario_row(card))

    if args.json:
        _emit_json(cards if len(cards) > 1 else cards[0])
    else:
        passed = sum(1 for c in cards if c["verdict"] == "pass")
        print(f"\n{passed}/{len(cards)} scenarios passed "
              f"at scale {scale}"
              + (f"; scorecards in {out_dir}/" if out_dir else ""))
        if problems:
            print("SCENARIOS FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
    return 1 if problems else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DyCuckoo reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and device information")

    demo = sub.add_parser("demo", help="small end-to-end demonstration")
    demo.add_argument("--keys", type=int, default=100_000)
    demo.add_argument("--seed", type=int, default=0,
                      help="RNG seed for exact reproducibility")
    demo.add_argument("--json", action="store_true",
                      help="machine-readable JSON on stdout")

    datasets = sub.add_parser("datasets", help="Table 2 dataset statistics")
    datasets.add_argument("--scale", type=float, default=0.001)
    datasets.add_argument("--seed", type=int, default=0)

    dynamic = sub.add_parser("dynamic", help="dynamic-workload comparison")
    dynamic.add_argument("--dataset", default="COM")
    dynamic.add_argument("--scale", type=float, default=0.001)
    dynamic.add_argument("--batch", type=int, default=1000)
    dynamic.add_argument("--ratio", type=float, default=0.2)
    dynamic.add_argument("--seed", type=int, default=0,
                         help="RNG seed for exact reproducibility")
    dynamic.add_argument("--json", action="store_true",
                         help="machine-readable JSON on stdout")

    profile = sub.add_parser(
        "profile", help="deep-profile DyCuckoo kernels; write a report")
    profile.add_argument("--keys", type=int, default=100_000,
                         help="keys for the per-batch derived metrics pass")
    profile.add_argument("--ops", type=int, default=4_000,
                         help="mixed operations for the deep kernel pass")
    profile.add_argument("--engine", choices=["warp", "cohort", "both"],
                         default="both",
                         help="execution engine(s) for the deep pass; "
                              "'both' cross-checks the snapshots")
    profile.add_argument("--html", default=None, metavar="PATH",
                         help="write a self-contained HTML report")
    profile.add_argument("--smoke", action="store_true",
                         help="fast built-in configuration; fail unless "
                              "the report has the expected structure")
    profile.add_argument("--seed", type=int, default=0,
                         help="RNG seed for exact reproducibility")
    profile.add_argument("--json", action="store_true",
                         help="machine-readable JSON on stdout")

    trace = sub.add_parser(
        "trace", help="run a workload with telemetry; write a Chrome trace")
    trace.add_argument("workload", nargs="?", default="COM",
                       help="dataset name (see `repro datasets`)")
    trace.add_argument("--scale", type=float, default=0.001)
    trace.add_argument("--batch", type=int, default=1000)
    trace.add_argument("--ratio", type=float, default=0.2)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default=None,
                       help="Chrome-trace output path "
                            "(default trace_<workload>.json)")
    trace.add_argument("--jsonl", default=None,
                       help="also write a JSON-lines event log here")
    trace.add_argument("--metrics-out", default=None,
                       help="also write Prometheus-format metrics here")
    trace.add_argument("--json", action="store_true",
                       help="machine-readable summary on stdout")
    trace.add_argument("--smoke", action="store_true",
                       help="fast run + structural validation (CI check)")

    shard = sub.add_parser(
        "shard", help="sharded front-end: differential check + speedup")
    shard.add_argument("--shards", type=int, default=4,
                       help="shard count S (power of two)")
    shard.add_argument("--sweep", action="store_true",
                       help="scan S in {1, 2, 4, 8} instead of --shards")
    shard.add_argument("--keys", type=int, default=20_000)
    shard.add_argument("--batch", type=int, default=1000)
    shard.add_argument("--seed", type=int, default=0,
                       help="RNG seed for exact reproducibility")
    shard.add_argument("--parallel", type=int, default=0, metavar="W",
                       help="also run a mixed batch through the "
                            "process-pool shard executor with W workers "
                            "and differentially check it against serial")
    shard.add_argument("--json", action="store_true",
                       help="machine-readable JSON on stdout")

    kernel = sub.add_parser(
        "kernel", help="lane-faithful kernel engines on a mixed batch")
    kernel.add_argument("--ops", type=int, default=10_000,
                        help="operations in the mixed batch")
    kernel.add_argument("--engine", choices=("warp", "cohort", "both"),
                        default="both",
                        help="execution engine ('both' cross-checks and "
                             "reports the speedup)")
    kernel.add_argument("--seed", type=int, default=0,
                        help="RNG seed for exact reproducibility")
    kernel.add_argument("--json", action="store_true",
                        help="machine-readable JSON on stdout")

    faults = sub.add_parser(
        "faults", help="seeded chaos session with a survival report")
    faults.add_argument("--seed", type=int, default=0,
                        help="chaos seed (exact replay with same seed)")
    faults.add_argument("--batches", type=int, default=40,
                        help="mixed-op batches to run")
    faults.add_argument("--batch", type=int, default=500,
                        help="inserts per batch (finds/deletes scale off it)")
    faults.add_argument("--keyspace", type=int, default=0,
                        help="key domain size (default 4x batch)")
    faults.add_argument("--intensity", type=float, default=1.0,
                        help="scale factor on all default fault rates")
    faults.add_argument("--script", default=None,
                        help="replay a fault script (JSON file) instead of "
                             "seeded chaos")
    faults.add_argument("--save-script", default=None,
                        help="write the fired fault script here for replay")
    faults.add_argument("--json", action="store_true",
                        help="machine-readable survival report on stdout")
    faults.add_argument("--smoke", action="store_true",
                        help="fast fixed configuration (CI robustness check)")
    faults.add_argument("--engine", choices=("warp", "cohort"),
                        default="warp",
                        help="kernel engine for the lane-level phase "
                             "(fault-bearing inserts always execute "
                             "per-warp; see repro.gpusim.cohort)")

    scenarios = sub.add_parser(
        "scenarios", help="composed soak scenarios with JSON scorecards "
                          "(chaos + skew + churn + memory pressure)")
    scenarios.add_argument("--list", action="store_true",
                           help="list the registered scenarios")
    scenarios.add_argument("--run", metavar="NAME", default=None,
                           help="run one named scenario")
    scenarios.add_argument("--matrix", action="store_true",
                           help="run every registered scenario")
    scenarios.add_argument("--smoke", action="store_true",
                           help="scaled-down matrix with the dict oracle "
                                "attached (CI health check)")
    scenarios.add_argument("--scale", type=float, default=None,
                           help="workload scale factor "
                                "(default 1.0; --smoke defaults to 0.02)")
    scenarios.add_argument("--out-dir", default=None,
                           help="directory for SCORECARD_<name>.json "
                                "(default scorecards/; --smoke writes "
                                "only when set)")
    scenarios.add_argument("--differential", action="store_true",
                           help="mirror every op into a dict oracle "
                                "(slow at full scale)")
    scenarios.add_argument("--sanitize", action="store_true",
                           help="attach the full sanitizer to every "
                                "selected scenario (nightly soak)")
    scenarios.add_argument("--json", action="store_true",
                           help="machine-readable scorecards on stdout")

    sanitize = sub.add_parser(
        "sanitize", help="SIMT sanitizer: six-pass suite (racecheck, "
                         "lockcheck, memcheck, initcheck, synccheck, "
                         "lint+contracts)")
    sanitize.add_argument("--ops", type=int, default=512,
                          help="operations per audited kernel workload")
    sanitize.add_argument("--seed", type=int, default=0,
                          help="RNG seed for exact reproducibility")
    sanitize.add_argument("--engine", choices=("warp", "cohort", "both"),
                          default="both",
                          help="kernel engine(s) to audit")
    sanitize.add_argument("--lint", action="store_true",
                          help="run the determinism lint over src/repro")
    sanitize.add_argument("--contracts", action="store_true",
                          help="run the static protocol-contract "
                               "analyzer over kernel/engine/resize code")
    sanitize.add_argument("--memcheck", action="store_true",
                          help="restrict dynamic passes to memcheck")
    sanitize.add_argument("--initcheck", action="store_true",
                          help="restrict dynamic passes to initcheck")
    sanitize.add_argument("--synccheck", action="store_true",
                          help="restrict dynamic passes to synccheck")
    sanitize.add_argument("--fixtures", action="store_true",
                          help="run only the seeded-violation fixtures "
                               "(all six passes)")
    sanitize.add_argument("--smoke", action="store_true",
                          help="fast fixed configuration (CI check)")
    sanitize.add_argument("--json", action="store_true",
                          help="machine-readable JSON on stdout")

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "demo": _cmd_demo,
    "datasets": _cmd_datasets,
    "dynamic": _cmd_dynamic,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
    "shard": _cmd_shard,
    "kernel": _cmd_kernel,
    "faults": _cmd_faults,
    "sanitize": _cmd_sanitize,
    "scenarios": _cmd_scenarios,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
