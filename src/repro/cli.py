"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library version, the simulated device, and the paper's
    default parameters.
``demo``
    Run a small end-to-end demonstration (insert/find/delete with
    automatic resizing) and print the resulting statistics.
``datasets``
    Print Table 2 (paper statistics and generated surrogate statistics
    at a chosen scale).
``dynamic``
    Run the dynamic-workload comparison (DyCuckoo vs MegaKV vs SlabHash)
    on one dataset and print throughput, fill-factor tracking, and peak
    memory — a one-command version of Figures 11/12.
``profile``
    Profile one insert+find+delete cycle of DyCuckoo with the kernel
    profiler.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(_args) -> int:
    import repro
    from repro.core.config import PAPER_PARAMETERS
    from repro.gpusim import GTX_1080

    print(f"repro {repro.__version__} — DyCuckoo reproduction (ICDE 2021)")
    print(f"simulated device: {GTX_1080.name} "
          f"({GTX_1080.num_sms} SMs, {GTX_1080.total_cores} cores, "
          f"{GTX_1080.mem_bandwidth_gbps:.0f} GB/s, "
          f"{GTX_1080.device_memory_bytes / 2**30:.0f} GB)")
    print("paper defaults (Table 3):")
    for name, grid in PAPER_PARAMETERS.items():
        print(f"  {name}: default {grid['default']}, "
              f"settings {grid['settings']}")
    return 0


def _cmd_demo(args) -> int:
    from repro import DyCuckooConfig, DyCuckooTable

    table = DyCuckooTable(DyCuckooConfig())
    rng = np.random.default_rng(args.seed)
    keys = rng.permutation(np.arange(args.keys, dtype=np.uint64))
    table.insert(keys, keys * np.uint64(2))
    print(f"inserted {len(table):,} keys, filled factor "
          f"{table.load_factor:.1%}")
    _values, found = table.find(keys[: args.keys // 2])
    print(f"find hit rate: {found.mean():.1%}")
    table.delete(keys[: int(args.keys * 0.8)])
    print(f"after deleting 80%: filled factor {table.load_factor:.1%} "
          f"({table.stats.downsizes} downsizes)")
    table.validate()
    print("validate(): ok")
    return 0


def _cmd_datasets(args) -> int:
    from repro.bench import format_table
    from repro.workloads import ALL_DATASETS

    rows = []
    for spec in ALL_DATASETS:
        keys, _values = spec.generate(scale=args.scale, seed=args.seed)
        unique = len(np.unique(keys))
        rows.append([spec.name, f"{spec.total_pairs:,}",
                     f"{spec.unique_keys:,}", f"{len(keys):,}",
                     f"{unique:,}"])
    print(format_table(
        ["dataset", "paper KVs", "paper unique",
         f"KVs @ {args.scale}", f"unique @ {args.scale}"],
        rows, title="Table 2: datasets"))
    return 0


def _cmd_dynamic(args) -> int:
    from repro.baselines import DyCuckooAdapter, MegaKVTable, SlabHashTable
    from repro.baselines.slab import slab_buckets_for_fill
    from repro.bench import format_series, format_table, run_dynamic
    from repro.core.config import DyCuckooConfig
    from repro.gpusim.metrics import CostModel
    from repro.workloads import DynamicWorkload, dataset_by_name

    spec = dataset_by_name(args.dataset)
    keys, values = spec.generate(scale=args.scale, seed=args.seed)
    expected_live = max(1, len(np.unique(keys)) // 2)
    cost_model = CostModel(overhead_scale=args.scale)

    runs = {}
    for factory in (
            lambda: DyCuckooAdapter(DyCuckooConfig(initial_buckets=8)),
            lambda: MegaKVTable(initial_buckets=32),
            lambda: SlabHashTable(
                n_buckets=slab_buckets_for_fill(expected_live, 0.85))):
        table = factory()
        workload = DynamicWorkload(keys, values, batch_size=args.batch,
                                   ratio_r=args.ratio, seed=args.seed)
        runs[table.NAME] = run_dynamic(table, workload,
                                       cost_model=cost_model)

    print(format_table(
        ["approach", "Mops", "peak MB"],
        [[name, run.mops, run.peak_memory_bytes / 1e6]
         for name, run in runs.items()],
        title=f"dynamic workload on {spec.name} "
              f"(scale {args.scale}, r={args.ratio}, batch {args.batch})"))
    print()
    print(format_series("filled factor per batch",
                        {name: run.fill_series for name, run in runs.items()},
                        lo=0.0, hi=1.0))
    return 0


def _cmd_profile(args) -> int:
    from repro import DyCuckooConfig, DyCuckooTable
    from repro.gpusim.profile import profile_operation

    table = DyCuckooTable(DyCuckooConfig())
    rng = np.random.default_rng(args.seed)
    keys = rng.permutation(np.arange(args.keys, dtype=np.uint64))
    print(profile_operation(table, "insert", table.insert, keys, keys))
    print(profile_operation(table, "find", table.find, keys))
    print(profile_operation(table, "delete", table.delete, keys))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DyCuckoo reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and device information")

    demo = sub.add_parser("demo", help="small end-to-end demonstration")
    demo.add_argument("--keys", type=int, default=100_000)
    demo.add_argument("--seed", type=int, default=0)

    datasets = sub.add_parser("datasets", help="Table 2 dataset statistics")
    datasets.add_argument("--scale", type=float, default=0.001)
    datasets.add_argument("--seed", type=int, default=0)

    dynamic = sub.add_parser("dynamic", help="dynamic-workload comparison")
    dynamic.add_argument("--dataset", default="COM")
    dynamic.add_argument("--scale", type=float, default=0.001)
    dynamic.add_argument("--batch", type=int, default=1000)
    dynamic.add_argument("--ratio", type=float, default=0.2)
    dynamic.add_argument("--seed", type=int, default=0)

    profile = sub.add_parser("profile", help="profile DyCuckoo kernels")
    profile.add_argument("--keys", type=int, default=100_000)
    profile.add_argument("--seed", type=int, default=0)

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "demo": _cmd_demo,
    "datasets": _cmd_datasets,
    "dynamic": _cmd_dynamic,
    "profile": _cmd_profile,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
