"""Exception hierarchy for the DyCuckoo reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  The hierarchy mirrors the failure modes of the paper's
system: keys outside the supported domain, insertion failures that even
resizing could not absorb, invalid resize requests, and overflow of the
bounded stash that backstops failed inserts under fault injection.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class InvalidKeyError(ReproError, ValueError):
    """A key is outside the supported ``uint64`` domain.

    The implementation reserves one 64-bit code for the *empty slot*
    sentinel, so the largest representable user key is ``2**64 - 2``.
    """


class InvalidConfigError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent."""


class CapacityError(ReproError, RuntimeError):
    """An insertion could not be completed even after resizing.

    Raised when the eviction chain limit is exceeded and either automatic
    resizing is disabled or resizing failed to make room (for instance
    because the table hit ``max_total_slots``).
    """


class StashOverflowError(CapacityError):
    """The overflow stash (error table) itself ran out of room.

    The stash absorbs inserts whose eviction chain is exhausted while an
    upsize is pending (the CUDA reference's ``error_table_t``); this is
    the error of last resort when even that degradation path is full.
    Subclasses :class:`CapacityError` so existing handlers keep working.
    """


class ResizeError(ReproError, RuntimeError):
    """A resize operation could not be carried out.

    Examples: downsizing a subtable that is already at minimum size, or a
    downsize whose residual entries could not be relocated into the other
    subtables.
    """


class UnsupportedOperationError(ReproError, NotImplementedError):
    """A baseline does not implement the requested operation.

    Mirrors the paper's observation that CUDPP supports only ``insert``
    and ``find`` (no ``delete``).
    """
