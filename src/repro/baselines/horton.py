"""Horton table (Breslow et al., OSDI 2016) — extension baseline.

The paper's related work notes that "Horton table improves the
efficiency of FIND over MegaKV by trading with the cost of introducing a
KV remapping mechanism" and excludes it from the comparison.  We include
a simplified-but-behaviour-faithful implementation so the trade-off is
measurable (``benchmarks/bench_ext_horton.py``).

Design (simplified from the original):

* buckets of 8 slots with one *primary* hash function; most items live
  in their primary bucket, so a FIND is usually **one** probe;
* when a primary bucket overflows it converts to *type B*: its last
  slot is sacrificed for a 21-entry, 3-bit **remap array**.  An
  overflowing key tags into a remap entry (``tag = code mod 21``); the
  entry's value ``v in 1..7`` names one of seven secondary hash
  functions, and the key is stored in bucket ``R_v(key)``;
* FIND probes the primary bucket; on a miss in a type-B bucket it reads
  the key's remap entry — if set, one secondary probe; if clear, the
  miss is decided after a single probe (the mechanism's whole point);
* INSERT is correspondingly costlier: conversions, remap maintenance,
  and the constraint that all keys sharing a tag share one secondary
  bucket.  Our simplification: a secondary-bucket overflow with an
  already-pinned remap entry triggers a rebuild with fresh seeds (the
  original performs recursive remapping); rebuilds are counted.

Static, insert/find only (deletion needs remap reference counting that
the comparison never exercises).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GpuHashTable
from repro.core.grouping import last_occurrence_mask
from repro.core.hashing import UniversalHash
from repro.core.stats import MemoryFootprint, TableStats
from repro.core.table import encode_keys
from repro.errors import (CapacityError, InvalidConfigError,
                          UnsupportedOperationError)
from repro.gpusim.metrics import KernelCosts

EMPTY = np.uint64(0)

#: Slots per bucket (Horton's published geometry).
BUCKET_CAPACITY = 8
#: Remap entries per type-B bucket (21 x 3 bits fit one sacrificed slot).
REMAP_ENTRIES = 21
#: Number of secondary hash functions (3-bit remap values 1..7).
NUM_SECONDARY = 7


class HortonTable(GpuHashTable):
    """Simplified Horton table: ~1-probe FIND, costlier INSERT.

    Parameters
    ----------
    expected_entries:
        Number of keys the table is sized for.
    target_fill:
        Requested filled factor (slots = entries / fill).
    """

    NAME = "Horton"
    KERNEL_COSTS = KernelCosts(find_ns=0.22, insert_ns=0.40)
    SUPPORTS_DELETE = False
    SUPPORTS_RESIZE = False

    def __init__(self, expected_entries: int, target_fill: float = 0.85,
                 seed: int = 0x40FF) -> None:
        if expected_entries < 1:
            raise InvalidConfigError("expected_entries must be >= 1")
        if not 0.0 < target_fill <= 0.95:
            raise InvalidConfigError(
                f"target_fill must be in (0, 0.95], got {target_fill}")
        slots = max(BUCKET_CAPACITY * 8,
                    int(expected_entries / target_fill))
        self.n_buckets = 8
        while self.n_buckets * BUCKET_CAPACITY < slots:
            self.n_buckets *= 2
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.stats = TableStats()
        self._build()

    def _build(self) -> None:
        self.keys = np.zeros((self.n_buckets, BUCKET_CAPACITY),
                             dtype=np.uint64)
        self.values = np.zeros((self.n_buckets, BUCKET_CAPACITY),
                               dtype=np.uint64)
        #: Type-B flag per bucket (remap array active, slot 7 sacrificed).
        self.is_type_b = np.zeros(self.n_buckets, dtype=bool)
        #: Remap arrays: 0 = empty, 1..7 = secondary function index.
        self.remap = np.zeros((self.n_buckets, REMAP_ENTRIES),
                              dtype=np.int8)
        self.primary = UniversalHash.random(self._rng)
        self.secondary = [UniversalHash.random(self._rng)
                          for _ in range(NUM_SECONDARY)]
        self.size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    @property
    def total_slots(self) -> int:
        # Type-B buckets sacrifice one slot to the remap array.
        return (self.n_buckets * BUCKET_CAPACITY
                - int(self.is_type_b.sum()))

    @property
    def load_factor(self) -> float:
        slots = self.total_slots
        return self.size / slots if slots else 0.0

    def memory_footprint(self) -> MemoryFootprint:
        return MemoryFootprint(
            total_slots=self.total_slots,
            live_entries=self.size,
            slot_bytes=self.keys.nbytes + self.values.nbytes,
        )

    def validate(self) -> None:
        usable = self.keys.copy()
        # Slot 7 of a type-B bucket is metadata, must read as EMPTY.
        if bool((usable[self.is_type_b, BUCKET_CAPACITY - 1] != EMPTY).any()):
            raise AssertionError("type-B bucket stores a key in its "
                                 "remap slot")
        live = int(np.count_nonzero(usable != EMPTY))
        if live != self.size:
            raise AssertionError(f"size {self.size} != live {live}")
        stored = usable[usable != EMPTY]
        if len(stored) != len(np.unique(stored)):
            raise AssertionError("duplicate key stored")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _primary_bucket(self, codes: np.ndarray) -> np.ndarray:
        return self.primary.bucket(codes, self.n_buckets)

    def _tag(self, codes: np.ndarray) -> np.ndarray:
        return (codes % np.uint64(REMAP_ENTRIES)).astype(np.int64)

    def _secondary_bucket(self, codes: np.ndarray, v: np.ndarray
                          ) -> np.ndarray:
        out = np.empty(len(codes), dtype=np.int64)
        for func_idx in range(1, NUM_SECONDARY + 1):
            sel = v == func_idx
            if np.any(sel):
                out[sel] = self.secondary[func_idx - 1].bucket(
                    codes[sel], self.n_buckets)
        return out

    def _usable_capacity(self, bucket: int) -> int:
        return BUCKET_CAPACITY - (1 if self.is_type_b[bucket] else 0)

    # ------------------------------------------------------------------
    # Find
    # ------------------------------------------------------------------

    def find(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Primary probe; remap-directed secondary probe only if needed."""
        codes = encode_keys(keys)
        n = len(codes)
        self.stats.finds += n
        values = np.zeros(n, dtype=np.uint64)
        found = np.zeros(n, dtype=bool)
        if n == 0:
            return values, found

        buckets = self._primary_bucket(codes)
        self.stats.bucket_reads += n
        rows = self.keys[buckets]
        match = rows == codes[:, None]
        hit = match.any(axis=1)
        slots = match.argmax(axis=1)
        values[hit] = self.values[buckets[hit], slots[hit]]
        found[hit] = True

        # Misses consult the remap entry; only a set entry costs a
        # second probe — the Horton FIND advantage.
        miss = np.flatnonzero(~hit)
        if len(miss):
            remap_vals = self.remap[buckets[miss], self._tag(codes[miss])]
            follow = np.flatnonzero((remap_vals > 0)
                                    & self.is_type_b[buckets[miss]])
            if len(follow):
                idx = miss[follow]
                sec = self._secondary_bucket(codes[idx],
                                             remap_vals[follow].astype(np.int64))
                self.stats.bucket_reads += len(idx)
                self.stats.chain_hops += len(idx)
                rows2 = self.keys[sec]
                match2 = rows2 == codes[idx][:, None]
                hit2 = match2.any(axis=1)
                slots2 = match2.argmax(axis=1)
                values[idx[hit2]] = self.values[sec[hit2], slots2[hit2]]
                found[idx[hit2]] = True
        self.stats.find_hits += int(found.sum())
        return values, found

    def delete(self, keys) -> np.ndarray:
        raise UnsupportedOperationError(
            "this Horton table implementation is insert/find only "
            "(deletion requires remap reference counting)")

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, keys, values) -> None:
        """Upsert; primary placement, remap-directed overflow."""
        codes = encode_keys(keys)
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != codes.shape:
            raise InvalidConfigError("values shape must match keys shape")
        self.stats.inserts += len(codes)
        if len(codes) == 0:
            return
        keep = last_occurrence_mask(codes)
        codes, values = codes[keep], values[keep]

        updated = self._update_existing(codes, values)
        self.stats.updates += int(updated.sum())
        fresh = np.flatnonzero(~updated)
        rebuilds = 0
        pending = list(zip(codes[fresh].tolist(), values[fresh].tolist()))
        while pending:
            failed = []
            for code, value in pending:
                if not self._insert_one(int(code), int(value)):
                    failed.append((code, value))
            if not failed:
                return
            # Simplification of Horton's recursive remapping: rebuild
            # with fresh seeds and replay everything.
            rebuilds += 1
            if rebuilds > 6:
                self.stats.insert_failures += len(failed)
                raise CapacityError(
                    "Horton insertion failed repeatedly; table too dense")
            occupied = self.keys != EMPTY
            old_codes = self.keys[occupied]
            old_values = self.values[occupied]
            self.stats.full_rehashes += 1
            self.stats.rehashed_entries += len(old_codes)
            self._build()
            pending = (list(zip(old_codes.tolist(), old_values.tolist()))
                       + failed)

    def _update_existing(self, codes: np.ndarray, values: np.ndarray
                         ) -> np.ndarray:
        found_values, found = self.find(decode(codes))
        del found_values
        # Re-locate and overwrite (scalar loop acceptable: updates are a
        # small fraction of static-build workloads).
        for i in np.flatnonzero(found):
            self._overwrite(int(codes[i]), int(values[i]))
        return found

    def _overwrite(self, code: int, value: int) -> None:
        bucket = int(self._primary_bucket(
            np.asarray([code], dtype=np.uint64))[0])
        row = self.keys[bucket]
        slot = np.flatnonzero(row == np.uint64(code))
        if len(slot):
            self.values[bucket, int(slot[0])] = np.uint64(value)
            return
        remap_val = int(self.remap[bucket, code % REMAP_ENTRIES])
        if remap_val > 0:
            sec = int(self._secondary_bucket(
                np.asarray([code], dtype=np.uint64),
                np.asarray([remap_val]))[0])
            slot = np.flatnonzero(self.keys[sec] == np.uint64(code))
            if len(slot):
                self.values[sec, int(slot[0])] = np.uint64(value)

    #: Displacement-cascade depth bound (Horton's recursive remapping).
    MAX_DISPLACE_DEPTH = 8

    def _insert_one(self, code: int, value: int, depth: int = 0) -> bool:
        """Place one fresh key; False means a rebuild is needed."""
        if depth > self.MAX_DISPLACE_DEPTH:
            return False
        bucket = int(self._primary_bucket(
            np.asarray([code], dtype=np.uint64))[0])
        self.stats.bucket_reads += 1
        cap = self._usable_capacity(bucket)
        row = self.keys[bucket]
        free = np.flatnonzero(row[:cap] == EMPTY)
        if len(free):
            self.keys[bucket, int(free[0])] = np.uint64(code)
            self.values[bucket, int(free[0])] = np.uint64(value)
            self.size += 1
            self.stats.bucket_writes += 1
            self.stats.atomic_exchanges += 1
            return True

        # Primary full: ensure type B by sacrificing one slot.  The
        # relocated occupant must be a *primary-resident* of this bucket
        # (a secondary item's remap entry lives in another bucket and
        # cannot be rewritten from here); slot contents are shuffled so
        # the remap array always occupies slot 7.
        if not self.is_type_b[bucket]:
            occupants = self.keys[bucket]
            primaries = self._primary_bucket(occupants)
            resident = np.flatnonzero(primaries == bucket)
            if len(resident) == 0:
                return False  # pathological: rebuild will reshuffle
            victim_slot = int(resident[-1])
            evicted_code = int(occupants[victim_slot])
            evicted_value = int(self.values[bucket, victim_slot])
            last = BUCKET_CAPACITY - 1
            # Move the slot-7 occupant into the vacated slot (no-op when
            # the victim *is* slot 7), then clear slot 7 for the remap.
            if victim_slot != last:
                self.keys[bucket, victim_slot] = self.keys[bucket, last]
                self.values[bucket, victim_slot] = self.values[bucket, last]
            self.keys[bucket, last] = EMPTY
            self.values[bucket, last] = EMPTY
            self.is_type_b[bucket] = True
            self.size -= 1
            self.stats.bucket_writes += 1
            if not self._place_secondary(bucket, evicted_code,
                                         evicted_value, depth):
                return False

        return self._place_secondary(bucket, code, value, depth)

    def _place_secondary(self, primary_bucket: int, code: int,
                         value: int, depth: int = 0) -> bool:
        """Store a key via its remap entry; False means rebuild needed.

        When every candidate secondary bucket is full, a
        *primary-resident* occupant of one of them is displaced and
        relocated through its own remap machinery (Horton's recursive
        KV remapping), bounded by :data:`MAX_DISPLACE_DEPTH`.
        """
        tag = code % REMAP_ENTRIES
        remap_val = int(self.remap[primary_bucket, tag])
        candidates = ([remap_val] if remap_val > 0
                      else list(range(1, NUM_SECONDARY + 1)))
        for v in candidates:
            sec = int(self._secondary_bucket(
                np.asarray([code], dtype=np.uint64), np.asarray([v]))[0])
            self.stats.bucket_reads += 1
            cap = self._usable_capacity(sec)
            free = np.flatnonzero(self.keys[sec][:cap] == EMPTY)
            if len(free):
                self.keys[sec, int(free[0])] = np.uint64(code)
                self.values[sec, int(free[0])] = np.uint64(value)
                self.size += 1
                self.remap[primary_bucket, tag] = v
                self.stats.bucket_writes += 2  # item + remap entry
                self.stats.atomic_exchanges += 1
                return True

        if depth >= self.MAX_DISPLACE_DEPTH:
            return False
        # Displacement cascade: free a slot in a candidate bucket by
        # relocating one of its primary residents.
        for v in candidates:
            sec = int(self._secondary_bucket(
                np.asarray([code], dtype=np.uint64), np.asarray([v]))[0])
            cap = self._usable_capacity(sec)
            occupants = self.keys[sec][:cap]
            primaries = self._primary_bucket(occupants)
            resident = np.flatnonzero(primaries == sec)
            if len(resident) == 0:
                continue
            slot = int(resident[-1])
            displaced_code = int(occupants[slot])
            displaced_value = int(self.values[sec, slot])
            self.keys[sec, slot] = np.uint64(code)
            self.values[sec, slot] = np.uint64(value)
            self.remap[primary_bucket, tag] = v
            self.stats.bucket_writes += 2
            self.stats.evictions += 1
            # Net live count is unchanged by the swap itself; the
            # cascade's eventual placement adds the +1 for the new key.
            if self._insert_one(displaced_code, displaced_value, depth + 1):
                return True
            # Cascade failed: undo this displacement and give up.
            self.keys[sec, slot] = np.uint64(displaced_code)
            self.values[sec, slot] = np.uint64(displaced_value)
            return False
        return False


def decode(codes: np.ndarray) -> np.ndarray:
    """Internal codes back to user keys (module-local helper)."""
    return np.asarray(codes, dtype=np.uint64) - np.uint64(1)
