"""SlabHash baseline (Ashkiani et al., IPDPS 2018) as used in the paper.

SlabHash is the only prior *dynamic* GPU hash table: each bucket heads a
linked list of fixed-size **slabs** (128-byte nodes holding 15 KV pairs
plus a next pointer, sized so one warp reads a whole slab in one
transaction).  Growth happens by chaining more slabs from a dedicated
pre-reserved allocator pool; the bucket count never changes.

The three weaknesses the paper calls out are all reproduced here:

1. **Dedicated allocator** — the slab pool is reserved up front and is
   not usable by other GPU-resident structures; the reservation shows up
   in :meth:`memory_footprint` as overhead.
2. **Symbolic deletion** — DELETE marks a tombstone without freeing
   anything, so the filled factor is unbounded below (Figure 12's decay);
   inserts may reuse tombstoned slots, which is why *more* deletions make
   SlabHash inserts *faster* (Figure 11's inverted trend).
3. **Chaining** — FIND/INSERT walk chains of dependent accesses; the
   expected lookup touches ``Omega(log log m)`` slabs for some keys, and
   chains only grow as data streams in (Figure 13's degradation).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GpuHashTable
from repro.core.grouping import (first_occurrence_mask, last_occurrence_mask,
                                 rank_within_group)
from repro.core.hashing import UniversalHash
from repro.core.stats import MemoryFootprint, TableStats
from repro.errors import InvalidConfigError, InvalidKeyError
from repro.gpusim.metrics import KernelCosts

#: Empty-slot sentinel (slab-local code space).
EMPTY = np.uint64(0)
#: Symbolically-deleted sentinel.
TOMBSTONE = np.uint64(1)
#: Largest storable user key under the two reserved codes.
MAX_SLAB_KEY = (1 << 64) - 3

#: KV pairs per 128-byte slab (30 words of payload + 2 words of pointer).
SLAB_CAPACITY = 15

#: Null next-pointer.
NULL = -1


def slab_buckets_for_fill(num_keys: int, target_fill: float) -> int:
    """Bucket count that makes SlabHash reach ``target_fill``.

    SlabHash's filled factor is live entries over *allocated* slab
    slots.  Each chain wastes roughly half a slab at its tail, so with
    ``B`` buckets the expected allocation is ``num_keys + B * cap / 2``
    slots.  Solving ``fill = n / (n + B * cap / 2)`` for ``B`` shows why
    dense slab tables force long chains: the only way up in fill is
    fewer, longer chains — the geometry behind Figure 10's slab decline.
    """
    if not 0.0 < target_fill < 1.0:
        raise InvalidConfigError(
            f"target_fill must be in (0, 1), got {target_fill}")
    waste_budget = num_keys * (1.0 - target_fill) / target_fill
    buckets = max(1, int(waste_budget / (SLAB_CAPACITY / 2.0)))
    return buckets


def _encode(keys) -> np.ndarray:
    codes = np.asarray(keys, dtype=np.uint64)
    if codes.ndim != 1:
        raise InvalidKeyError(f"keys must be one-dimensional, got {codes.shape}")
    if len(codes) and bool(np.any(codes > np.uint64(MAX_SLAB_KEY))):
        raise InvalidKeyError(f"SlabHash keys must be <= {MAX_SLAB_KEY}")
    return codes + np.uint64(2)


class SlabHashTable(GpuHashTable):
    """Chaining hash table over slab lists with symbolic deletion.

    Parameters
    ----------
    n_buckets:
        Number of bucket heads; fixed for the table's lifetime (SlabHash
        grows by chaining, never by widening the hash range).
    reserve_slabs:
        Slabs pre-reserved by the dedicated allocator.  Exceeding the
        reservation doubles the pool (expensive, counted as a full
        rehash-equivalent overhead event).
    """

    NAME = "SlabHash"
    KERNEL_COSTS = KernelCosts(find_ns=0.34, insert_ns=0.38, delete_ns=0.34)

    def __init__(self, n_buckets: int = 1024,
                 reserve_slabs: int | None = None,
                 seed: int = 0x51AB) -> None:
        if n_buckets < 1:
            raise InvalidConfigError(f"n_buckets must be >= 1, got {n_buckets}")
        self.n_buckets = n_buckets
        rng = np.random.default_rng(seed)
        self.hash = UniversalHash.random(rng)
        self.stats = TableStats()
        pool = reserve_slabs if reserve_slabs is not None else 2 * n_buckets
        pool = max(pool, n_buckets)
        self._pool_capacity = pool
        self.slab_keys = np.zeros((pool, SLAB_CAPACITY), dtype=np.uint64)
        self.slab_values = np.zeros((pool, SLAB_CAPACITY), dtype=np.uint64)
        self.slab_next = np.full(pool, NULL, dtype=np.int64)
        # Every bucket starts with one base slab, as in SlabHash.
        self.head = np.arange(n_buckets, dtype=np.int64)
        self.allocated_slabs = n_buckets
        #: Live (non-tombstoned) entries.
        self.live = 0
        #: Slots currently holding tombstones.
        self.tombstones = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.live

    @property
    def total_slots(self) -> int:
        """Slots in *allocated* slabs (the memory chained into buckets)."""
        return self.allocated_slabs * SLAB_CAPACITY

    @property
    def load_factor(self) -> float:
        """Live entries over allocated slots — decays under deletion."""
        return self.live / self.total_slots if self.total_slots else 0.0

    def memory_footprint(self) -> MemoryFootprint:
        slab_bytes = SLAB_CAPACITY * 16 + 8  # keys+values + next pointer
        reserved_unused = (self._pool_capacity - self.allocated_slabs)
        return MemoryFootprint(
            total_slots=self.total_slots,
            live_entries=self.live,
            slot_bytes=self.allocated_slabs * slab_bytes,
            overhead_bytes=reserved_unused * slab_bytes,
        )

    def chain_lengths(self) -> np.ndarray:
        """Slab count of every bucket's chain (diagnostics and tests)."""
        lengths = np.zeros(self.n_buckets, dtype=np.int64)
        for b in range(self.n_buckets):
            slab = int(self.head[b])
            while slab != NULL:
                lengths[b] += 1
                slab = int(self.slab_next[slab])
        return lengths

    def validate(self) -> None:
        keys = self.slab_keys[:self.allocated_slabs]
        live = int(np.count_nonzero((keys != EMPTY) & (keys != TOMBSTONE)))
        if live != self.live:
            raise AssertionError(f"live counter {self.live} != stored {live}")
        stored = keys[(keys != EMPTY) & (keys != TOMBSTONE)]
        if len(stored) != len(np.unique(stored)):
            raise AssertionError("duplicate key stored in slab lists")

    # ------------------------------------------------------------------
    # Chain walking (shared by find / delete / update)
    # ------------------------------------------------------------------

    def _walk(self, codes: np.ndarray, on_match: str,
              values: np.ndarray | None = None
              ) -> tuple[np.ndarray, np.ndarray]:
        """Walk each code's chain; returns ``(found, found_values)``.

        ``on_match`` selects the action at the matching slot: ``"read"``
        gathers the value, ``"write"`` stores ``values``, ``"tombstone"``
        marks the slot deleted.  One chain hop per round, one (dependent)
        memory transaction per hop per op.
        """
        n = len(codes)
        found = np.zeros(n, dtype=bool)
        out_values = np.zeros(n, dtype=np.uint64)
        if n == 0:
            return found, out_values
        buckets = (self.hash.raw(codes) % np.uint64(self.n_buckets)
                   ).astype(np.int64)
        cursor = self.head[buckets]
        active = np.ones(n, dtype=bool)
        depth = 0
        while np.any(active):
            idx = np.flatnonzero(active)
            slabs = cursor[idx]
            self.stats.random_accesses += len(idx)
            if depth > 0:
                self.stats.chain_hops += len(idx)
            depth += 1
            rows = self.slab_keys[slabs]                       # (m, cap)
            match = rows == codes[idx][:, None]
            hit = match.any(axis=1)
            slots = match.argmax(axis=1)
            hit_idx = idx[hit]
            if len(hit_idx):
                hit_slabs = slabs[hit]
                hit_slots = slots[hit]
                if on_match == "read":
                    out_values[hit_idx] = self.slab_values[hit_slabs, hit_slots]
                elif on_match == "write":
                    self.slab_values[hit_slabs, hit_slots] = values[hit_idx]
                    self.stats.random_accesses += len(hit_idx)
                elif on_match == "tombstone":
                    self.slab_keys[hit_slabs, hit_slots] = TOMBSTONE
                    self.stats.random_accesses += len(hit_idx)
                    self.live -= len(hit_idx)
                    self.tombstones += len(hit_idx)
                found[hit_idx] = True
                active[hit_idx] = False
            # Misses advance down the chain; end of chain deactivates.
            miss_idx = idx[~hit]
            nxt = self.slab_next[slabs[~hit]]
            cursor[miss_idx] = nxt
            active[miss_idx[nxt == NULL]] = False
        return found, out_values

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def find(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Walk the chain of each key's bucket."""
        codes = _encode(keys)
        self.stats.finds += len(codes)
        found, values = self._walk(codes, on_match="read")
        self.stats.find_hits += int(found.sum())
        return values, found

    def delete(self, keys) -> np.ndarray:
        """Symbolic deletion: mark tombstones, free nothing."""
        codes = _encode(keys)
        n = len(codes)
        self.stats.deletes += n
        removed = np.zeros(n, dtype=bool)
        if n == 0:
            return removed
        unique = first_occurrence_mask(codes)
        found, _ = self._walk(codes[unique], on_match="tombstone")
        removed[np.flatnonzero(unique)] = found
        self.stats.delete_hits += int(found.sum())
        return removed

    def insert(self, keys, values) -> None:
        """Upsert; reuses tombstoned slots, chains new slabs when full."""
        codes = _encode(keys)
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != codes.shape:
            raise InvalidConfigError("values shape must match keys shape")
        self.stats.inserts += len(codes)
        if len(codes) == 0:
            return
        keep = last_occurrence_mask(codes)
        codes, values = codes[keep], values[keep]

        updated, _ = self._walk(codes, on_match="write", values=values)
        self.stats.updates += int(updated.sum())
        fresh = np.flatnonzero(~updated)
        if len(fresh):
            self._place_fresh(codes[fresh], values[fresh])

    def _place_fresh(self, codes: np.ndarray, values: np.ndarray) -> None:
        """Round-synchronous placement of keys known to be absent."""
        buckets = (self.hash.raw(codes) % np.uint64(self.n_buckets)
                   ).astype(np.int64)
        cursor = self.head[buckets].copy()
        pending = np.arange(len(codes))
        depth = 0
        while len(pending):
            self.stats.eviction_rounds += 1
            slabs = cursor[pending]
            self.stats.random_accesses += len(pending)
            if depth > 0:
                self.stats.chain_hops += len(pending)
            depth += 1
            ranks, unique_slabs, inverse = rank_within_group(slabs)
            rows = self.slab_keys[unique_slabs]
            free_mask = (rows == EMPTY) | (rows == TOMBSTONE)
            free_counts = free_mask.sum(axis=1)

            can_place = ranks < free_counts[inverse]
            if np.any(can_place):
                items = pending[can_place]
                item_rows = free_mask[inverse[can_place]]
                running = item_rows.cumsum(axis=1)
                target = (ranks[can_place] + 1)[:, None]
                slots = (running == target).argmax(axis=1)
                dest = slabs[can_place]
                reused = self.slab_keys[dest, slots] == TOMBSTONE
                self.tombstones -= int(reused.sum())
                self.slab_keys[dest, slots] = codes[items]
                self.slab_values[dest, slots] = values[items]
                self.live += len(items)
                # One CAS per claimed slot (SlabHash claims via atomicCAS).
                self.stats.lock_acquisitions += len(items)
                self.stats.random_accesses += len(items)

            blocked = pending[~can_place]
            if len(blocked) == 0:
                pending = np.zeros(0, dtype=np.int64)
                continue
            blocked_slabs = cursor[blocked]
            nxt = self.slab_next[blocked_slabs]
            has_next = nxt != NULL
            cursor[blocked[has_next]] = nxt[has_next]
            # End-of-chain leaders allocate; others retry next round.
            tail = blocked[~has_next]
            if len(tail):
                tail_slabs = cursor[tail]
                tail_ranks, tail_unique, _ = rank_within_group(tail_slabs)
                leaders = tail[tail_ranks == 0]
                for op in leaders:
                    slab = int(cursor[op])
                    if self.slab_next[slab] == NULL:
                        new_slab = self._allocate_slab()
                        self.slab_next[slab] = new_slab
            pending = np.concatenate([blocked])

    def _allocate_slab(self) -> int:
        """Bump-allocate one slab from the reserved pool.

        Exceeding the reservation doubles the pool — the concurrent
        allocation expense the paper criticizes, charged as a full-rehash
        overhead event.
        """
        if self.allocated_slabs >= self._pool_capacity:
            new_capacity = self._pool_capacity * 2
            grow = new_capacity - self._pool_capacity
            self.slab_keys = np.vstack(
                [self.slab_keys,
                 np.zeros((grow, SLAB_CAPACITY), dtype=np.uint64)])
            self.slab_values = np.vstack(
                [self.slab_values,
                 np.zeros((grow, SLAB_CAPACITY), dtype=np.uint64)])
            self.slab_next = np.concatenate(
                [self.slab_next, np.full(grow, NULL, dtype=np.int64)])
            self._pool_capacity = new_capacity
            self.stats.full_rehashes += 1
        slab = self.allocated_slabs
        self.allocated_slabs += 1
        self.stats.lock_acquisitions += 1  # allocator bitmap CAS
        return slab
