"""Baseline GPU hash tables the paper compares against.

* :class:`repro.baselines.megakv.MegaKVTable` — two-function bucketized
  cuckoo with whole-table double/half resizing,
* :class:`repro.baselines.cudpp.CudppHashTable` — per-slot cuckoo with
  automatic function count, insert/find only,
* :class:`repro.baselines.slab.SlabHashTable` — slab-list chaining with
  a dedicated allocator and symbolic deletion.

All implement :class:`repro.baselines.base.GpuHashTable`, as does the
:class:`repro.baselines.dycuckoo_adapter.DyCuckooAdapter` wrapper around
the core table, so the harness treats every approach uniformly.
"""

from repro.baselines.base import GpuHashTable
from repro.baselines.cudpp import CudppHashTable, choose_num_functions
from repro.baselines.dycuckoo_adapter import DyCuckooAdapter
from repro.baselines.horton import HortonTable
from repro.baselines.megakv import MegaKVTable
from repro.baselines.slab import SlabHashTable

__all__ = [
    "GpuHashTable",
    "MegaKVTable",
    "CudppHashTable",
    "choose_num_functions",
    "SlabHashTable",
    "DyCuckooAdapter",
    "HortonTable",
]
