"""Common interface for all GPU hash-table implementations.

The experiment harness (:mod:`repro.bench`) drives every approach —
DyCuckoo and the three baselines — through this interface so one runner
can produce all of the paper's comparison figures.  Implementations
count their device events in a shared :class:`TableStats`, letting the
cost model time them consistently.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.stats import MemoryFootprint, TableStats
from repro.gpusim.metrics import KernelCosts
from repro.telemetry import NULL_TELEMETRY, Telemetry


class GpuHashTable(abc.ABC):
    """Abstract batched hash table over ``uint64`` keys and values."""

    #: Human-readable name used in reports (overridden per class).
    NAME = "abstract"

    #: Relative per-op compute costs fed to the cost model.
    KERNEL_COSTS = KernelCosts()

    #: Whether the implementation supports DELETE (CUDPP does not).
    SUPPORTS_DELETE = True

    #: Whether the implementation can resize itself dynamically.
    SUPPORTS_RESIZE = True

    #: Observability hooks (the harness reads this; implementations that
    #: carry a DyCuckooTable forward the attached handle to it).
    telemetry: Telemetry = NULL_TELEMETRY

    stats: TableStats

    def set_telemetry(self, telemetry: Telemetry | None) -> Telemetry:
        """Attach a telemetry handle (``None`` detaches); returns it."""
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        return self.telemetry

    @abc.abstractmethod
    def insert(self, keys, values) -> None:
        """Upsert a batch of key/value pairs."""

    @abc.abstractmethod
    def find(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(values, found)`` for a batch of keys."""

    @abc.abstractmethod
    def delete(self, keys) -> np.ndarray:
        """Delete a batch of keys; return the removed mask."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of live entries."""

    @property
    @abc.abstractmethod
    def load_factor(self) -> float:
        """Live entries over allocated slots."""

    @abc.abstractmethod
    def memory_footprint(self) -> MemoryFootprint:
        """Current device-memory accounting."""

    def validate(self) -> None:
        """Optional structural self-check (default: no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{type(self).__name__} entries={len(self)} "
                f"load={self.load_factor:.2%}>")
