"""Adapter presenting :class:`DyCuckooTable` through the baseline API.

The core table already has the right method signatures; the adapter adds
the harness metadata (name, kernel costs, capability flags) and a
factory matching the baseline constructors' shape, so benchmark code can
instantiate every approach from one table of factories.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GpuHashTable
from repro.core.config import DyCuckooConfig
from repro.core.stats import MemoryFootprint
from repro.core.table import DyCuckooTable
from repro.gpusim.metrics import KernelCosts


class DyCuckooAdapter(GpuHashTable):
    """DyCuckoo behind the common harness interface.

    The slightly higher ``find_ns`` versus MegaKV reflects the extra
    first-layer hash — the cost the paper cites for DyCuckoo's FIND
    being marginally behind MegaKV's in Figure 9.
    """

    NAME = "DyCuckoo"
    KERNEL_COSTS = KernelCosts(find_ns=0.42, insert_ns=0.36, delete_ns=0.42)

    def __init__(self, config: DyCuckooConfig | None = None) -> None:
        self.table = DyCuckooTable(config)
        self.stats = self.table.stats

    @property
    def config(self) -> DyCuckooConfig:
        return self.table.config

    @property
    def telemetry(self):
        """The inner table's telemetry handle (shared, not duplicated)."""
        return self.table.telemetry

    def set_telemetry(self, telemetry):
        return self.table.set_telemetry(telemetry)

    @property
    def profiler(self):
        """The inner table's deep-profiler handle (shared, not duplicated)."""
        return self.table.profiler

    def set_profiler(self, profiler):
        return self.table.set_profiler(profiler)

    @property
    def recorder(self):
        """The inner table's flight-recorder handle."""
        return self.table.recorder

    def set_recorder(self, recorder):
        return self.table.set_recorder(recorder)

    @property
    def subtable_load_factors(self) -> list[float]:
        return self.table.subtable_load_factors

    def insert(self, keys, values) -> None:
        self.table.insert(keys, values)

    def find(self, keys) -> tuple[np.ndarray, np.ndarray]:
        return self.table.find(keys)

    def delete(self, keys) -> np.ndarray:
        return self.table.delete(keys)

    def __len__(self) -> int:
        return len(self.table)

    @property
    def load_factor(self) -> float:
        return self.table.load_factor

    def memory_footprint(self) -> MemoryFootprint:
        return self.table.memory_footprint()

    def validate(self) -> None:
        self.table.validate()
