"""CUDPP-style cuckoo hash baseline (Alcantara et al., 2009).

The CUDPP library's hash table is a *per-slot* cuckoo hash: a single
slot array, ``d`` hash functions (chosen automatically between 2 and 5
from the requested space usage), and insertion by 64-bit ``atomicExch``
— a thread exchanges its packed KV into the slot and, if it receives a
previous occupant, carries that evictee onward to its next hash
function.  Compared to the bucketized designs this costs one *random*
(uncoalesced) memory transaction per probe, which is why MegaKV and
DyCuckoo dominate it in Figure 9.

Matching the paper's usage:

* only ``insert`` and ``find`` are supported (``delete`` raises
  :class:`UnsupportedOperationError`);
* the table is static — it is sized at construction for the data to be
  inserted; a stalled insertion rebuilds with fresh hash functions
  (CUDPP's documented recovery), not with a bigger table;
* higher requested filled factors make CUDPP pick more hash functions,
  which speeds insertion but slows FIND — the crossover the paper points
  out in Figure 10.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GpuHashTable
from repro.core.grouping import last_occurrence_mask, rank_within_group
from repro.core.hashing import UniversalHash
from repro.core.stats import MemoryFootprint, TableStats
from repro.core.table import encode_keys
from repro.errors import (CapacityError, InvalidConfigError,
                          UnsupportedOperationError)
from repro.gpusim.metrics import KernelCosts

#: Empty-slot sentinel in the internal code space.
EMPTY = np.uint64(0)


def choose_num_functions(target_fill: float) -> int:
    """CUDPP's automatic hash-function count for a requested fill.

    Denser tables need more alternative locations to converge; sparser
    ones get away with two.  Mirrors the space-usage heuristic of the
    CUDPP implementation (2 to 5 functions).
    """
    if not 0.0 < target_fill <= 1.0:
        raise InvalidConfigError(f"target_fill must be in (0, 1], got {target_fill}")
    if target_fill <= 0.50:
        return 2
    if target_fill <= 0.65:
        return 3
    if target_fill <= 0.85:
        return 4
    return 5


class CudppHashTable(GpuHashTable):
    """Static per-slot cuckoo hash with automatic function count.

    Parameters
    ----------
    expected_entries:
        Number of keys the table is sized for.
    target_fill:
        Requested filled factor; determines both the slot count and
        (via :func:`choose_num_functions`) the number of hash functions.
    num_functions:
        Explicit override of the automatic choice.
    """

    NAME = "CUDPP"
    KERNEL_COSTS = KernelCosts(find_ns=0.30, insert_ns=0.34)
    SUPPORTS_DELETE = False
    SUPPORTS_RESIZE = False

    #: CUDPP's eviction-chain budget scale (iterations per log2 n).
    MAX_ITER_SCALE = 7

    def __init__(self, expected_entries: int, target_fill: float = 0.85,
                 num_functions: int | None = None, seed: int = 0xC0DF) -> None:
        if expected_entries < 1:
            raise InvalidConfigError("expected_entries must be >= 1")
        self.num_functions = (num_functions if num_functions is not None
                              else choose_num_functions(target_fill))
        if not 2 <= self.num_functions <= 5:
            raise InvalidConfigError(
                f"num_functions must be in [2, 5], got {self.num_functions}"
            )
        self.n_slots = max(64, int(expected_entries / target_fill))
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.stats = TableStats()
        self._build()

    def _build(self) -> None:
        """Allocate slots and draw fresh hash functions."""
        self.keys = np.zeros(self.n_slots, dtype=np.uint64)
        self.values = np.zeros(self.n_slots, dtype=np.uint64)
        self.hashes = [UniversalHash.random(self._rng)
                       for _ in range(self.num_functions)]
        self.size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    @property
    def load_factor(self) -> float:
        return self.size / self.n_slots if self.n_slots else 0.0

    def memory_footprint(self) -> MemoryFootprint:
        return MemoryFootprint(
            total_slots=self.n_slots,
            live_entries=self.size,
            slot_bytes=self.keys.nbytes + self.values.nbytes,
        )

    def validate(self) -> None:
        live = int(np.count_nonzero(self.keys != EMPTY))
        if live != self.size:
            raise AssertionError(f"size {self.size} != live {live}")
        occupied = self.keys[self.keys != EMPTY]
        if len(occupied) != len(np.unique(occupied)):
            raise AssertionError("duplicate key stored")

    def _slot_of(self, codes: np.ndarray, func: np.ndarray) -> np.ndarray:
        """Slot index per code under its per-key function index."""
        slots = np.empty(len(codes), dtype=np.int64)
        for f in range(self.num_functions):
            sel = func == f
            if np.any(sel):
                slots[sel] = (self.hashes[f].raw(codes[sel])
                              % np.uint64(self.n_slots)).astype(np.int64)
        return slots

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def find(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Probe up to ``d`` slots per key (uncoalesced accesses)."""
        codes = encode_keys(keys)
        n = len(codes)
        self.stats.finds += n
        values = np.zeros(n, dtype=np.uint64)
        found = np.zeros(n, dtype=bool)
        for f in range(self.num_functions):
            pending = np.flatnonzero(~found)
            if len(pending) == 0:
                break
            if f > 0:
                self.stats.chain_hops += len(pending)
            slots = (self.hashes[f].raw(codes[pending])
                     % np.uint64(self.n_slots)).astype(np.int64)
            self.stats.random_accesses += len(pending)
            hit = self.keys[slots] == codes[pending]
            values[pending[hit]] = self.values[slots[hit]]
            found[pending[hit]] = True
        self.stats.find_hits += int(found.sum())
        return values, found

    def delete(self, keys) -> np.ndarray:
        """CUDPP supports only insert and find."""
        raise UnsupportedOperationError(
            "the CUDPP cuckoo hash does not implement delete"
        )

    def insert(self, keys, values) -> None:
        """Upsert a batch via atomicExch-style eviction chains."""
        codes = encode_keys(keys)
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != codes.shape:
            raise InvalidConfigError("values shape must match keys shape")
        self.stats.inserts += len(codes)
        if len(codes) == 0:
            return
        keep = last_occurrence_mask(codes)
        codes, values = codes[keep], values[keep]

        updated = self._update_existing(codes, values)
        self.stats.updates += int(updated.sum())
        fresh = np.flatnonzero(~updated)
        if len(fresh) == 0:
            return
        if self.size + len(fresh) > self.n_slots:
            self.stats.insert_failures += len(fresh)
            raise CapacityError(
                "CUDPP table cannot hold more entries than slots"
            )
        remaining = (codes[fresh], values[fresh])
        rebuilds = 0
        while True:
            leftover = self._insert_chain(*remaining)
            if len(leftover[0]) == 0:
                return
            # CUDPP's recovery: rehash everything with fresh functions.
            rebuilds += 1
            if rebuilds > 8:
                self.stats.insert_failures += len(leftover[0])
                raise CapacityError(
                    "CUDPP insertion failed repeatedly; table too dense"
                )
            stored = self.keys != EMPTY
            all_codes = np.concatenate([self.keys[stored], leftover[0]])
            all_values = np.concatenate([self.values[stored], leftover[1]])
            self.stats.full_rehashes += 1
            self.stats.rehashed_entries += int(stored.sum())
            self._build()
            remaining = (all_codes, all_values)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _update_existing(self, codes: np.ndarray, values: np.ndarray
                         ) -> np.ndarray:
        updated = np.zeros(len(codes), dtype=bool)
        for f in range(self.num_functions):
            pending = np.flatnonzero(~updated)
            if len(pending) == 0:
                break
            if f > 0:
                self.stats.chain_hops += len(pending)
            slots = (self.hashes[f].raw(codes[pending])
                     % np.uint64(self.n_slots)).astype(np.int64)
            self.stats.random_accesses += len(pending)
            hit = self.keys[slots] == codes[pending]
            self.values[slots[hit]] = values[pending[hit]]
            updated[pending[hit]] = True
        return updated

    def _insert_chain(self, codes: np.ndarray, values: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Round-synchronous eviction chains; returns unplaced leftovers.

        Each round every pending key performs one atomicExch on its
        current slot.  Writers to the same slot serialize: the first
        receives the prior occupant, each later writer receives the one
        before it, and the slot ends holding the last writer — exact
        exchange semantics, vectorized via within-slot ranking.
        """
        func = np.zeros(len(codes), dtype=np.int64)
        max_iters = self.MAX_ITER_SCALE * max(
            1, int(np.ceil(np.log2(max(2, self.n_slots)))))
        for _ in range(max_iters):
            if len(codes) == 0:
                break
            self.stats.eviction_rounds += 1
            slots = self._slot_of(codes, func)
            self.stats.random_accesses += len(codes)
            # Every insertion attempt is one 64-bit atomicExch.
            self.stats.atomic_exchanges += len(codes)
            ranks, unique_slots, inverse = rank_within_group(slots)
            counts = np.bincount(inverse)
            last_writer = ranks == (counts[inverse] - 1)

            # What each writer receives from the exchange:
            evicted_codes = np.empty(len(codes), dtype=np.uint64)
            evicted_values = np.empty(len(codes), dtype=np.uint64)
            first = ranks == 0
            evicted_codes[first] = self.keys[slots[first]]
            evicted_values[first] = self.values[slots[first]]
            if np.any(~first):
                order = np.lexsort((ranks, inverse))
                ordered = np.arange(len(codes))[order]
                # In slot order, writer at position p receives writer p-1.
                prev = np.empty(len(codes), dtype=np.int64)
                prev[ordered[1:]] = ordered[:-1]
                later = np.flatnonzero(~first)
                evicted_codes[later] = codes[prev[later]]
                evicted_values[later] = values[prev[later]]

            # The slot ends up holding the last writer.
            lw = np.flatnonzero(last_writer)
            self.keys[slots[lw]] = codes[lw]
            self.values[slots[lw]] = values[lw]

            carried = evicted_codes != EMPTY
            self.size += int((~carried).sum())
            self.stats.evictions += int(carried.sum())
            if not np.any(carried):
                return (np.zeros(0, dtype=np.uint64),
                        np.zeros(0, dtype=np.uint64))
            origin_slots = slots[carried]
            codes = evicted_codes[carried]
            values = evicted_values[carried]
            func = self._next_function(codes, origin_slots)
        return codes, values

    def _next_function(self, codes: np.ndarray, origin_slots: np.ndarray
                       ) -> np.ndarray:
        """Which function an evictee should try next.

        CUDPP recovers an evictee's current function by checking which
        hash maps it to the slot it was displaced from; the successor is
        the next function cyclically.  A fresh key that lost a same-slot
        race (its "origin" never matched any of its own hashes) restarts
        at function 0 via the unresolved default.
        """
        current = np.zeros(len(codes), dtype=np.int64)
        resolved = np.zeros(len(codes), dtype=bool)
        for f in range(self.num_functions):
            slots = (self.hashes[f].raw(codes)
                     % np.uint64(self.n_slots)).astype(np.int64)
            came_from = (~resolved) & (slots == origin_slots)
            current[came_from] = f
            resolved |= came_from
        next_func = (current + 1) % self.num_functions
        # Unresolved carriers (race losers) retry their first function.
        next_func[~resolved] = 0
        return next_func
