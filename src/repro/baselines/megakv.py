"""MegaKV baseline (Zhang et al., VLDB 2015) as used in the paper.

MegaKV is a *static* bucketized cuckoo hash with exactly **two** hash
functions: every key has two candidate buckets, insertion evicts
occupants back and forth between them, and FIND simply checks both
buckets (which is why the paper reports MegaKV with the best FIND
throughput — no extra hashing layer).

For the dynamic experiments the paper bolts the naive resize strategy
onto MegaKV: when the filled factor leaves ``[alpha, beta]`` (or an
insert fails), the structure **doubles or halves entirely and rehashes
every KV pair** — the expensive, table-locking behaviour DyCuckoo's
single-subtable resizing is designed to avoid.

Faithfulness notes:

* buckets are cache-line sized, identical to DyCuckoo's layout — MegaKV
  pioneered this; we reuse :class:`repro.core.subtable.Subtable`;
* MegaKV resolves update races with per-slot ``atomicExch`` rather than
  bucket locks, so it records no lock traffic; its cost profile is pure
  memory traffic plus eviction rounds;
* with only two candidate buckets, eviction chains grow much faster at
  high fill than DyCuckoo's d-table chains — that asymmetry, not any
  tuning constant, drives the INSERT gap in Figure 9.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GpuHashTable
from repro.core.grouping import first_occurrence_mask, last_occurrence_mask
from repro.core.hashing import UniversalHash
from repro.core.stats import MemoryFootprint, TableStats
from repro.core.subtable import Subtable
from repro.core.table import encode_keys
from repro.errors import CapacityError, InvalidConfigError
from repro.gpusim.metrics import KernelCosts


class MegaKVTable(GpuHashTable):
    """Two-function bucketized cuckoo hash with whole-table resizing.

    Parameters
    ----------
    initial_buckets:
        Buckets per subtable (power of two).
    bucket_capacity:
        Slots per bucket.  MegaKV's native geometry uses 8-entry buckets
        (two cache lines of signature+location pairs); DyCuckoo's larger
        32-entry buckets at the same total memory produce fewer
        evictions, which is the root of the INSERT gap in Figure 9.
    alpha, beta:
        Filled-factor bounds for the double/half resize strategy; only
        consulted when ``auto_resize`` is True.
    auto_resize:
        Enables the dynamic double/half behaviour.  The static
        experiments construct MegaKV pre-sized with this off.
    max_eviction_rounds:
        Insert rounds without progress before the insert is declared
        failed (triggering a doubling when ``auto_resize``).
    """

    NAME = "MegaKV"
    KERNEL_COSTS = KernelCosts(find_ns=0.20, insert_ns=0.26, delete_ns=0.20)

    def __init__(self, initial_buckets: int = 64, bucket_capacity: int = 8,
                 alpha: float = 0.30, beta: float = 0.85,
                 auto_resize: bool = True, max_eviction_rounds: int = 64,
                 min_buckets: int = 8, seed: int = 0x3E6A) -> None:
        if not 0.0 <= alpha < beta <= 1.0:
            raise InvalidConfigError(
                f"require 0 <= alpha < beta <= 1, got {alpha}, {beta}"
            )
        self.bucket_capacity = bucket_capacity
        self.alpha = alpha
        self.beta = beta
        self.auto_resize = auto_resize
        self.max_eviction_rounds = max_eviction_rounds
        self.min_buckets = min_buckets
        self.seed = seed
        self.stats = TableStats()
        self._rng = np.random.default_rng(seed)
        self._build(initial_buckets)

    def _build(self, n_buckets: int) -> None:
        """(Re)create the two subtables and draw fresh hash functions."""
        self.subtables = [Subtable(n_buckets, self.bucket_capacity)
                          for _ in range(2)]
        self.hashes = [UniversalHash.random(self._rng) for _ in range(2)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(st.size for st in self.subtables)

    @property
    def n_buckets(self) -> int:
        """Buckets per subtable."""
        return self.subtables[0].n_buckets

    @property
    def total_slots(self) -> int:
        return sum(st.total_slots for st in self.subtables)

    @property
    def load_factor(self) -> float:
        slots = self.total_slots
        return len(self) / slots if slots else 0.0

    def memory_footprint(self) -> MemoryFootprint:
        return MemoryFootprint(
            total_slots=self.total_slots,
            live_entries=len(self),
            slot_bytes=sum(st.slot_bytes for st in self.subtables),
            overhead_bytes=0,
        )

    def validate(self) -> None:
        for st in self.subtables:
            st.validate()
        codes = np.concatenate([st.export_entries()[0]
                                for st in self.subtables])
        if len(codes) != len(np.unique(codes)):
            raise AssertionError("duplicate key stored across subtables")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def find(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Check the two candidate buckets of each key."""
        codes = encode_keys(keys)
        n = len(codes)
        self.stats.finds += n
        values = np.zeros(n, dtype=np.uint64)
        found = np.zeros(n, dtype=bool)
        if n == 0:
            return values, found
        for table_idx in range(2):
            pending = np.flatnonzero(~found)
            if len(pending) == 0:
                break
            if table_idx == 1:
                self.stats.chain_hops += len(pending)
            st = self.subtables[table_idx]
            buckets = self.hashes[table_idx].bucket(codes[pending],
                                                    st.n_buckets)
            self.stats.bucket_reads += len(pending)
            hit, vals = st.lookup(buckets, codes[pending])
            values[pending[hit]] = vals[hit]
            found[pending[hit]] = True
        self.stats.find_hits += int(found.sum())
        return values, found

    def delete(self, keys) -> np.ndarray:
        """Physically clear matching slots in either candidate bucket."""
        all_codes = encode_keys(keys)
        n = len(all_codes)
        self.stats.deletes += n
        removed = np.zeros(n, dtype=bool)
        if n == 0:
            return removed
        # Only the first occurrence of a duplicated key can clear it.
        unique = first_occurrence_mask(all_codes)
        unique_idx = np.flatnonzero(unique)
        codes = all_codes[unique]
        removed_unique = np.zeros(len(codes), dtype=bool)
        for table_idx in range(2):
            pending = np.flatnonzero(~removed_unique)
            if len(pending) == 0:
                break
            if table_idx == 1:
                self.stats.chain_hops += len(pending)
            st = self.subtables[table_idx]
            buckets = self.hashes[table_idx].bucket(codes[pending],
                                                    st.n_buckets)
            self.stats.bucket_reads += len(pending)
            erased = st.erase(buckets, codes[pending])
            self.stats.bucket_writes += int(erased.sum())
            removed_unique[pending[erased]] = True
        removed[unique_idx] = removed_unique
        self.stats.delete_hits += int(removed_unique.sum())
        if self.auto_resize:
            self._enforce_bounds()
        return removed

    def insert(self, keys, values) -> None:
        """Upsert a batch; doubles the whole structure under pressure."""
        codes = encode_keys(keys)
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != codes.shape:
            raise InvalidConfigError("values shape must match keys shape")
        self.stats.inserts += len(codes)
        if len(codes) == 0:
            return
        keep = last_occurrence_mask(codes)
        codes, values = codes[keep], values[keep]
        updated = self._update_existing(codes, values)
        self.stats.updates += int(updated.sum())
        fresh = np.flatnonzero(~updated)
        pending = (codes[fresh], values[fresh])
        # Faithful to the paper's baseline: resizing is *reactive* — a
        # doubling happens when an insertion fails mid-batch, and the
        # [alpha, beta] threshold is checked only between batches.
        while len(pending[0]):
            if (self.auto_resize
                    and len(self) + len(pending[0]) > self.total_slots):
                # A physically impossible fit would only churn evictions
                # before failing; the failure-triggered doubling happens
                # now rather than after a futile eviction storm.
                self._rebuild(self.n_buckets * 2)
                continue
            pending = self._insert_fresh(*pending)
            if len(pending[0]):
                if not self.auto_resize:
                    self.stats.insert_failures += len(pending[0])
                    raise CapacityError(
                        f"MegaKV insert failed for {len(pending[0])} keys "
                        "(static table full)"
                    )
                self._rebuild(self.n_buckets * 2)
        if self.auto_resize:
            self._enforce_bounds()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _update_existing(self, codes: np.ndarray, values: np.ndarray
                         ) -> np.ndarray:
        updated = np.zeros(len(codes), dtype=bool)
        for table_idx in range(2):
            pending = np.flatnonzero(~updated)
            if len(pending) == 0:
                break
            if table_idx == 1:
                self.stats.chain_hops += len(pending)
            st = self.subtables[table_idx]
            buckets = self.hashes[table_idx].bucket(codes[pending],
                                                    st.n_buckets)
            self.stats.bucket_reads += len(pending)
            upd = st.update_existing(buckets, codes[pending], values[pending])
            self.stats.bucket_writes += int(upd.sum())
            updated[pending[upd]] = True
        return updated

    def _insert_fresh(self, codes: np.ndarray, values: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Round-synchronous two-table cuckoo insertion.

        Returns the ``(codes, values)`` that could not be placed after
        the eviction budget stalled; the caller decides whether that
        means growing (dynamic) or failing (static).
        """
        targets = (codes % np.uint64(2)).astype(np.int64)
        rounds_without_progress = 0
        while len(codes):
            self.stats.eviction_rounds += 1
            before = len(codes)
            next_codes, next_values, next_targets = [], [], []
            for table_idx in range(2):
                sel = np.flatnonzero(targets == table_idx)
                if len(sel) == 0:
                    continue
                st = self.subtables[table_idx]
                sel_codes, sel_values = codes[sel], values[sel]
                buckets = self.hashes[table_idx].bucket(sel_codes,
                                                        st.n_buckets)
                self.stats.bucket_reads += len(sel)
                updated, placed, full_leader = st.place_round(
                    buckets, sel_codes, sel_values)
                writes = int(placed.sum() + updated.sum())
                self.stats.bucket_writes += writes
                # MegaKV claims slots with per-slot atomicExch instead of
                # bucket locks (one exchange per committed write).
                self.stats.atomic_exchanges += writes
                ev = np.flatnonzero(full_leader)
                if len(ev):
                    slots = (buckets[ev] + self.stats.evictions) % st.bucket_capacity
                    old_codes, old_values = st.swap_slot(
                        buckets[ev], slots, sel_codes[ev], sel_values[ev])
                    self.stats.evictions += len(ev)
                    self.stats.bucket_writes += len(ev)
                    next_codes.append(old_codes)
                    next_values.append(old_values)
                    next_targets.append(np.full(len(ev), 1 - table_idx,
                                                dtype=np.int64))
                retry = ~(updated | placed | full_leader)
                if np.any(retry):
                    next_codes.append(sel_codes[retry])
                    next_values.append(sel_values[retry])
                    next_targets.append(np.full(int(retry.sum()), table_idx,
                                                dtype=np.int64))
            if next_codes:
                codes = np.concatenate(next_codes)
                values = np.concatenate(next_values)
                targets = np.concatenate(next_targets)
            else:
                codes = np.zeros(0, dtype=np.uint64)
                values = np.zeros(0, dtype=np.uint64)
                targets = np.zeros(0, dtype=np.int64)
            rounds_without_progress = (rounds_without_progress + 1
                                       if len(codes) >= before else 0)
            if rounds_without_progress >= self.max_eviction_rounds:
                return codes, values
        return codes, values

    def _enforce_bounds(self) -> None:
        """The naive strategy: double or halve everything, rehash all."""
        while self.total_slots and self.load_factor > self.beta:
            self._rebuild(self.n_buckets * 2)
        while (self.load_factor < self.alpha
               and self.n_buckets > self.min_buckets):
            projected = len(self) / (self.total_slots / 2)
            if projected > self.beta:
                break
            self._rebuild(self.n_buckets // 2)

    def _rebuild(self, new_buckets: int) -> None:
        """Allocate a new structure and rehash every KV pair into it.

        This is the full-table lock the paper charges MegaKV with: every
        entry is read out and reinserted under fresh hash functions.  If
        the fresh functions are unlucky and the reinsert stalls, the new
        structure doubles again until everything fits.
        """
        entries = [st.export_entries() for st in self.subtables]
        codes = np.concatenate([e[0] for e in entries])
        values = np.concatenate([e[1] for e in entries])
        self.stats.full_rehashes += 1
        self.stats.rehashed_entries += len(codes)
        self.stats.bucket_reads += sum(st.n_buckets for st in self.subtables)
        while True:
            self._build(new_buckets)
            leftover_codes, _leftover_values = self._insert_fresh(codes, values)
            if len(leftover_codes) == 0:
                return
            new_buckets *= 2
