"""YCSB-style workloads (an extension beyond the paper's protocol).

The Yahoo! Cloud Serving Benchmark's core workload mixes are the
industry-standard way to exercise key-value stores.  This module adapts
the mixes to the batched GPU execution model: each generated batch
contains homogeneous sub-batches (reads, then updates, then inserts)
whose sizes follow the mix, with request keys drawn from the chosen
popularity distribution.

Supported mixes (YCSB-E needs range scans, which hash tables do not
provide, so it is omitted):

========  ==========================  =======================
workload  mix                         distribution default
========  ==========================  =======================
A         50% read / 50% update       zipfian
B         95% read / 5% update        zipfian
C         100% read                   zipfian
D         95% read / 5% insert        latest
F         50% read / 50% RMW          zipfian
========  ==========================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import InvalidConfigError
from repro.workloads.batches import Batch, Operation


@dataclass(frozen=True)
class YcsbMix:
    """Operation proportions of one YCSB core workload."""

    name: str
    read: float
    update: float
    insert: float
    rmw: float
    distribution: str  # "zipfian" | "uniform" | "latest"

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise InvalidConfigError(
                f"workload {self.name}: proportions sum to {total}, not 1")
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise InvalidConfigError(
                f"unknown distribution {self.distribution!r}")


WORKLOAD_A = YcsbMix("A", read=0.5, update=0.5, insert=0.0, rmw=0.0,
                     distribution="zipfian")
WORKLOAD_B = YcsbMix("B", read=0.95, update=0.05, insert=0.0, rmw=0.0,
                     distribution="zipfian")
WORKLOAD_C = YcsbMix("C", read=1.0, update=0.0, insert=0.0, rmw=0.0,
                     distribution="zipfian")
WORKLOAD_D = YcsbMix("D", read=0.95, update=0.0, insert=0.05, rmw=0.0,
                     distribution="latest")
WORKLOAD_F = YcsbMix("F", read=0.5, update=0.0, insert=0.0, rmw=0.5,
                     distribution="zipfian")

CORE_WORKLOADS = {"A": WORKLOAD_A, "B": WORKLOAD_B, "C": WORKLOAD_C,
                  "D": WORKLOAD_D, "F": WORKLOAD_F}


class YcsbWorkload:
    """Generates the load phase and run-phase batches of one YCSB mix.

    Parameters
    ----------
    mix:
        One of the :data:`CORE_WORKLOADS` (or a custom :class:`YcsbMix`).
    num_records:
        Records inserted by the load phase.
    num_operations:
        Total run-phase operations.
    batch_size:
        Operations per run-phase batch.
    zipf_exponent:
        Skew of the zipfian request distribution.
    """

    def __init__(self, mix: YcsbMix, num_records: int = 100_000,
                 num_operations: int = 500_000, batch_size: int = 10_000,
                 zipf_exponent: float = 0.99, seed: int = 0) -> None:
        if num_records < 1:
            raise InvalidConfigError("num_records must be >= 1")
        if batch_size < 1:
            raise InvalidConfigError("batch_size must be >= 1")
        self.mix = mix
        self.num_records = num_records
        self.num_operations = num_operations
        self.batch_size = batch_size
        self.zipf_exponent = zipf_exponent
        self._rng = np.random.default_rng(seed)
        # Record keys are a random permutation so popularity rank is
        # uncorrelated with hash placement.
        self._record_keys = self._rng.permutation(
            np.arange(1, num_records + 1, dtype=np.uint64))
        self._inserted = num_records  # grows under workload D
        self._zipf_weights = self._make_zipf_weights(num_records)
        # Scrambled zipfian (as in YCSB proper): popularity rank is also
        # uncorrelated with *insertion order*, otherwise the hottest
        # records all sit at chain heads / early slots and flatter the
        # structures that place early arrivals shallowly.
        self._popularity_order = self._rng.permutation(num_records)

    def _make_zipf_weights(self, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_exponent)
        return weights / weights.sum()

    # ------------------------------------------------------------------
    # Key sampling
    # ------------------------------------------------------------------

    def _sample_keys(self, count: int) -> np.ndarray:
        """Draw request keys per the mix's popularity distribution."""
        live = self._record_keys[:self._inserted]
        if self.mix.distribution == "uniform":
            idx = self._rng.integers(0, len(live), count)
        elif self.mix.distribution == "zipfian":
            weights = self._zipf_weights
            order = self._popularity_order
            if len(weights) != len(live):
                weights = self._make_zipf_weights(len(live))
                order = self._rng.permutation(len(live))
            ranks = self._rng.choice(len(live), size=count, p=weights)
            idx = order[ranks]
        else:  # latest: newest records are the most popular
            offsets = self._rng.geometric(p=0.05, size=count)
            idx = np.maximum(0, len(live) - offsets)
        return live[idx]

    def _fresh_keys(self, count: int) -> np.ndarray:
        """Brand-new record keys for workload D's inserts."""
        start = self._inserted + 1
        fresh = np.arange(start, start + count, dtype=np.uint64)
        self._record_keys = np.concatenate([self._record_keys, fresh])
        self._inserted += count
        return fresh

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def load_phase(self) -> Operation:
        """The initial bulk insert of every record."""
        values = self._rng.integers(1, 1 << 62, self.num_records
                                    ).astype(np.uint64)
        return Operation("insert", self._record_keys[:self.num_records],
                         values)

    def run_phase(self) -> Iterator[Batch]:
        """Yield run-phase batches following the mix proportions.

        A read-modify-write is one FIND batch followed by an INSERT
        batch over the same keys (the canonical YCSB-F pattern).
        """
        emitted = 0
        index = 0
        while emitted < self.num_operations:
            size = min(self.batch_size, self.num_operations - emitted)
            n_read = int(round(size * self.mix.read))
            n_update = int(round(size * self.mix.update))
            n_insert = int(round(size * self.mix.insert))
            n_rmw = size - n_read - n_update - n_insert

            ops = []
            if n_read:
                ops.append(Operation("find", self._sample_keys(n_read)))
            if n_update:
                keys = self._sample_keys(n_update)
                ops.append(Operation(
                    "insert", keys,
                    self._rng.integers(1, 1 << 62, n_update
                                       ).astype(np.uint64)))
            if n_insert:
                keys = self._fresh_keys(n_insert)
                ops.append(Operation(
                    "insert", keys,
                    self._rng.integers(1, 1 << 62, n_insert
                                       ).astype(np.uint64)))
            if n_rmw > 0:
                keys = self._sample_keys(n_rmw)
                ops.append(Operation("find", keys))
                ops.append(Operation(
                    "insert", keys,
                    self._rng.integers(1, 1 << 62, n_rmw
                                       ).astype(np.uint64)))
            yield Batch(index, 1, tuple(ops))
            emitted += size
            index += 1
