"""Surrogate dataset generators matched to the paper's Table 2.

The paper evaluates on five datasets; three are proprietary crawls
(Twitter actions, Reddit actions, Alibaba Databank transactions), one is
TPC-H lineitem and one is a deduplicated random stream.  None of the raw
data ships with the paper, so we generate surrogates that match the
statistics the paper reports — total KV pairs, unique keys, and the
duplicate skew — because those are the properties that drive hash-table
behaviour (update-vs-insert mix and bucket hot spots).  Table 2:

===========  ============  ============  ==============
dataset      KV pairs      unique keys   duplicate skew
===========  ============  ============  ==============
TW           50,876,784    44,523,684    light (max ~4)
RE           48,104,875    41,466,682    light (max ~2)
LINE         50,000,000    45,159,880    light (max ~4)
COM          10,000,000     4,583,941    heavy (max ~14)
RAND        100,000,000   100,000,000    none
===========  ============  ============  ==============

Generators accept a ``scale`` factor (default 1/100) because the
simulator runs on a CPU; scaling preserves the unique/total ratio and
the duplicate-multiplicity histogram shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigError

#: Default scale applied to the paper's dataset sizes.
DEFAULT_SCALE = 0.01


@dataclass(frozen=True)
class DatasetSpec:
    """Statistical fingerprint of one evaluation dataset."""

    name: str
    #: Full-size totals from Table 2 of the paper.
    total_pairs: int
    unique_keys: int
    #: Cap on how many times one key repeats.
    max_duplicates: int
    #: Zipf-ish exponent for distributing duplicates (0 = uniform).
    skew: float
    description: str = ""

    def generate(self, scale: float = DEFAULT_SCALE, seed: int = 0
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Produce ``(keys, values)`` arrays at the requested scale.

        The stream contains ``round(total_pairs * scale)`` KV pairs over
        ``round(unique_keys * scale)`` distinct keys, with duplicate
        occurrences spread according to ``skew`` and capped at
        ``max_duplicates`` per key, then shuffled into a random arrival
        order.
        """
        if not 0.0 < scale <= 1.0:
            raise InvalidConfigError(f"scale must be in (0, 1], got {scale}")
        # zlib.crc32 is stable across processes (unlike built-in hash()).
        import zlib

        name_hash = zlib.crc32(self.name.encode("utf-8")) & 0x7FFFFFFF
        rng = np.random.default_rng(seed ^ name_hash)
        total = max(1, round(self.total_pairs * scale))
        unique = max(1, min(total, round(self.unique_keys * scale)))

        keys = self._draw_unique_keys(unique, rng)
        counts = self._duplicate_counts(total, unique, rng)
        stream = np.repeat(keys, counts)
        rng.shuffle(stream)
        values = rng.integers(1, 1 << 62, len(stream)).astype(np.uint64)
        return stream, values

    @staticmethod
    def _draw_unique_keys(unique: int, rng: np.random.Generator) -> np.ndarray:
        """Distinct uint64 keys (rejection-free: draw extra, dedupe)."""
        drawn = rng.integers(1, 1 << 62, int(unique * 1.1) + 16,
                             dtype=np.int64).astype(np.uint64)
        distinct = np.unique(drawn)
        while len(distinct) < unique:
            more = rng.integers(1, 1 << 62, unique, dtype=np.int64
                                ).astype(np.uint64)
            distinct = np.unique(np.concatenate([distinct, more]))
        chosen = distinct[:unique]
        rng.shuffle(chosen)
        return chosen

    def _duplicate_counts(self, total: int, unique: int,
                          rng: np.random.Generator) -> np.ndarray:
        """Per-key multiplicities summing to ``total``.

        Every key occurs at least once; the ``total - unique`` surplus is
        assigned preferentially to a skew-weighted subset ("celebrity"
        keys for COM), capped at ``max_duplicates``.
        """
        counts = np.ones(unique, dtype=np.int64)
        surplus = total - unique
        if surplus <= 0:
            return counts
        if self.skew > 0:
            weights = 1.0 / np.arange(1, unique + 1, dtype=np.float64) ** self.skew
        else:
            weights = np.ones(unique, dtype=np.float64)
        weights /= weights.sum()
        headroom = self.max_duplicates - 1
        while surplus > 0:
            grant = rng.multinomial(surplus, weights)
            grant = np.minimum(grant, headroom - (counts - 1))
            added = int(grant.sum())
            if added == 0:
                # All weighted keys are saturated; spread the rest
                # uniformly over whatever headroom remains.
                open_keys = np.flatnonzero(counts - 1 < headroom)
                if len(open_keys) == 0:
                    raise InvalidConfigError(
                        f"{self.name}: max_duplicates={self.max_duplicates} "
                        f"cannot absorb {surplus} surplus occurrences"
                    )
                take = min(surplus, len(open_keys))
                counts[rng.choice(open_keys, take, replace=False)] += 1
                surplus -= take
                continue
            counts += grant
            surplus -= added
        return counts


#: Twitter actions (tweet/retweet/quote/reply) — light duplication.
TW = DatasetSpec("TW", 50_876_784, 44_523_684, max_duplicates=4, skew=0.6,
                 description="Twitter stream actions, one week of trending "
                             "topics")

#: Reddit posts and comments, May 2015 — near-unique keys.
RE = DatasetSpec("RE", 48_104_875, 41_466_682, max_duplicates=2, skew=0.3,
                 description="Reddit post/comment actions")

#: TPC-H lineitem composite keys.
LINE = DatasetSpec("LINE", 50_000_000, 45_159_880, max_duplicates=4, skew=0.4,
                   description="TPC-H lineitem orderkey/linenumber/partkey")

#: Alibaba Databank customer transactions — heavy skew.
COM = DatasetSpec("COM", 10_000_000, 4_583_941, max_duplicates=14, skew=1.05,
                  description="Alibaba Databank customer behaviour sample")

#: Deduplicated random keys — no duplicates at all.
RAND = DatasetSpec("RAND", 100_000_000, 100_000_000, max_duplicates=1,
                   skew=0.0, description="deduplicated normal-distribution "
                                         "synthetic keys")

#: The paper's five datasets, in presentation order.
ALL_DATASETS = (TW, RE, LINE, COM, RAND)


def dataset_by_name(name: str) -> DatasetSpec:
    """Look up one of the paper's datasets by its short name."""
    for spec in ALL_DATASETS:
        if spec.name == name.upper():
            return spec
    raise KeyError(f"unknown dataset {name!r}; choose from "
                   f"{[s.name for s in ALL_DATASETS]}")
