"""Workload generation: dataset surrogates and the dynamic batch protocol.

* :mod:`repro.workloads.datasets` — generators matched to the paper's
  five datasets (Table 2) at a configurable scale,
* :mod:`repro.workloads.batches` — the insert/find/delete batching
  protocol of Section VI-A,
* :mod:`repro.workloads.skew` — hot-key streams for contention studies.
"""

from repro.workloads.batches import Batch, DynamicWorkload, Operation
from repro.workloads.datasets import (ALL_DATASETS, COM, DEFAULT_SCALE, LINE,
                                      RAND, RE, TW, DatasetSpec,
                                      dataset_by_name)
from repro.workloads.skew import hot_cold_keys, zipf_keys
from repro.workloads.ycsb import (CORE_WORKLOADS, WORKLOAD_A, WORKLOAD_B,
                                  WORKLOAD_C, WORKLOAD_D, WORKLOAD_F,
                                  YcsbMix, YcsbWorkload)

__all__ = [
    "DatasetSpec",
    "TW",
    "RE",
    "LINE",
    "COM",
    "RAND",
    "ALL_DATASETS",
    "DEFAULT_SCALE",
    "dataset_by_name",
    "DynamicWorkload",
    "Batch",
    "Operation",
    "zipf_keys",
    "hot_cold_keys",
    "YcsbWorkload",
    "YcsbMix",
    "CORE_WORKLOADS",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_F",
]
