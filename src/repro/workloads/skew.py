"""Skewed key generators for contention experiments.

The paper motivates the voter scheme with hot-key scenarios ("certain
twitter celebrities could receive thousands of retweets in a very short
period"): many threads updating the same small key set at once.  These
generators produce such streams for the contention microbenchmarks and
the voter-ablation study.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfigError


def zipf_keys(num_ops: int, num_distinct: int, exponent: float = 1.1,
              seed: int = 0) -> np.ndarray:
    """A stream of ``num_ops`` keys Zipf-distributed over ``num_distinct``.

    Rank 1 is the hottest key.  ``exponent`` around 1.0-1.2 matches web
    workload skew; larger values concentrate traffic further.
    """
    if num_distinct < 1:
        raise InvalidConfigError(f"num_distinct must be >= 1, got {num_distinct}")
    if exponent <= 0:
        raise InvalidConfigError(f"exponent must be > 0, got {exponent}")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_distinct + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    weights /= weights.sum()
    # Distinct keys are randomized so rank order is uncorrelated with
    # hash order.
    key_space = rng.permutation(
        rng.integers(1, 1 << 62, num_distinct * 2, dtype=np.int64)
    ).astype(np.uint64)
    keys = np.unique(key_space)[:num_distinct]
    rng.shuffle(keys)
    return rng.choice(keys, size=num_ops, replace=True, p=weights)


def hot_cold_keys(num_ops: int, num_hot: int, hot_fraction: float = 0.5,
                  seed: int = 0) -> np.ndarray:
    """A stream where ``hot_fraction`` of ops target ``num_hot`` keys.

    The remaining ops draw from a large cold key space — the sharpest
    version of the retweet-counter contention scenario.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise InvalidConfigError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}")
    rng = np.random.default_rng(seed)
    n_hot_ops = int(round(num_ops * hot_fraction))
    hot_keys = np.arange(1, num_hot + 1, dtype=np.uint64)
    hot = rng.choice(hot_keys, n_hot_ops, replace=True)
    cold = rng.integers(1 << 32, 1 << 62, num_ops - n_hot_ops,
                        dtype=np.int64).astype(np.uint64)
    stream = np.concatenate([hot, cold])
    rng.shuffle(stream)
    return stream
