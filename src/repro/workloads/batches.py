"""Dynamic workload protocol of the paper's evaluation (Section VI-A).

The paper builds dynamic workloads by batching hash-table operations:

    "We partition the datasets into batches of 1 million insertions.
     For each batch, we augment 1 million FIND operations and r million
     DELETE operations [...]  After we exhaust all the batches, we rerun
     these batches by swapping the INSERT and DELETE operations."

:class:`DynamicWorkload` reproduces that protocol: phase one streams the
dataset in as insert batches, each augmented with finds (sampled from
keys inserted so far) and ``r * batch`` deletes (likewise sampled);
phase two replays the batches with inserts and deletes swapped — each
batch's former inserts become deletes and ``r * batch`` previously
deleted keys are reinserted — so the table first grows, then shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import InvalidConfigError


@dataclass(frozen=True)
class Operation:
    """One homogeneous batched operation."""

    kind: str  # "insert" | "find" | "delete"
    keys: np.ndarray
    values: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("insert", "find", "delete"):
            raise InvalidConfigError(f"unknown operation kind {self.kind!r}")
        if self.kind == "insert" and self.values is None:
            raise InvalidConfigError("insert operations require values")

    def __len__(self) -> int:
        return len(self.keys)


@dataclass(frozen=True)
class Batch:
    """One unit of the dynamic protocol: a list of operations."""

    index: int
    phase: int  # 1 = growth, 2 = shrink (swapped replay)
    operations: tuple[Operation, ...]

    @property
    def total_ops(self) -> int:
        return sum(len(op) for op in self.operations)


class DynamicWorkload:
    """Batched dynamic workload over one dataset stream.

    Parameters
    ----------
    keys, values:
        The dataset stream (duplicates allowed, arrival order preserved).
    batch_size:
        Insertions per batch (the paper's default is 1e6; scaled runs
        use proportionally smaller batches).
    ratio_r:
        Deletions per insertion within a batch (Table 3's ``r``).
    find_factor:
        FIND operations per insertion (the paper augments 1:1).
    seed:
        Sampling seed for find/delete targets.
    """

    def __init__(self, keys: np.ndarray, values: np.ndarray,
                 batch_size: int, ratio_r: float = 0.2,
                 find_factor: float = 1.0, seed: int = 0) -> None:
        if batch_size < 1:
            raise InvalidConfigError(f"batch_size must be >= 1, got {batch_size}")
        if ratio_r < 0:
            raise InvalidConfigError(f"ratio_r must be >= 0, got {ratio_r}")
        if find_factor < 0:
            raise InvalidConfigError(
                f"find_factor must be >= 0, got {find_factor}")
        self.keys = np.asarray(keys, dtype=np.uint64)
        self.values = np.asarray(values, dtype=np.uint64)
        if self.keys.shape != self.values.shape:
            raise InvalidConfigError("keys and values must have equal length")
        self.batch_size = batch_size
        self.ratio_r = ratio_r
        self.find_factor = find_factor
        self.seed = seed

    @property
    def num_batches(self) -> int:
        """Batches per phase (two phases total)."""
        return (len(self.keys) + self.batch_size - 1) // self.batch_size

    def _chunks(self) -> list[slice]:
        return [slice(start, min(start + self.batch_size, len(self.keys)))
                for start in range(0, len(self.keys), self.batch_size)]

    def batches(self) -> Iterator[Batch]:
        """Yield phase-1 growth batches then phase-2 shrink batches."""
        rng = np.random.default_rng(self.seed)
        chunks = self._chunks()
        index = 0

        # Phase 1: inserts stream in; finds and deletes target *live*
        # keys (keys inserted and not yet deleted), so each delete batch
        # actually lowers the filled factor in proportion to r.
        live: np.ndarray = self.keys[:0]
        deleted_pool: list[np.ndarray] = []
        for chunk in chunks:
            ops = [Operation("insert", self.keys[chunk], self.values[chunk])]
            live = np.concatenate([live, self.keys[chunk]])
            n_find = int(round((chunk.stop - chunk.start) * self.find_factor))
            if n_find:
                ops.append(Operation(
                    "find", rng.choice(live, n_find, replace=True)))
            n_delete = min(int(round((chunk.stop - chunk.start) * self.ratio_r)),
                           len(live))
            if n_delete:
                picked = rng.choice(len(live), n_delete, replace=False)
                targets = live[picked]
                mask = np.ones(len(live), dtype=bool)
                mask[picked] = False
                live = live[mask]
                deleted_pool.append(targets)
                ops.append(Operation("delete", targets))
            yield Batch(index, 1, tuple(ops))
            index += 1

        # Phase 2: the swap — each batch's inserts replay as deletes and
        # r-proportional inserts restore previously deleted keys.
        deleted = (np.concatenate(deleted_pool) if deleted_pool
                   else self.keys[:0])
        for chunk in chunks:
            ops = [Operation("delete", self.keys[chunk])]
            n_find = int(round((chunk.stop - chunk.start) * self.find_factor))
            if n_find:
                source = live if len(live) else self.keys
                ops.append(Operation(
                    "find", rng.choice(source, n_find, replace=True)))
            n_insert = int(round((chunk.stop - chunk.start) * self.ratio_r))
            if n_insert:
                source = deleted if len(deleted) else self.keys
                ins = rng.choice(source, n_insert, replace=True)
                ops.append(Operation(
                    "insert", ins,
                    rng.integers(1, 1 << 62, n_insert).astype(np.uint64)))
            yield Batch(index, 2, tuple(ops))
            index += 1
