"""Save/load DyCuckoo tables to disk.

A saved table round-trips exactly: hash-function constants, storage
arrays, configuration, and counters are all preserved, so a reloaded
table answers every query identically and continues resizing from the
same state.  The format is a single ``.npz`` file (numpy's zipped
archive) with a version field for forward compatibility.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.core.config import DyCuckooConfig
from repro.core.hashing import UniversalHash
from repro.core.stats import TableStats
from repro.core.table import DyCuckooTable
from repro.errors import InvalidConfigError

#: Format version written into every archive.
FORMAT_VERSION = 1


def _hash_constants(hash_fn: UniversalHash) -> list[int]:
    return [int(hash_fn.a), int(hash_fn.b), int(hash_fn.premix)]


def _hash_from_constants(constants) -> UniversalHash:
    a, b, premix = (int(x) for x in constants)
    return UniversalHash(a, b, premix)


def save_table(table: DyCuckooTable, path) -> None:
    """Serialize ``table`` to ``path`` (a ``.npz`` archive).

    Any open incremental-resize epoch is drained first: the archive
    format stores settled storage (bucket count inferred from the key
    array's shape), so a dual-view subtable must finish migrating
    before its arrays are written out.
    """
    path = Path(path)
    table.finalize_resizes()
    payload = {
        "version": np.asarray([FORMAT_VERSION]),
        "config": np.frombuffer(
            json.dumps(dataclasses.asdict(table.config)).encode("utf-8"),
            dtype=np.uint8).copy(),
        "stats": np.asarray(
            [table.stats.snapshot()[f.name]
             for f in dataclasses.fields(TableStats)], dtype=np.int64),
        "pair_hash": np.asarray(_hash_constants(table.pair_hash.hash),
                                dtype=np.uint64),
        "victim_counter": np.asarray([table._victim_counter],
                                     dtype=np.int64),
    }
    stash_codes, stash_values = table.stash.export_entries()
    payload["stash_keys"] = stash_codes
    payload["stash_values"] = stash_values
    for idx, st in enumerate(table.subtables):
        payload[f"keys_{idx}"] = st.keys
        payload[f"values_{idx}"] = st.values
        payload[f"size_{idx}"] = np.asarray([st.size], dtype=np.int64)
        payload[f"hash_{idx}"] = np.asarray(
            _hash_constants(table.table_hashes[idx]), dtype=np.uint64)
    np.savez_compressed(path, **payload)


def load_table(path) -> DyCuckooTable:
    """Reconstruct a table previously written by :func:`save_table`."""
    path = Path(path)
    with np.load(path) as archive:
        version = int(archive["version"][0])
        if version != FORMAT_VERSION:
            raise InvalidConfigError(
                f"unsupported table archive version {version} "
                f"(this build reads version {FORMAT_VERSION})")
        config_dict = json.loads(bytes(archive["config"]).decode("utf-8"))
        config = DyCuckooConfig(**config_dict)
        table = DyCuckooTable(config)

        table.pair_hash.hash = _hash_from_constants(archive["pair_hash"])
        table._victim_counter = int(archive["victim_counter"][0])
        stats_fields = [f.name for f in dataclasses.fields(TableStats)]
        for name, value in zip(stats_fields, archive["stats"]):
            setattr(table.stats, name, int(value))

        for idx, st in enumerate(table.subtables):
            keys = archive[f"keys_{idx}"]
            st.n_buckets = keys.shape[0]
            st.keys = keys.copy()
            st.values = archive[f"values_{idx}"].copy()
            st.size = int(archive[f"size_{idx}"][0])
            table.table_hashes[idx] = _hash_from_constants(
                archive[f"hash_{idx}"])
        # Stash entries appeared with the fault-injection layer; archives
        # written before it simply have an empty stash.
        if "stash_keys" in archive:
            stash_codes = archive["stash_keys"]
            if len(stash_codes):
                table.stash.push(stash_codes, archive["stash_values"])
    return table
