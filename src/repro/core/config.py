"""Configuration objects for the DyCuckoo hash table.

:class:`DyCuckooConfig` collects every tunable knob the paper exposes:

* ``num_tables`` (``d``) — the number of cuckoo subtables (Section IV-A),
* ``alpha`` / ``beta`` — lower/upper filled-factor bounds triggering a
  resize (Section IV-B),
* ``bucket_capacity`` — slots per bucket (32 for 4-byte keys, Figure 2),
* routing policy between the two candidate subtables (Theorem 1).

``PAPER_PARAMETERS`` records the experiment grid of Table 3 so benchmarks
and tests can reference the exact published settings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidConfigError

#: Parameter grid of Table 3 in the paper (settings and defaults).
PAPER_PARAMETERS = {
    "filled_factor": {"settings": (0.70, 0.75, 0.80, 0.85, 0.90), "default": 0.85},
    "alpha": {"settings": (0.20, 0.25, 0.30, 0.35, 0.40), "default": 0.30},
    "beta": {"settings": (0.70, 0.75, 0.80, 0.85, 0.90), "default": 0.85},
    "ratio_r": {"settings": (0.1, 0.2, 0.3, 0.4, 0.5), "default": 0.2},
    "batch_size": {"settings": (200_000, 400_000, 600_000, 800_000, 1_000_000),
                   "default": 1_000_000},
}

#: Default number of subtables; the paper fixes d = 4 after Figure 7.
DEFAULT_NUM_TABLES = 4

#: Slots per bucket for 4-byte keys (one 128-byte cache line, Figure 2).
DEFAULT_BUCKET_CAPACITY = 32


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class DyCuckooConfig:
    """Immutable configuration for :class:`repro.core.table.DyCuckooTable`.

    Parameters
    ----------
    num_tables:
        Number of cuckoo subtables ``d`` (at least 2).  A larger ``d``
        lowers per-resize work and raises the achievable filled factor
        (bounded by ``d / (d + 1)``) at no extra lookup cost thanks to the
        two-layer scheme.
    bucket_capacity:
        Slots per bucket.  The paper uses 32 four-byte keys per 128-byte
        cache line; 16 models eight-byte keys.
    initial_buckets:
        Starting bucket count of *each* subtable (power of two).
    alpha, beta:
        Filled-factor bounds.  After any batched mutation the table
        upsizes while the global filled factor exceeds ``beta`` and
        downsizes while it is below ``alpha``.
    max_eviction_rounds:
        Bound on cuckoo eviction rounds for one batched insert before the
        table declares the insert failed and (if ``auto_resize``) upsizes.
    auto_resize:
        When ``False`` the table never resizes itself; insert failures
        raise :class:`repro.errors.CapacityError` and the filled factor is
        unbounded.  Used to emulate static tables.
    routing:
        ``"weighted"`` applies Theorem 1 (probability proportional to
        ``n_i / C(m_i, 2)``); ``"uniform"`` picks either subtable of the
        pair with probability one half (ablation baseline).
    min_buckets:
        Lower bound on any subtable's bucket count; downsizing stops here.
    max_total_slots:
        Hard ceiling on the structure's total slot count (0 disables).
        Upsizing past the ceiling raises
        :class:`repro.errors.CapacityError` instead of growing — the
        guard that turns a pathological workload (e.g. adversarial keys
        colliding under every hash function) into a clean error rather
        than unbounded allocation.
    anticipatory_upsize:
        Future-work extension (Section VI-D observes repeated upsizes when
        a single doubling is insufficient): when enabled, an insert-failure
        triggered upsize keeps doubling the smallest subtable until the
        projected filled factor falls below ``beta``.
    incremental_resize:
        When enabled (the default), automatic resizes (``enforce_bounds``
        and the insert-stall path) open a DHash-style *migration epoch*
        instead of rehashing the whole subtable inside the triggering
        batch: the subtable adopts its new geometry immediately, entries
        migrate bucket-pair by bucket-pair via migrate-on-access plus a
        bounded per-batch budget, and probes consult the entry's pre- or
        post-resize bucket through an epoch check.  Manual
        :meth:`~repro.core.table.DyCuckooTable.upsize` /
        ``downsize`` calls still complete synchronously.  Disabling
        restores the paper's stop-the-world one-shot rehash everywhere.
    migration_budget:
        Maximum bucket pairs migrated by the batch-end drain of an open
        epoch.  0 (the default) auto-sizes the budget to one eighth of
        the epoch's pairs (at least 32), so a resize completes within
        roughly eight batches plus whatever migrate-on-access moved.
    stash_capacity:
        Size of the bounded overflow stash (the CUDA reference's
        ``error_table_t``).  The stash absorbs inserts whose eviction
        chain is exhausted while an upsize is pending but aborted (only
        reachable under fault injection); overflowing it raises
        :class:`repro.errors.StashOverflowError`.  0 disables the stash
        entirely, turning the degraded path into an immediate overflow.
    seed:
        Seed for hash-function constants and routing randomness.
    """

    num_tables: int = DEFAULT_NUM_TABLES
    bucket_capacity: int = DEFAULT_BUCKET_CAPACITY
    initial_buckets: int = 64
    alpha: float = PAPER_PARAMETERS["alpha"]["default"]
    beta: float = PAPER_PARAMETERS["beta"]["default"]
    max_eviction_rounds: int = 64
    auto_resize: bool = True
    routing: str = "weighted"
    min_buckets: int = 8
    max_total_slots: int = 0
    anticipatory_upsize: bool = False
    incremental_resize: bool = True
    migration_budget: int = 0
    stash_capacity: int = 256
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.num_tables < 2:
            raise InvalidConfigError(
                f"num_tables must be >= 2, got {self.num_tables}"
            )
        if self.bucket_capacity < 1:
            raise InvalidConfigError(
                f"bucket_capacity must be >= 1, got {self.bucket_capacity}"
            )
        if not _is_power_of_two(self.initial_buckets):
            raise InvalidConfigError(
                f"initial_buckets must be a power of two, got {self.initial_buckets}"
            )
        if not _is_power_of_two(self.min_buckets):
            raise InvalidConfigError(
                f"min_buckets must be a power of two, got {self.min_buckets}"
            )
        if self.initial_buckets < self.min_buckets:
            raise InvalidConfigError(
                "initial_buckets must be >= min_buckets "
                f"({self.initial_buckets} < {self.min_buckets})"
            )
        if not 0.0 <= self.alpha < self.beta <= 1.0:
            raise InvalidConfigError(
                f"require 0 <= alpha < beta <= 1, got alpha={self.alpha} "
                f"beta={self.beta}"
            )
        max_alpha = self.num_tables / (self.num_tables + 1.0)
        if self.alpha >= max_alpha:
            # Section IV-B: one upsize lowers theta to at least
            # beta * d / (d + 1), so alpha must stay below d / (d + 1).
            raise InvalidConfigError(
                f"alpha must be < d/(d+1) = {max_alpha:.3f} for d="
                f"{self.num_tables}, got {self.alpha}"
            )
        if self.max_eviction_rounds < 1:
            raise InvalidConfigError(
                f"max_eviction_rounds must be >= 1, got {self.max_eviction_rounds}"
            )
        if self.routing not in ("weighted", "uniform"):
            raise InvalidConfigError(
                f"routing must be 'weighted' or 'uniform', got {self.routing!r}"
            )
        if self.max_total_slots < 0:
            raise InvalidConfigError(
                f"max_total_slots must be >= 0, got {self.max_total_slots}"
            )
        if self.migration_budget < 0:
            raise InvalidConfigError(
                f"migration_budget must be >= 0, got {self.migration_budget}"
            )
        if self.stash_capacity < 0:
            raise InvalidConfigError(
                f"stash_capacity must be >= 0, got {self.stash_capacity}"
            )
        initial_total = (self.num_tables * self.initial_buckets
                         * self.bucket_capacity)
        if self.max_total_slots and self.max_total_slots < initial_total:
            raise InvalidConfigError(
                f"max_total_slots={self.max_total_slots} is below the "
                f"initial allocation of {initial_total} slots"
            )

    @property
    def num_pairs(self) -> int:
        """Number of first-layer partitions, ``C(d, 2)``."""
        d = self.num_tables
        return d * (d - 1) // 2

    def sized_for(self, expected_entries: int, target_fill: float | None = None
                  ) -> "DyCuckooConfig":
        """Return a copy whose initial capacity fits ``expected_entries``.

        The initial bucket count per subtable is chosen so that inserting
        ``expected_entries`` keys lands near ``target_fill`` (default: the
        midpoint of ``[alpha, beta]``) without resizing.  Used by the
        static-scenario experiments, which pre-size every table.
        """
        if expected_entries < 0:
            raise InvalidConfigError("expected_entries must be non-negative")
        if target_fill is None:
            target_fill = (self.alpha + self.beta) / 2.0
        if not 0.0 < target_fill <= 1.0:
            raise InvalidConfigError(
                f"target_fill must be in (0, 1], got {target_fill}"
            )
        slots_needed = max(1, int(expected_entries / target_fill))
        per_table = max(self.min_buckets,
                        slots_needed // (self.num_tables * self.bucket_capacity))
        buckets = self.min_buckets
        while buckets < per_table:
            buckets *= 2
        return replace_config(self, initial_buckets=buckets)


def replace_config(config: DyCuckooConfig, **changes) -> DyCuckooConfig:
    """Return a copy of ``config`` with ``changes`` applied (re-validated)."""
    import dataclasses

    return dataclasses.replace(config, **changes)


# Re-export for dataclass field defaults documentation tools.
__all__ = [
    "DyCuckooConfig",
    "PAPER_PARAMETERS",
    "DEFAULT_NUM_TABLES",
    "DEFAULT_BUCKET_CAPACITY",
    "replace_config",
]
