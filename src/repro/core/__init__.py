"""Core DyCuckoo data structure: the paper's primary contribution.

Public surface:

* :class:`repro.core.table.DyCuckooTable` — the dynamic two-layer cuckoo
  hash table,
* :class:`repro.core.config.DyCuckooConfig` — its configuration,
* :data:`repro.core.config.PAPER_PARAMETERS` — the Table-3 grid,
* :class:`repro.core.stats.TableStats` / ``MemoryFootprint`` — counters.
"""

from repro.core.analysis import (check_invariants, conflict_optimality_gap,
                                 expected_conflicts, max_feasible_alpha,
                                 optimal_distribution, post_upsize_fill,
                                 resize_work_bound)
from repro.core.batch_ops import (OP_DELETE, OP_FIND, OP_INSERT,
                                  EncodedBatch, MixedBatchResult,
                                  execute_mixed)
from repro.core.config import (DEFAULT_BUCKET_CAPACITY, DEFAULT_NUM_TABLES,
                               PAPER_PARAMETERS, DyCuckooConfig,
                               replace_config)
from repro.core.memory_budget import EvictionReport, MemoryBudget
from repro.core.persistence import load_table, save_table
from repro.core.stash import Stash
from repro.core.stats import MemoryFootprint, TableStats
from repro.core.table import MAX_KEY, DyCuckooTable

__all__ = [
    "DyCuckooTable",
    "DyCuckooConfig",
    "PAPER_PARAMETERS",
    "DEFAULT_NUM_TABLES",
    "DEFAULT_BUCKET_CAPACITY",
    "MemoryFootprint",
    "TableStats",
    "MAX_KEY",
    "replace_config",
    "save_table",
    "load_table",
    "execute_mixed",
    "EncodedBatch",
    "MixedBatchResult",
    "OP_INSERT",
    "OP_FIND",
    "OP_DELETE",
    "Stash",
    "MemoryBudget",
    "EvictionReport",
    "check_invariants",
    "expected_conflicts",
    "optimal_distribution",
    "conflict_optimality_gap",
    "post_upsize_fill",
    "max_feasible_alpha",
    "resize_work_bound",
]
