"""Mixed-operation batches (an extension beyond the paper).

The paper assumes every batch contains one operation type and notes
that a mixed batch's semantics are ambiguous under parallel execution.
We resolve the ambiguity the way bulk-synchronous systems do: a mixed
batch executes as a *deterministic sequence of homogeneous sub-batches*
in arrival order — maximal runs of the same operation kind are grouped
and executed one group at a time.  Within a run the usual batched
semantics apply (last-writer-wins for duplicate inserts, first
occurrence wins for duplicate deletes); *across* runs, order is
program order, so ``insert k; delete k; find k`` misses.

This gives mixed workloads a well-defined, testable meaning while
preserving the batched execution model the cost accounting assumes.

Key encoding and hashing are position-pure — they depend only on the
key, never on table geometry — so :class:`EncodedBatch` computes them
once for the whole mixed batch and every homogeneous run executes on
views of the shared arrays.  ``engine="warp" | "cohort"`` routes the
runs through the lane-faithful kernels instead of the vectorized host
path (see :mod:`repro.kernels.engine`).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigError
from repro.telemetry import NULL_TELEMETRY

#: Human-readable names for op codes (trace event labelling).
_KIND_NAMES = {0: "insert", 1: "find", 2: "delete"}

#: Operation codes for the vectorized mixed interface.
OP_INSERT = 0
OP_FIND = 1
OP_DELETE = 2

_VALID_OPS = (OP_INSERT, OP_FIND, OP_DELETE)


class EncodedBatch:
    """Hashes for one key batch, computed once and sliced per run.

    ``codes`` (the canonical uint64 encoding), the pair-hash targets
    ``first``/``second``, and each subtable's 31-bit raw hash are pure
    functions of the keys — in particular the raw hashes survive
    resizes, because a resize only changes the power-of-two mask
    applied by :meth:`~repro.core.hashing.UniversalHash.bucket_from_raw`.
    Everything is evaluated lazily so a FIND-only batch never pays for
    hashes it does not use.
    """

    def __init__(self, table, keys) -> None:
        from repro.core.table import encode_keys

        self.table = table
        self.codes = encode_keys(np.asarray(keys, dtype=np.uint64))
        self._first: np.ndarray | None = None
        self._second: np.ndarray | None = None
        self._raw: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def first(self) -> np.ndarray:
        if self._first is None:
            self._first, self._second = self.table.pair_hash.tables_for(
                self.codes)
        return self._first

    @property
    def second(self) -> np.ndarray:
        if self._second is None:
            self.first  # noqa: B018 - populates both caches
        return self._second

    def raw(self, t: int) -> np.ndarray:
        """Raw (geometry-independent) hash of every code under subtable
        ``t``'s hash function; cached after the first request."""
        cached = self._raw.get(t)
        if cached is None:
            cached = self.table.table_hashes[t].raw(self.codes)
            self._raw[t] = cached
        return cached

    def raw_of(self, segment: slice):
        """``raw_of`` callback for one run: subtable -> raw-hash view."""
        return lambda t: self.raw(t)[segment]


@dataclass(frozen=True)
class MixedBatchResult:
    """Outcome of one mixed batch.

    ``values``/``found`` are aligned with the input positions of FIND
    operations (meaningless elsewhere); ``removed`` likewise for DELETE
    positions.
    """

    values: np.ndarray
    found: np.ndarray
    removed: np.ndarray
    #: Number of homogeneous runs the batch was split into.
    runs: int
    #: Aggregate kernel cost counters, populated only when the batch
    #: executed through a kernel engine (``engine="warp" | "cohort"``).
    kernel: "object | None" = None


def _runs(op_codes: np.ndarray):
    """Yield ``(kind, start, stop)`` for maximal same-kind runs."""
    boundaries = np.flatnonzero(np.diff(op_codes)) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [len(op_codes)]])
    for start, stop in zip(starts, stops):
        yield int(op_codes[start]), int(start), int(stop)


def execute_mixed(table, op_codes, keys, values=None,
                  engine: str | None = None) -> MixedBatchResult:
    """Execute a mixed batch against ``table`` in program order.

    Parameters
    ----------
    table:
        Any table with the :class:`repro.baselines.base.GpuHashTable`
        batched interface (including :class:`DyCuckooTable`).
    op_codes:
        Array of :data:`OP_INSERT` / :data:`OP_FIND` / :data:`OP_DELETE`.
    keys:
        One key per operation.
    values:
        One value per operation; required when any op is an insert
        (ignored at non-insert positions).
    engine:
        ``None`` (default) executes through the table's vectorized host
        path.  ``"warp"`` or ``"cohort"`` executes every run through
        the lane-faithful kernels of :mod:`repro.kernels` instead — the
        table must then be pre-sized (kernels never resize or consult
        the stash) and the result carries the aggregate
        :class:`~repro.kernels.insert.KernelRunResult` in ``.kernel``.
    """
    op_codes = np.asarray(op_codes, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.uint64)
    if op_codes.shape != keys.shape:
        raise InvalidConfigError("op_codes and keys must have equal length")
    if len(op_codes) and not bool(np.all(np.isin(op_codes, _VALID_OPS))):
        raise InvalidConfigError(
            f"op codes must be one of {_VALID_OPS}")
    if engine is not None:
        from repro.kernels.engine import resolve_engine

        resolve_engine(engine)
    has_inserts = bool(np.any(op_codes == OP_INSERT))
    if has_inserts:
        if values is None:
            raise InvalidConfigError("mixed batch with inserts needs values")
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != keys.shape:
            raise InvalidConfigError("values must align with keys")

    n = len(op_codes)
    out_values = np.zeros(n, dtype=np.uint64)
    out_found = np.zeros(n, dtype=bool)
    out_removed = np.zeros(n, dtype=bool)
    runs = 0
    if n == 0:
        return MixedBatchResult(out_values, out_found, out_removed, runs)

    telemetry = getattr(table, "telemetry", NULL_TELEMETRY)
    # Encoded fast path: hash the whole batch once when the table
    # exposes the encoded entry points (kernel engines require them).
    encoded = (EncodedBatch(table, keys)
               if hasattr(table, "_find_encoded") else None)
    if engine is not None and encoded is None:
        raise InvalidConfigError(
            "kernel engines need a DyCuckooTable-compatible table")
    kernel_total = None
    batch_ctx = (telemetry.tracer.span("mixed.batch", "op", ops=n)
                 if telemetry.enabled else nullcontext())
    with batch_ctx:
        for kind, start, stop in _runs(op_codes):
            runs += 1
            segment = slice(start, stop)
            if telemetry.enabled:
                telemetry.tracer.instant("mixed.run", "op",
                                         kind=_KIND_NAMES[kind],
                                         ops=stop - start)
            if engine is not None:
                result = _execute_run_kernel(table, encoded, kind, segment,
                                             values, out_values, out_found,
                                             out_removed, engine)
                kernel_total = (result if kernel_total is None
                                else kernel_total.merge(result))
            elif encoded is not None:
                _execute_run_encoded(table, telemetry, encoded, kind,
                                     segment, values, out_values,
                                     out_found, out_removed)
            elif kind == OP_INSERT:
                table.insert(keys[segment], values[segment])
            elif kind == OP_FIND:
                seg_values, seg_found = table.find(keys[segment])
                out_values[segment] = seg_values
                out_found[segment] = seg_found
            else:
                out_removed[segment] = table.delete(keys[segment])
    return MixedBatchResult(out_values, out_found, out_removed, runs,
                            kernel_total)


def _execute_run_encoded(table, telemetry, encoded: EncodedBatch, kind: int,
                         segment: slice, values, out_values, out_found,
                         out_removed) -> None:
    """One homogeneous run through the vectorized encoded entry points.

    Emits the same per-op spans the public ``find``/``insert``/``delete``
    methods emit, so traces are identical to the unhinted path.
    """
    codes = encoded.codes[segment]
    first = encoded.first[segment]
    second = encoded.second[segment]
    raw_of = encoded.raw_of(segment)
    name = _KIND_NAMES[kind]
    ctx = (telemetry.tracer.span(name, "op", n=len(codes))
           if telemetry.enabled else nullcontext())
    with ctx:
        if kind == OP_INSERT:
            table._insert_encoded(codes, values[segment], first, second,
                                  raw_of=raw_of)
        elif kind == OP_FIND:
            seg_values, seg_found = table._find_encoded(codes, first,
                                                        second,
                                                        raw_of=raw_of)
            out_values[segment] = seg_values
            out_found[segment] = seg_found
        else:
            out_removed[segment] = table._delete_encoded(codes, first,
                                                         second,
                                                         raw_of=raw_of)


def _execute_run_kernel(table, encoded: EncodedBatch, kind: int,
                        segment: slice, values, out_values, out_found,
                        out_removed, engine: str):
    """One homogeneous run through the lane-faithful kernels."""
    from repro.kernels.delete import run_delete_kernel
    from repro.kernels.find import run_find_kernel
    from repro.kernels.insert import run_voter_insert_kernel

    codes = encoded.codes[segment]
    first = encoded.first[segment]
    second = encoded.second[segment]
    raw_of = encoded.raw_of(segment)
    if kind == OP_INSERT:
        return run_voter_insert_kernel(table, None, values[segment],
                                       engine=engine, codes=codes,
                                       first=first, second=second)
    if kind == OP_FIND:
        seg_values, seg_found, result = run_find_kernel(
            table, None, engine=engine, codes=codes, first=first,
            second=second, raw_of=raw_of)
        out_values[segment] = seg_values
        out_found[segment] = seg_found
        return result
    removed, result = run_delete_kernel(table, None, engine=engine,
                                        codes=codes, first=first,
                                        second=second, raw_of=raw_of)
    out_removed[segment] = removed
    return result
