"""Mixed-operation batches (an extension beyond the paper).

The paper assumes every batch contains one operation type and notes
that a mixed batch's semantics are ambiguous under parallel execution.
We resolve the ambiguity the way bulk-synchronous systems do: a mixed
batch executes as a *deterministic sequence of homogeneous sub-batches*
in arrival order — maximal runs of the same operation kind are grouped
and executed one group at a time.  Within a run the usual batched
semantics apply (last-writer-wins for duplicate inserts, first
occurrence wins for duplicate deletes); *across* runs, order is
program order, so ``insert k; delete k; find k`` misses.

This gives mixed workloads a well-defined, testable meaning while
preserving the batched execution model the cost accounting assumes.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigError
from repro.telemetry import NULL_TELEMETRY

#: Human-readable names for op codes (trace event labelling).
_KIND_NAMES = {0: "insert", 1: "find", 2: "delete"}

#: Operation codes for the vectorized mixed interface.
OP_INSERT = 0
OP_FIND = 1
OP_DELETE = 2

_VALID_OPS = (OP_INSERT, OP_FIND, OP_DELETE)


@dataclass(frozen=True)
class MixedBatchResult:
    """Outcome of one mixed batch.

    ``values``/``found`` are aligned with the input positions of FIND
    operations (meaningless elsewhere); ``removed`` likewise for DELETE
    positions.
    """

    values: np.ndarray
    found: np.ndarray
    removed: np.ndarray
    #: Number of homogeneous runs the batch was split into.
    runs: int


def _runs(op_codes: np.ndarray):
    """Yield ``(kind, start, stop)`` for maximal same-kind runs."""
    boundaries = np.flatnonzero(np.diff(op_codes)) + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [len(op_codes)]])
    for start, stop in zip(starts, stops):
        yield int(op_codes[start]), int(start), int(stop)


def execute_mixed(table, op_codes, keys, values=None) -> MixedBatchResult:
    """Execute a mixed batch against ``table`` in program order.

    Parameters
    ----------
    table:
        Any table with the :class:`repro.baselines.base.GpuHashTable`
        batched interface (including :class:`DyCuckooTable`).
    op_codes:
        Array of :data:`OP_INSERT` / :data:`OP_FIND` / :data:`OP_DELETE`.
    keys:
        One key per operation.
    values:
        One value per operation; required when any op is an insert
        (ignored at non-insert positions).
    """
    op_codes = np.asarray(op_codes, dtype=np.int64)
    keys = np.asarray(keys, dtype=np.uint64)
    if op_codes.shape != keys.shape:
        raise InvalidConfigError("op_codes and keys must have equal length")
    if len(op_codes) and not bool(np.all(np.isin(op_codes, _VALID_OPS))):
        raise InvalidConfigError(
            f"op codes must be one of {_VALID_OPS}")
    has_inserts = bool(np.any(op_codes == OP_INSERT))
    if has_inserts:
        if values is None:
            raise InvalidConfigError("mixed batch with inserts needs values")
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != keys.shape:
            raise InvalidConfigError("values must align with keys")

    n = len(op_codes)
    out_values = np.zeros(n, dtype=np.uint64)
    out_found = np.zeros(n, dtype=bool)
    out_removed = np.zeros(n, dtype=bool)
    runs = 0
    if n == 0:
        return MixedBatchResult(out_values, out_found, out_removed, runs)

    telemetry = getattr(table, "telemetry", NULL_TELEMETRY)
    batch_ctx = (telemetry.tracer.span("mixed.batch", "op", ops=n)
                 if telemetry.enabled else nullcontext())
    with batch_ctx:
        for kind, start, stop in _runs(op_codes):
            runs += 1
            segment = slice(start, stop)
            if telemetry.enabled:
                telemetry.tracer.instant("mixed.run", "op",
                                         kind=_KIND_NAMES[kind],
                                         ops=stop - start)
            if kind == OP_INSERT:
                table.insert(keys[segment], values[segment])
            elif kind == OP_FIND:
                seg_values, seg_found = table.find(keys[segment])
                out_values[segment] = seg_values
                out_found[segment] = seg_found
            else:
                out_removed[segment] = table.delete(keys[segment])
    return MixedBatchResult(out_values, out_found, out_removed, runs)
