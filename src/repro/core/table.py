"""DyCuckoo: the two-layer dynamic cuckoo hash table (Sections IV and V).

The table keeps ``d`` bucketized subtables.  A key is first hashed to one
of the ``C(d, 2)`` subtable *pairs* (layer one) and then lives in exactly
one bucket of one subtable of that pair (layer two).  Consequences:

* ``find`` and ``delete`` touch at most **two** buckets, independent of
  ``d`` (Section V-A);
* ``insert`` may evict occupants along a cuckoo chain that can wander
  through *any* subtable, preserving the flexibility — and the amortized
  O(1) bound, Theorem 2 — of a ``d``-table cuckoo hash;
* resizing doubles/halves a *single* subtable (Section IV-B), so at most
  ``m / d`` entries move per resize and the other subtables stay online.

Execution is *round-synchronous*, mirroring the device-wide bulk steps of
the GPU kernels: each insert round, every pending operation attempts its
current bucket; winners place or evict; losers retry next round.  All
heavy lifting is vectorized with numpy, and every round increments the
event counters consumed by the GPU cost model.

Batched semantics follow the paper (Section V-B): each public call takes
a whole batch of one operation type.  ``insert`` is an upsert; duplicate
keys within one batch resolve to the *last* occurrence.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DyCuckooConfig
from repro.core.distribution import make_router
from repro.core.grouping import first_occurrence_mask, last_occurrence_mask
from repro.core.hashing import PairHash, make_table_hashes
from repro.core.resize import ResizeController
from repro.core.stash import Stash
from repro.core.stats import MemoryFootprint, TableStats
from repro.core.subtable import Subtable
from repro.errors import (CapacityError, InvalidKeyError, ResizeError,
                          StashOverflowError)
from repro.faults import NO_FAULTS, FaultPlan
from repro.gpusim.kernel import estimate_lock_conflicts
from repro.sanitizer import NULL_SANITIZER, Sanitizer
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry.profiler import NULL_PROFILER, Profiler
from repro.telemetry.recorder import NULL_RECORDER, FlightRecorder

#: Bucket upper bounds for the cuckoo-chain-depth histogram (evictions a
#: key's placement chain went through before settling).
CHAIN_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Largest user key; ``2**64 - 1`` is unrepresentable because the
#: internal code space reserves 0 for empty slots.
MAX_KEY = (1 << 64) - 2


def encode_keys(keys) -> np.ndarray:
    """Map user keys to internal nonzero codes (``key + 1``)."""
    codes = np.asarray(keys, dtype=np.uint64)
    if codes.ndim != 1:
        raise InvalidKeyError(f"keys must be one-dimensional, got shape {codes.shape}")
    if len(codes) and bool(np.any(codes == np.uint64(MAX_KEY + 1))):
        raise InvalidKeyError(f"keys must be <= {MAX_KEY}")
    return codes + np.uint64(1)


def decode_keys(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_keys`."""
    return np.asarray(codes, dtype=np.uint64) - np.uint64(1)


class DyCuckooTable:
    """Dynamic two-layer cuckoo hash table mapping uint64 -> uint64.

    Parameters
    ----------
    config:
        A :class:`repro.core.config.DyCuckooConfig`; defaults match the
        paper's defaults (d=4, 32-slot buckets, alpha=30%, beta=85%).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import DyCuckooTable
    >>> table = DyCuckooTable()
    >>> table.insert(np.arange(100, dtype=np.uint64),
    ...              np.arange(100, dtype=np.uint64) * 2)
    >>> values, found = table.find(np.array([3, 999], dtype=np.uint64))
    >>> bool(found[0]), bool(found[1]), int(values[0])
    (True, False, 6)
    """

    def __init__(self, config: DyCuckooConfig | None = None) -> None:
        self.config = config or DyCuckooConfig()
        rng = np.random.default_rng(self.config.seed)
        self.pair_hash = PairHash(self.config.num_tables, rng)
        self.table_hashes = make_table_hashes(self.config.num_tables, rng)
        self.subtables = [
            Subtable(self.config.initial_buckets, self.config.bucket_capacity)
            for _ in range(self.config.num_tables)
        ]
        self.stats = TableStats()
        self._router = make_router(self.config.routing, self.config.seed ^ 0xA5A5)
        self._resizer = ResizeController(self)
        self._victim_counter = 0
        #: Observability hooks; the null default makes every gate a
        #: single attribute check (see :mod:`repro.telemetry`).
        self.telemetry = NULL_TELEMETRY
        #: Fault-injection hooks; same gating discipline as telemetry.
        self.faults = NO_FAULTS
        #: SIMT sanitizer hooks; same gating discipline as telemetry.
        self.sanitizer = NULL_SANITIZER
        #: Deep kernel profiler; same gating discipline as telemetry.
        self.profiler = NULL_PROFILER
        #: Flight recorder (post-mortem ring); same gating discipline.
        self.recorder = NULL_RECORDER
        #: Bounded overflow stash (the CUDA reference's error table);
        #: empty in every fault-free run.
        self.stash = Stash(self.config.stash_capacity)
        self._draining = False
        #: Resize epoch (upsizes + downsizes) of the last drain attempt;
        #: bounds retries to one per completed resize.
        self._drain_epoch = -1

    def set_fault_plan(self, plan: FaultPlan | None) -> FaultPlan:
        """Attach a fault-injection plan (``None`` detaches); returns it.

        With the default :data:`repro.faults.NO_FAULTS` attached the
        table's behaviour is bit-identical to a build without the fault
        layer: every hook is a single attribute check and the stash
        stays empty.
        """
        self.faults = plan if plan is not None else NO_FAULTS
        if self.recorder.enabled and self.faults.enabled:
            self.faults.recorder = self.recorder
        return self.faults

    def set_telemetry(self, telemetry: Telemetry | None) -> Telemetry:
        """Attach a telemetry handle (``None`` detaches); returns it.

        All spans, instants, and metric updates flow into the attached
        handle's tracer and registry from then on.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        return self.telemetry

    def set_sanitizer(self, sanitizer: Sanitizer | None) -> Sanitizer:
        """Attach a SIMT sanitizer (``None`` detaches); returns it.

        While attached, the kernel engines log lock operations and
        bucket accesses into it and the resize controller brackets its
        subtable locks (see :mod:`repro.sanitizer`).  The null default
        keeps every hook a single attribute check.
        """
        self.sanitizer = sanitizer if sanitizer is not None else NULL_SANITIZER
        if self.recorder.enabled and self.sanitizer.enabled:
            self.sanitizer.recorder = self.recorder
        # The stash reports occupancy into memcheck's stash-overflow
        # check; detaching restores the null default.
        self.stash.sanitizer = self.sanitizer
        return self.sanitizer

    def set_profiler(self, profiler: Profiler | None) -> Profiler:
        """Attach a deep kernel profiler (``None`` detaches); returns it.

        While attached, the kernel engines feed it per-round occupancy
        snapshots, lock grant/conflict events, probe-length and
        eviction-chain-depth observations, and the resize controller
        samples fill factors into it (see
        :mod:`repro.telemetry.profiler`).  The null default keeps every
        hook a single attribute check.
        """
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        return self.profiler

    def set_recorder(self, recorder: FlightRecorder | None) -> FlightRecorder:
        """Attach a flight recorder (``None`` detaches); returns it.

        The recorder keeps a bounded ring of recent events and dumps a
        post-mortem bundle (ring + profiler snapshot + table state) when
        a fault fires, a sanitizer violation is raised, or
        :func:`repro.core.analysis.check_invariants` fails.  Attaching
        also wires the table's current fault plan and sanitizer (if
        enabled) to trip it.
        """
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        if self.recorder.enabled:
            self.recorder.attach(self)
            # Never mutate the shared NO_FAULTS / NULL_SANITIZER
            # singletons — that would leak the recorder globally.
            if self.faults.enabled:
                self.faults.recorder = self.recorder
            if self.sanitizer.enabled:
                self.sanitizer.recorder = self.recorder
        else:
            if self.faults.enabled:
                self.faults.recorder = NULL_RECORDER
            if self.sanitizer.enabled:
                self.sanitizer.recorder = NULL_RECORDER
        return self.recorder

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(st.size for st in self.subtables) + len(self.stash)

    @property
    def num_tables(self) -> int:
        """Number of subtables ``d``."""
        return self.config.num_tables

    @property
    def total_slots(self) -> int:
        """Allocated key slots across all subtables."""
        return sum(st.total_slots for st in self.subtables)

    @property
    def load_factor(self) -> float:
        """Global filled factor ``theta`` (live entries / allocated slots)."""
        slots = self.total_slots
        return len(self) / slots if slots else 0.0

    @property
    def subtable_load_factors(self) -> list[float]:
        """Per-subtable filled factors ``theta_i``."""
        return [st.filled_factor for st in self.subtables]

    def subtable_sizes(self) -> np.ndarray:
        """Slot counts ``n_i`` per subtable."""
        return np.asarray([st.total_slots for st in self.subtables],
                          dtype=np.int64)

    def subtable_loads(self) -> np.ndarray:
        """Live entry counts ``m_i`` per subtable."""
        return np.asarray([st.size for st in self.subtables], dtype=np.int64)

    def memory_footprint(self) -> MemoryFootprint:
        """Current device-memory accounting (one lock word per bucket)."""
        lock_bytes = 4 * sum(st.n_buckets for st in self.subtables)
        return MemoryFootprint(
            total_slots=self.total_slots,
            live_entries=len(self),
            slot_bytes=sum(st.slot_bytes for st in self.subtables),
            overhead_bytes=lock_bytes,
        )

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Return all live ``(keys, values)`` (unspecified order).

        Includes entries currently parked in the overflow stash.
        """
        exports = [st.export_entries()[:2] for st in self.subtables]
        if len(self.stash):
            exports.append(self.stash.export_entries())
        all_codes = (np.concatenate([e[0] for e in exports]) if exports
                     else np.zeros(0, dtype=np.uint64))
        all_values = (np.concatenate([e[1] for e in exports]) if exports
                      else np.zeros(0, dtype=np.uint64))
        return decode_keys(all_codes), all_values

    def keys(self) -> np.ndarray:
        """All live keys (unspecified order)."""
        return self.items()[0]

    def values(self) -> np.ndarray:
        """All live values, aligned with :meth:`keys`."""
        return self.items()[1]

    def to_dict(self) -> dict[int, int]:
        """Materialize the table as a plain Python dict."""
        out_keys, out_values = self.items()
        return {int(k): int(v) for k, v in zip(out_keys, out_values)}

    def __contains__(self, key: int) -> bool:
        return bool(self.contains(np.asarray([key], dtype=np.uint64))[0])

    def clear(self) -> None:
        """Remove every entry and shrink storage back to the initial size."""
        self.subtables = [
            Subtable(self.config.initial_buckets, self.config.bucket_capacity)
            for _ in range(self.config.num_tables)
        ]
        self.stash = Stash(self.config.stash_capacity)
        self._drain_epoch = -1

    def copy(self) -> "DyCuckooTable":
        """Deep copy: same hash functions, independent storage."""
        import copy as _copy

        clone = DyCuckooTable(self.config)
        clone.pair_hash = _copy.deepcopy(self.pair_hash)
        clone.table_hashes = _copy.deepcopy(self.table_hashes)
        for src, dst in zip(self.subtables, clone.subtables):
            dst.n_buckets = src.n_buckets
            dst.keys = src.keys.copy()
            dst.values = src.values.copy()
            dst.size = src.size
            dst.migration = (src.migration.copy()
                             if src.migration is not None else None)
        clone.stash = self.stash.copy()
        clone._victim_counter = self._victim_counter
        return clone

    @classmethod
    def from_items(cls, keys, values,
                   config: DyCuckooConfig | None = None) -> "DyCuckooTable":
        """Build a table pre-sized for ``keys`` and bulk-insert them."""
        keys = np.asarray(keys, dtype=np.uint64)
        base = config or DyCuckooConfig()
        table = cls(base.sized_for(len(np.unique(keys))))
        table.insert(keys, values)
        return table

    def merge_from(self, other: "DyCuckooTable") -> None:
        """Upsert every entry of ``other`` into this table.

        On key collisions ``other``'s value wins (merge = bulk upsert).
        """
        other_keys, other_values = other.items()
        if len(other_keys):
            self.insert(other_keys, other_values)

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on bugs.

        Verified invariants: per-subtable live counts, no duplicate key
        across subtables (or between a subtable and the stash), every
        entry stored in a subtable of its pair and in its hashed bucket,
        the 2x size discipline between subtables, and the stash capacity
        bound.  Delegates to
        :func:`repro.core.analysis.check_invariants`.
        """
        from repro.core.analysis import check_invariants

        check_invariants(self, check_fill=False)

    # ------------------------------------------------------------------
    # Public batched operations
    # ------------------------------------------------------------------

    def find(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """Look up a batch of keys.

        Returns ``(values, found)``; ``values[i]`` is meaningful only
        where ``found[i]``.  Each lookup reads at most two buckets.
        """
        if self.telemetry.enabled:
            with self.telemetry.tracer.span("find", "op",
                                            n=int(np.size(keys))):
                return self._find_batch(keys)
        return self._find_batch(keys)

    def _find_batch(self, keys) -> tuple[np.ndarray, np.ndarray]:
        return self._find_encoded(encode_keys(keys))

    def _find_encoded(self, codes: np.ndarray, first=None, second=None,
                      raw_of=None) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`find` body over pre-encoded codes.

        ``first``/``second``/``raw_of`` optionally carry precomputed
        pair-hash targets and per-subtable raw hashes (aligned to
        ``codes``; see :class:`repro.core.batch_ops.EncodedBatch`).
        Hash hoisting only — stats and telemetry are byte-identical to
        the unhinted path.
        """
        n = len(codes)
        self.stats.finds += n
        values = np.zeros(n, dtype=np.uint64)
        found = np.zeros(n, dtype=bool)
        if n == 0:
            return values, found
        if first is None or second is None:
            first, second = self.pair_hash.tables_for(codes)
        self._probe(codes, first, np.arange(n), values, found,
                    raw_of=raw_of)
        missing = np.flatnonzero(~found)
        if len(missing):
            self.stats.chain_hops += len(missing)
            self._probe(codes[missing], second[missing], missing, values,
                        found, raw_of=raw_of)
        if len(self.stash):
            still_missing = np.flatnonzero(~found)
            if len(still_missing):
                stash_values, stash_found = self.stash.lookup(
                    codes[still_missing])
                dest = still_missing[stash_found]
                values[dest] = stash_values[stash_found]
                found[dest] = True
                self.stats.stash_hits += int(stash_found.sum())
        hits = int(found.sum())
        self.stats.find_hits += hits
        if self.telemetry.enabled:
            hist = self.telemetry.metrics.histogram("probe_length",
                                                    (1.0, 2.0))
            hist.observe_count(1.0, n - len(missing))
            hist.observe_count(2.0, len(missing))
            self.telemetry.metrics.counter("find.hits").inc(hits)
            self.telemetry.metrics.counter("find.misses").inc(n - hits)
        if self.config.auto_resize:
            self._drain_migration()
        return values, found

    def contains(self, keys) -> np.ndarray:
        """Membership test for a batch of keys."""
        _values, found = self.find(keys)
        return found

    def get(self, key: int, default: int | None = None):
        """Scalar convenience lookup; returns ``default`` when absent."""
        values, found = self.find(np.asarray([key], dtype=np.uint64))
        return int(values[0]) if bool(found[0]) else default

    def insert(self, keys, values) -> None:
        """Upsert a batch of key/value pairs.

        Existing keys are updated in place; fresh keys are routed per the
        Theorem-1 policy and inserted with cuckoo evictions.  If the
        filled factor then exceeds ``beta`` (or an insert exhausts its
        eviction budget), the table upsizes per Section IV-B.
        """
        if self.telemetry.enabled:
            with self.telemetry.tracer.span("insert", "op",
                                            n=int(np.size(keys))):
                return self._insert_batch(keys, values)
        return self._insert_batch(keys, values)

    def _insert_batch(self, keys, values) -> None:
        return self._insert_encoded(encode_keys(keys), values)

    def _insert_encoded(self, codes: np.ndarray, values, first=None,
                        second=None, raw_of=None) -> None:
        """:meth:`insert` body over pre-encoded, *un-deduplicated* codes.

        ``first``/``second``/``raw_of`` are aligned to ``codes`` (before
        the last-occurrence dedupe, which happens here).  Pure hash
        hoisting; stats and telemetry are byte-identical.
        """
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != codes.shape:
            raise InvalidKeyError(
                f"values shape {values.shape} != keys shape {codes.shape}"
            )
        self.stats.inserts += len(codes)
        if len(codes) == 0:
            return
        keep = last_occurrence_mask(codes)
        keep_idx = np.flatnonzero(keep)
        codes = codes[keep]
        values = values[keep]
        if first is not None and second is not None:
            first = first[keep]
            second = second[keep]
        else:
            first, second = self.pair_hash.tables_for(codes)

        updated = self._update_existing(codes, values, first, second,
                                        raw_of=raw_of, abs_idx=keep_idx)
        fresh = np.flatnonzero(~updated)
        self.stats.updates += int(updated.sum())
        if len(fresh):
            fresh_codes = codes[fresh]
            targets = self._router.choose(fresh_codes, first[fresh],
                                          second[fresh],
                                          self.subtable_sizes(),
                                          self.subtable_loads())
            self._insert_pending(fresh_codes, values[fresh], targets,
                                 excluded=None)
        if self.config.auto_resize:
            self._resizer.enforce_bounds()
            self._drain_migration()
        if len(self.stash):
            self._drain_stash()

    def delete(self, keys) -> np.ndarray:
        """Delete a batch of keys; returns a mask of keys actually removed.

        At most two bucket probes per key; deletion clears the slot
        physically (no tombstones), so the filled factor drops and may
        trigger a downsize.
        """
        if self.telemetry.enabled:
            with self.telemetry.tracer.span("delete", "op",
                                            n=int(np.size(keys))):
                return self._delete_batch(keys)
        return self._delete_batch(keys)

    def _delete_batch(self, keys) -> np.ndarray:
        return self._delete_encoded(encode_keys(keys))

    def _delete_encoded(self, all_codes: np.ndarray, first=None,
                        second=None, raw_of=None) -> np.ndarray:
        """:meth:`delete` body over pre-encoded codes.

        Hints are aligned to ``all_codes`` (before the first-occurrence
        dedupe).  Pure hash hoisting; stats are byte-identical.
        """
        n = len(all_codes)
        self.stats.deletes += n
        removed = np.zeros(n, dtype=bool)
        if n == 0:
            return removed
        # Duplicate keys in one delete batch: only the first occurrence
        # can observe (and clear) the entry.
        unique = first_occurrence_mask(all_codes)
        unique_idx = np.flatnonzero(unique)
        codes = all_codes[unique]
        removed_unique = np.zeros(len(codes), dtype=bool)
        if first is not None and second is not None:
            first = first[unique]
            second = second[unique]
        else:
            first, second = self.pair_hash.tables_for(codes)
        for pass_idx, targets in enumerate((first, second)):
            pending = np.flatnonzero(~removed_unique)
            if len(pending) == 0:
                break
            if pass_idx == 1:
                self.stats.chain_hops += len(pending)
            for t in range(self.num_tables):
                sel = pending[targets[pending] == t]
                if len(sel) == 0:
                    continue
                st = self.subtables[t]
                if raw_of is not None:
                    buckets = self.bucket_for(t, raw=raw_of(t)[unique_idx[sel]])
                else:
                    buckets = self.bucket_for(t, codes[sel])
                self.stats.bucket_reads += len(sel)
                erased = st.erase(buckets, codes[sel])
                self.stats.bucket_writes += int(erased.sum())
                removed_unique[sel[erased]] = True
        if len(self.stash):
            pending = np.flatnonzero(~removed_unique)
            if len(pending):
                erased = self.stash.erase(codes[pending])
                removed_unique[pending[erased]] = True
        removed[unique_idx] = removed_unique
        self.stats.delete_hits += int(removed_unique.sum())
        if self.config.auto_resize:
            self._resizer.enforce_bounds()
            self._drain_migration()
        if len(self.stash):
            self._drain_stash()
        return removed

    def execute_mixed(self, op_codes, keys, values=None,
                      engine: str | None = None):
        """Execute a mixed op batch; see
        :func:`repro.core.batch_ops.execute_mixed`.

        ``engine=None`` uses the vectorized host path; ``"warp"`` /
        ``"cohort"`` route every homogeneous run through the
        lane-faithful kernels (the table must then be pre-sized).
        """
        from repro.core.batch_ops import execute_mixed

        return execute_mixed(self, op_codes, keys, values, engine=engine)

    def upsize(self) -> None:
        """Manually double the smallest subtable (Section IV-D)."""
        self._resizer.upsize()
        if len(self.stash):
            self._drain_stash()

    def downsize(self) -> None:
        """Manually halve the largest subtable (Section IV-D)."""
        self._resizer.downsize()
        if len(self.stash):
            self._drain_stash()

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------

    def bucket_for(self, t: int, codes: np.ndarray | None = None,
                   raw: np.ndarray | None = None) -> np.ndarray:
        """Bucket indices for ``codes`` in subtable ``t``, epoch-aware.

        The single bucket-resolution point for the host path and both
        kernel engines.  Outside a migration epoch this is the plain
        power-of-two mask; while subtable ``t`` is mid-migration it is
        the epoch check — one extra masked index computation routing
        each key to its pre- or post-resize bucket — so FIND/DELETE
        keep the paper's two-bucket guarantee throughout.  ``raw``
        (geometry-independent hashes) may be passed instead of
        ``codes`` to reuse :class:`~repro.core.batch_ops.EncodedBatch`
        caches.
        """
        st = self.subtables[t]
        h = self.table_hashes[t]
        mig = st.migration
        if mig is None:
            if raw is not None:
                return h.bucket_from_raw(raw, st.n_buckets)
            return h.bucket(codes, st.n_buckets)
        if raw is None:
            raw = h.raw(codes)
        return mig.effective_buckets(raw)

    def _drain_migration(self) -> int:
        """Batch-end hook: advance any open resize epoch by one slice."""
        return self._resizer.drain_migration()

    def finalize_resizes(self) -> int:
        """Complete any open migration epoch now; returns pairs moved.

        Needed before operations that assume settled geometry
        (persistence snapshots); harmless no-op otherwise.
        """
        return self._resizer.finalize_migration()

    def _probe(self, codes: np.ndarray, targets: np.ndarray,
               out_indices: np.ndarray, values: np.ndarray,
               found: np.ndarray, raw_of=None) -> None:
        """Look up ``codes`` in per-key subtables, writing results back.

        ``raw_of(t)``, when given, holds precomputed raw hashes for
        subtable ``t`` indexed by *absolute* position — which is exactly
        what ``out_indices`` maps local positions to.
        """
        for t in range(self.num_tables):
            sel = np.flatnonzero(targets == t)
            if len(sel) == 0:
                continue
            st = self.subtables[t]
            if raw_of is not None:
                buckets = self.bucket_for(t, raw=raw_of(t)[out_indices[sel]])
            else:
                buckets = self.bucket_for(t, codes[sel])
            self.stats.bucket_reads += len(sel)
            hit, vals = st.lookup(buckets, codes[sel])
            dest = out_indices[sel[hit]]
            values[dest] = vals[hit]
            found[dest] = True

    def _update_existing(self, codes: np.ndarray, values: np.ndarray,
                         first=None, second=None, raw_of=None,
                         abs_idx=None) -> np.ndarray:
        """Overwrite values of keys already stored; return updated mask.

        ``raw_of(t)`` is indexed by absolute batch position;
        ``abs_idx`` maps local positions in ``codes`` to those absolute
        positions (identity when omitted).
        """
        n = len(codes)
        updated = np.zeros(n, dtype=bool)
        if first is None or second is None:
            first, second = self.pair_hash.tables_for(codes)
        for pass_idx, targets in enumerate((first, second)):
            pending = np.flatnonzero(~updated)
            if len(pending) == 0:
                break
            if pass_idx == 1:
                self.stats.chain_hops += len(pending)
            for t in range(self.num_tables):
                sel = pending[targets[pending] == t]
                if len(sel) == 0:
                    continue
                st = self.subtables[t]
                if raw_of is not None:
                    src = sel if abs_idx is None else abs_idx[sel]
                    buckets = self.bucket_for(t, raw=raw_of(t)[src])
                else:
                    buckets = self.bucket_for(t, codes[sel])
                self.stats.bucket_reads += len(sel)
                upd = st.update_existing(buckets, codes[sel], values[sel])
                self.stats.bucket_writes += int(upd.sum())
                updated[sel[upd]] = True
        if len(self.stash):
            pending = np.flatnonzero(~updated)
            if len(pending):
                upd = self.stash.update(codes[pending], values[pending])
                updated[pending[upd]] = True
        return updated

    def _insert_pending(self, codes: np.ndarray, values: np.ndarray,
                        targets: np.ndarray, excluded: int | None,
                        stall_to_stash: bool = False) -> None:
        """Round-synchronous cuckoo insertion of fresh keys.

        ``targets[i]`` is the subtable each key currently attempts.  When
        ``excluded`` is set (downsize residual spill), eviction victims
        whose alternate is the excluded subtable are never chosen and the
        eviction budget exhaustion raises :class:`ResizeError` instead of
        upsizing — unless ``stall_to_stash`` is also set (migration-slice
        spill), in which case the pending keys are parked in the overflow
        stash so an incremental slice never unwinds table state.
        """
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        targets = np.asarray(targets, dtype=np.int64)
        tel = self.telemetry
        traced = tel.enabled
        prof = self.profiler
        # The chain-depth bookkeeping serves both the metrics histogram
        # and the deep profiler; track it when either consumer is live.
        track_depths = traced or prof.enabled
        if traced:
            chain_hist = tel.metrics.histogram("cuckoo_chain_depth",
                                               CHAIN_DEPTH_BUCKETS)
            retry_hist = tel.metrics.histogram(
                "atomic_retries", (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0))
        if track_depths:
            # Evictions a key's placement chain has gone through so far;
            # victims inherit their evictor's depth plus one.
            depths = np.zeros(len(codes), dtype=np.int64)
        rounds_since_progress = 0
        while len(codes):
            if self.faults.enabled:
                fault = self.faults.fire("insert.evict")
                if fault is not None:
                    if traced:
                        tel.tracer.instant("fault.inject", "fault",
                                           site=fault.site, index=fault.index,
                                           pending=len(codes))
                        tel.metrics.counter("faults.injected").inc()
                    if excluded is not None:
                        if stall_to_stash:
                            self._stash_pending(
                                codes, values,
                                reason="injected eviction-chain exhaustion "
                                       "during migration-slice spill")
                            return
                        raise ResizeError(
                            "injected eviction-chain exhaustion during "
                            "residual spill"
                        )
                    if not self.config.auto_resize:
                        self.stats.insert_failures += len(codes)
                        raise CapacityError(
                            f"insert failed for {len(codes)} keys: injected "
                            "eviction-chain exhaustion (auto_resize disabled)"
                        )
                    try:
                        self._resizer.upsize_for_insert_failure()
                    except ResizeError as exc:
                        # Upsize aborted while the chain is exhausted:
                        # park the pending keys in the stash.
                        self._stash_pending(codes, values, reason=str(exc))
                        return
            if excluded is None and self.config.auto_resize:
                # Section IV-B: keep theta under beta.  Upsizing before the
                # round (rather than after a long eviction stall) matches
                # the paper's insertion-failure trigger while avoiding
                # wasted eviction churn on a table that is simply full.
                while ((len(self) + len(codes)) / self.total_slots
                       > self.config.beta):
                    if traced:
                        tel.tracer.instant(
                            "resize.trigger", "resize", reason="beta_bound",
                            theta=self.load_factor, pending=len(codes))
                    try:
                        self._resizer.upsize_under_pressure()
                    except (ResizeError, CapacityError):
                        # Injected abort or slot ceiling: run the round
                        # over-full and let the stall path decide what to
                        # do next.
                        break
            self.stats.eviction_rounds += 1
            before_pending = len(codes)
            round_evictions = 0
            next_codes: list[np.ndarray] = []
            next_values: list[np.ndarray] = []
            next_targets: list[np.ndarray] = []
            next_depths: list[np.ndarray] = []
            for t in range(self.num_tables):
                sel = np.flatnonzero(targets == t)
                if len(sel) == 0:
                    continue
                st = self.subtables[t]
                sel_codes = codes[sel]
                sel_values = values[sel]
                buckets = self.bucket_for(t, sel_codes)
                self.stats.bucket_reads += len(sel)
                # One bucket-lock CAS per operation; collisions estimated
                # from device occupancy (only resident warps contend).
                conflicts = estimate_lock_conflicts(len(sel), st.n_buckets)
                self.stats.lock_acquisitions += len(sel)
                self.stats.lock_conflicts += conflicts
                if traced:
                    tel.metrics.counter("lock.acquisitions").inc(len(sel))
                    tel.metrics.counter("lock.conflicts").inc(conflicts)
                    retry_hist.observe(conflicts)
                    tel.tracer.instant("lock.acquire", "lock", subtable=t,
                                       requests=len(sel), conflicts=conflicts)
                if prof.enabled:
                    # Attribute the per-bucket lock grants to the
                    # contention heatmap (bucket < 2^40, so + == |).
                    prof.lock_grants_many(buckets.astype(np.int64)
                                          + (t << 40))
                updated, placed, full_leader = st.place_round(
                    buckets, sel_codes, sel_values)
                self.stats.bucket_writes += int(placed.sum() + updated.sum())

                ev = np.flatnonzero(full_leader)
                mig = st.migration
                if (len(ev) and excluded is None and mig is not None
                        and mig.kind == "upsize"):
                    # Migrate-on-access: a full bucket in an upsizing
                    # subtable gets split to its post-resize view instead
                    # of evicting — the blocked keys retry next round
                    # against the (half-empty) migrated pair.
                    ev_pairs = (buckets[ev].astype(np.int64)
                                & np.int64(mig.num_pairs - 1))
                    unmig = ~mig.migrated[ev_pairs]
                    if np.any(unmig):
                        self._resizer.migrate_on_access(
                            t, np.unique(ev_pairs[unmig]))
                        full_leader[ev[unmig]] = False
                        ev = ev[~unmig]
                good = np.zeros(0, dtype=np.int64)
                if len(ev):
                    ev_buckets = buckets[ev]
                    slots, ok, victim_alts = self._choose_victims(
                        t, ev_buckets, excluded)
                    good = np.flatnonzero(ok)
                    if len(good):
                        old_codes, old_values = st.swap_slot(
                            ev_buckets[good], slots[good],
                            sel_codes[ev[good]], sel_values[ev[good]])
                        self.stats.evictions += len(good)
                        self.stats.bucket_writes += len(good)
                        round_evictions += len(good)
                        next_codes.append(old_codes)
                        next_values.append(old_values)
                        next_targets.append(victim_alts[good])
                        if track_depths:
                            next_depths.append(depths[sel[ev[good]]] + 1)
                    # Eviction leaders without an eligible victim retry.
                    full_leader[ev[~ok]] = False

                retry = ~(updated | placed | full_leader)
                if np.any(retry):
                    next_codes.append(sel_codes[retry])
                    next_values.append(sel_values[retry])
                    next_targets.append(np.full(int(retry.sum()), t,
                                                dtype=np.int64))
                    if track_depths:
                        next_depths.append(depths[sel[retry]])
                if track_depths:
                    done = updated | placed | full_leader
                    if np.any(done):
                        if traced:
                            chain_hist.observe_many(depths[sel[done]])
                        if prof.enabled:
                            prof.observe_chains(depths[sel[done]])
            if traced:
                tel.metrics.counter("eviction.rounds").inc()
                tel.metrics.counter("evictions").inc(round_evictions)
                tel.tracer.instant(
                    "evict.round", "insert", pending=before_pending,
                    evictions=round_evictions,
                    carried=sum(len(c) for c in next_codes))
            if next_codes:
                codes = np.concatenate(next_codes)
                values = np.concatenate(next_values)
                targets = np.concatenate(next_targets)
                if track_depths:
                    depths = (np.concatenate(next_depths) if next_depths
                              else np.zeros(0, dtype=np.int64))
            else:
                codes = np.zeros(0, dtype=np.uint64)
                values = np.zeros(0, dtype=np.uint64)
                targets = np.zeros(0, dtype=np.int64)
                if track_depths:
                    depths = np.zeros(0, dtype=np.int64)

            if len(codes) >= before_pending:
                rounds_since_progress += 1
            else:
                rounds_since_progress = 0
            if rounds_since_progress >= self.config.max_eviction_rounds:
                if excluded is not None:
                    if stall_to_stash:
                        self._stash_pending(
                            codes, values,
                            reason="migration-slice spill stalled while the "
                                   "downsizing subtable is excluded")
                        return
                    raise ResizeError(
                        "residual spill stalled while a subtable is locked "
                        "for downsizing"
                    )
                if not self.config.auto_resize:
                    self.stats.insert_failures += len(codes)
                    raise CapacityError(
                        f"insert failed for {len(codes)} keys after "
                        f"{self.config.max_eviction_rounds} stalled rounds "
                        "(auto_resize disabled)"
                    )
                try:
                    self._resizer.upsize_for_insert_failure()
                except ResizeError as exc:
                    # The upsize that would have made room was aborted by
                    # an injected fault: degrade to the bounded stash
                    # (the CUDA reference's error table) instead of
                    # spinning further eviction rounds.
                    self._stash_pending(codes, values, reason=str(exc))
                    return
                rounds_since_progress = 0

    def _stash_pending(self, codes: np.ndarray, values: np.ndarray,
                       reason: str) -> None:
        """Park pending inserts in the overflow stash (degraded mode).

        Mirrors the CUDA reference's ``cg_error_handle``: keys whose
        eviction chain is exhausted while the upsize that would make
        room is unavailable are appended to a bounded error table
        rather than lost.  Overflowing the stash raises
        :class:`StashOverflowError` — the error of last resort.
        """
        absorbed = self.stash.push(codes, values)
        n_absorbed = int(absorbed.sum())
        self.stats.stash_pushes += n_absorbed
        if self.profiler.enabled:
            self.profiler.sample_stash(len(self.stash))
        if self.recorder.enabled:
            self.recorder.record("stash.push", n=n_absorbed,
                                 occupancy=len(self.stash), reason=reason)
        tel = self.telemetry
        if tel.enabled:
            tel.tracer.instant("stash.push", "stash", n=n_absorbed,
                               occupancy=len(self.stash), reason=reason)
            tel.metrics.counter("stash.pushes").inc(n_absorbed)
            tel.metrics.gauge("stash.occupancy").set(len(self.stash))
        overflow = len(codes) - n_absorbed
        if overflow:
            self.stats.insert_failures += overflow
            if tel.enabled:
                tel.tracer.instant("stash.overflow", "stash", dropped=overflow,
                                   capacity=self.stash.capacity)
                tel.metrics.counter("stash.overflows").inc(overflow)
            raise StashOverflowError(
                f"overflow stash full: {overflow} keys could not be parked "
                f"(stash_capacity={self.stash.capacity}); last resize "
                f"failure: {reason}"
            )

    def _drain_stash(self) -> int:
        """Retry stashed inserts through the normal path; return count.

        Bounded retry-with-revote: at most one drain attempt per resize
        *epoch* (total completed upsizes + downsizes), so a stash that
        cannot be emptied does not add per-batch retry churn.  The
        attempt is all-or-nothing with respect to key survival — on a
        hard :class:`CapacityError` mid-drain the table and stash are
        rolled back from a snapshot and the table stays in degraded
        mode.
        """
        if self._draining or not len(self.stash):
            return 0
        epoch = self.stats.upsizes + self.stats.downsizes
        if epoch == self._drain_epoch:
            return 0
        from repro.core.resize import _TableSnapshot

        snapshot = _TableSnapshot(self)
        codes, values = self.stash.pop_all()
        before = len(codes)
        self._draining = True
        try:
            first, second = self.pair_hash.tables_for(codes)
            targets = self._router.choose(codes, first, second,
                                          self.subtable_sizes(),
                                          self.subtable_loads())
            self._insert_pending(codes, values, targets, excluded=None)
        except CapacityError:
            # Hard failure mid-drain (e.g. max_total_slots): no key may
            # be lost, so restore the pre-drain state (the snapshot
            # covers the stash) and stay degraded.
            snapshot.restore(self)
            if self.telemetry.enabled:
                self.telemetry.tracer.instant("stash.drain_failed", "stash",
                                              attempted=before)
            return 0
        finally:
            self._draining = False
            self._drain_epoch = self.stats.upsizes + self.stats.downsizes
        drained = before - len(self.stash)
        self.stats.stash_drained += drained
        if self.profiler.enabled:
            self.profiler.sample_stash(len(self.stash))
        if self.recorder.enabled:
            self.recorder.record("stash.drain", attempted=before,
                                 drained=drained,
                                 remaining=len(self.stash))
        if self.telemetry.enabled:
            self.telemetry.tracer.instant("stash.drain", "stash",
                                          attempted=before, drained=drained,
                                          remaining=len(self.stash))
            self.telemetry.metrics.counter("stash.drained").inc(drained)
            self.telemetry.metrics.gauge("stash.occupancy").set(
                len(self.stash))
        return drained

    def _choose_victims(self, table_idx: int, buckets: np.ndarray,
                        excluded: int | None
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pick one eviction victim per (full) bucket.

        Victims rotate deterministically around the bucket so repeated
        evictions do not thrash the same slot.  With ``excluded`` set,
        only occupants whose alternate subtable differs from ``excluded``
        are eligible.

        Returns ``(slots, ok, alternates)`` — the chosen slot per bucket,
        whether an eligible victim exists, and the victim's alternate
        subtable.
        """
        st = self.subtables[table_idx]
        cap = st.bucket_capacity
        m = len(buckets)
        bucket_keys = st.bucket_keys(buckets)                 # (m, cap), full
        flat = bucket_keys.ravel()
        current = np.full(len(flat), table_idx, dtype=np.int64)
        alternates = self.pair_hash.alternate_table(flat, current).reshape(m, cap)
        if excluded is None:
            eligible = np.ones((m, cap), dtype=bool)
        else:
            eligible = alternates != excluded
        # Theorem-1-guided choice (Section V-A: "one can pick a KV pair
        # for re-insertion into a desired hash table based on the
        # balancing strategy"): prefer the occupant whose alternate
        # subtable currently has the best routing weight, so evictions
        # drain toward the least-loaded subtables — this is where a
        # larger d pays off for insertion.
        from repro.core.distribution import theorem1_weights
        weights = theorem1_weights(self.subtable_sizes(),
                                   self.subtable_loads())
        preference = weights[alternates]                      # (m, cap)
        # Random tie-breaking jitter: victims must still be effectively
        # random or dense eviction cycles persist for hundreds of
        # rounds (random-walk cuckoo).  A multiplicative hash of
        # (event counter, bucket, slot) provides the jitter without an
        # RNG stream.
        self._victim_counter += 1
        nonce = (self._victim_counter * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        mixed = (np.uint64(nonce)
                 + buckets.astype(np.uint64)[:, None] * np.uint64(0xBF58476D1CE4E5B9)
                 + np.arange(cap, dtype=np.uint64)[None, :] * np.uint64(0x94D049BB133111EB))
        jitter = ((mixed >> np.uint64(40)).astype(np.float64)
                  / float(1 << 24))                           # [0, 1)
        score = preference * (0.5 + jitter)
        score = np.where(eligible, score, -1.0)
        slots = score.argmax(axis=1)
        ok = eligible[np.arange(m), slots]
        return slots, ok, alternates[np.arange(m), slots]
