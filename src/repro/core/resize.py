"""Subtable resizing policy (Sections IV-B and IV-D).

The policy keeps the global filled factor ``theta`` inside the user range
``[alpha, beta]`` while only ever touching one subtable:

* **Upsize** — double the *smallest* subtable.  Because bucket counts are
  powers of two and bucket indices are low hash bits, an entry in bucket
  ``loc`` moves to ``loc`` or ``loc + old_n``: a conflict-free scatter
  needing no locks (Figure 4).
* **Downsize** — halve the *largest* subtable.  Buckets ``loc`` and
  ``loc + new_n`` merge into ``loc``; entries beyond bucket capacity are
  *residuals*, spilled into the other subtables with the downsizing
  subtable excluded from the eviction graph.

The invariant that no subtable exceeds twice the size of any other is a
consequence of always picking the extreme subtable and is asserted by
:meth:`repro.core.table.DyCuckooTable.validate`.

A failed residual spill (possible in adversarial corner cases) rolls the
downsize back from a snapshot, so downsizing is all-or-nothing.

When a :class:`~repro.faults.FaultPlan` is attached to the table, every
resize consults it at four lifecycle stages — ``trigger`` (before
anything happens), ``plan`` (target picked, nothing mutated), ``rehash``
(storage already rebuilt) and ``spill`` (residual relocation) — and an
injected abort raises :class:`~repro.errors.ResizeError` after rolling
any mutation back from a :class:`_TableSnapshot`.  Resizes are therefore
all-or-nothing even under injected failure at the worst possible moment.

**Incremental migration epochs** (``config.incremental_resize``, the
DHash-style extension): automatic resizes do not rehash inside the
triggering batch.  :meth:`ResizeController.open_upsize_epoch` /
:meth:`~ResizeController.open_downsize_epoch` switch the target
subtable to its new geometry immediately (so capacity and ``theta``
respond at once) and leave a
:class:`~repro.core.subtable.MigrationState` behind; entries then move
one *bucket pair* at a time through
:meth:`~ResizeController.drain_migration` (a bounded batch-end budget)
and :meth:`~ResizeController.migrate_on_access` (an insert that finds a
full, unmigrated bucket splits it instead of evicting).  Probes stay
correct throughout because
:meth:`repro.core.table.DyCuckooTable.bucket_for` resolves every key to
its pre- or post-resize bucket via the epoch check.  Under injected
faults a slice aborts *alone* — the epoch stays open, the dual view
keeps every key reachable, and a later batch retries.  Manual
:meth:`upsize`/:meth:`downsize` keep the one-shot all-or-nothing
semantics above (finalizing any open epoch first).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.grouping import rank_within_group
from repro.core.hashing import UniversalHash
from repro.core.subtable import EMPTY
from repro.errors import CapacityError, ResizeError
from repro.sanitizer import NULL_SANITIZER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.table import DyCuckooTable

_SITE_UPSIZE = "repro/core/resize.py:ResizeController.upsize"
_SITE_DOWNSIZE = "repro/core/resize.py:ResizeController.downsize"
_SITE_MIGRATE = "repro/core/resize.py:ResizeController._migrate_slice"
_SITE_FINISH = "repro/core/resize.py:ResizeController._finish_epoch"


class ResizeController:
    """Owns the resize policy for one :class:`DyCuckooTable`."""

    def __init__(self, table: "DyCuckooTable") -> None:
        self._table = table
        # Round-robin position for fair budget sharing across
        # concurrently open migration epochs (see drain_migration).
        self._drain_cursor = 0

    # ------------------------------------------------------------------
    # Bound enforcement
    # ------------------------------------------------------------------

    def enforce_bounds(self) -> None:
        """Upsize/downsize until ``theta`` is inside ``[alpha, beta]``.

        Downsizing stops early when every subtable is at minimum size or
        when halving the largest would overshoot ``beta``.  A
        :class:`CapacityError` from the ``max_total_slots`` ceiling is
        absorbed like an injected abort — the triggering batch already
        landed, so the table simply stays above ``beta`` (recorded in
        ``stats.capacity_blocked``) until deletes make room; the error
        keeps raising only on the insert-stall path, where the insert
        genuinely cannot proceed without the doubling.
        """
        table = self._table
        config = table.config
        tel = table.telemetry
        while table.total_slots and table.load_factor > config.beta:
            if tel.enabled:
                tel.tracer.instant("resize.trigger", "resize",
                                   reason="theta>beta",
                                   theta=table.load_factor)
            try:
                self.upsize_auto()
            except ResizeError:
                # Injected abort: theta stays above beta for now; the
                # next mutating batch re-enters this loop and retries.
                break
            except CapacityError:
                # The ceiling blocks the doubling.  The batch that got
                # theta here has already landed — failing it now would
                # report failure for keys that were stored successfully.
                table.stats.capacity_blocked += 1
                if tel.enabled:
                    tel.tracer.instant("resize.capacity_blocked", "resize",
                                       theta=table.load_factor,
                                       ceiling=config.max_total_slots)
                break
        while table.load_factor < config.alpha:
            if tel.enabled:
                tel.tracer.instant("resize.trigger", "resize",
                                   reason="theta<alpha",
                                   theta=table.load_factor)
            target = self._pick_downsize_target()
            if target is None:
                break
            largest = table.subtables[target]
            projected_slots = table.total_slots - largest.total_slots // 2
            if projected_slots and len(table) / projected_slots > config.beta:
                break
            try:
                self.downsize_auto()
            except ResizeError:
                break

    def upsize_for_insert_failure(self) -> None:
        """Upsize in response to a stalled insert.

        By default performs a single doubling, matching the paper.  With
        ``anticipatory_upsize`` (our future-work extension), doublings
        repeat until the projected filled factor reaches the midpoint of
        ``[alpha, beta]``, avoiding the repeated upsize cascades the
        paper observes in Figure 12.  Only the first doubling is
        mandatory: an error on an anticipatory extra doubling (ceiling
        reached, injected abort) stops the anticipation and lets the
        insert retry against the capacity the first doubling created.

        The mandatory doubling always completes synchronously, even
        under ``incremental_resize``: a stalled insert needs empty
        slots *now*, and an epoch that migrates lazily would leave the
        pending keys spinning eviction rounds against pre-resize bucket
        density.  Only bound-driven resizes (``enforce_bounds`` and the
        pre-round beta check), where nothing is blocked waiting, are
        spread across batches.
        """
        table = self._table
        if table.telemetry.enabled:
            table.telemetry.tracer.instant("resize.trigger", "resize",
                                           reason="insert_stall",
                                           theta=table.load_factor)
        self.upsize_under_pressure()
        if not table.config.anticipatory_upsize:
            return
        midpoint = (table.config.alpha + table.config.beta) / 2.0
        while table.load_factor > midpoint:
            try:
                self.upsize_auto()
            except (ResizeError, CapacityError):
                break

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def _fire_abort(self, stage: str,
                    snapshot: "_TableSnapshot | None" = None) -> None:
        """Abort the running resize if the fault plan says so.

        With ``snapshot`` given, storage is restored before raising —
        the already-mutated stages (``rehash``) stay all-or-nothing.
        Callers gate on ``table.faults.enabled`` so the fault-free path
        pays one attribute check.
        """
        table = self._table
        fault = table.faults.fire(f"resize.abort.{stage}")
        if fault is None:
            return
        if snapshot is not None:
            snapshot.restore(table)
        table.stats.resize_aborts += 1
        if table.telemetry.enabled:
            table.telemetry.tracer.instant(
                "fault.inject", "fault", site=fault.site, index=fault.index,
                rolled_back=snapshot is not None)
            table.telemetry.metrics.counter("faults.injected").inc()
        raise ResizeError(
            f"injected resize abort at {stage} stage"
            + (" (rolled back)" if snapshot is not None else ""))

    # ------------------------------------------------------------------
    # Incremental migration epochs (DHash-style)
    # ------------------------------------------------------------------

    def _open_epochs(self) -> list[int]:
        """Subtables with an open migration epoch (possibly several).

        Epochs on *different* subtables coexist — a growth cascade
        doubles each subtable in turn, and forcing the previous epoch
        to finish before the next opens would re-serialize the rehash
        into the triggering batch.  A subtable never has two epochs at
        once, and migration slices still lock one subtable at a time,
        so the sanitizer's one-subtable contract holds per slice.
        """
        return [idx for idx, st in enumerate(self._table.subtables)
                if st.migration is not None]

    def upsize_auto(self) -> int:
        """Upsize on an automatic trigger: incremental epoch or one-shot."""
        if self._table.config.incremental_resize:
            return self.open_upsize_epoch()
        return self.upsize()

    def downsize_auto(self) -> int:
        """Downsize on an automatic trigger: incremental epoch or one-shot."""
        if self._table.config.incremental_resize:
            return self.open_downsize_epoch()
        return self.downsize()

    def upsize_under_pressure(self) -> int:
        """Upsize while inserts are pending: the epoch drains at once.

        Laziness only pays when nothing is waiting on the new capacity.
        A doubling triggered *mid-insert* (the pre-round beta check or a
        stalled eviction chain) has pending keys that would otherwise
        spin further rounds against pre-resize bucket density — the
        unmigrated half of a lazy epoch is exactly as full as before the
        resize — so the epoch is finalized immediately.  Bound-driven
        resizes between batches (:meth:`enforce_bounds`) stay lazy.
        """
        target = self.upsize_auto()
        if self._table.config.incremental_resize:
            self._finalize_one(target)
        return target

    def open_upsize_epoch(self) -> int:
        """Open a doubling epoch on the smallest subtable; returns it.

        Capacity (and therefore ``theta``) responds immediately — the
        subtable adopts its doubled geometry before this returns — but
        no entry moves: migration is deferred to bounded per-batch
        slices, so the triggering batch pays an allocation instead of a
        rehash.  Fault stages ``trigger``/``plan``/``rehash`` fire here
        (``rehash`` after the storage grew, rolled back from a
        snapshot); ``spill`` cannot occur at open.
        """
        table = self._table
        tracer = table.telemetry.tracer
        faulty = table.faults.enabled
        if faulty:
            self._fire_abort("trigger")
        with tracer.span("resize.upsize_epoch", "resize"):
            with tracer.span("resize.plan", "resize"):
                target = self._pick_upsize_target()
                st = table.subtables[target]
                if st.migration is not None:
                    # A subtable holds one epoch at a time: the target's
                    # own unfinished epoch (and only that one) must
                    # drain before its geometry changes again.
                    self._finalize_one(target)
                ceiling = table.config.max_total_slots
                if ceiling and table.total_slots + st.total_slots > ceiling:
                    raise CapacityError(
                        f"upsizing subtable {target} would exceed "
                        f"max_total_slots={ceiling} (currently "
                        f"{table.total_slots} slots, "
                        f"{len(table)} live entries)")
            if faulty:
                self._fire_abort("plan")
            snapshot = _TableSnapshot(table) if faulty else None
            san = getattr(table, "sanitizer", NULL_SANITIZER)
            if san.enabled:
                san.on_subtable_lock(target, "upsize", site=_SITE_UPSIZE)
            try:
                mig = st.begin_upsize_epoch()
                if faulty:
                    self._fire_abort("rehash", snapshot=snapshot)
            finally:
                if san.enabled:
                    san.on_subtable_unlock(target, site=_SITE_UPSIZE)
            table.stats.upsizes += 1
            if table.telemetry.enabled:
                table.telemetry.metrics.counter("resize.upsizes").inc()
                tracer.instant("resize.epoch_open", "resize",
                               subtable=target, kind="upsize",
                               pairs=mig.num_pairs)
            if table.profiler.enabled:
                table.profiler.sample_fill("upsize", table)
            if table.recorder.enabled:
                table.recorder.record("resize.epoch_open", subtable=target,
                                      direction="upsize",
                                      pairs=mig.num_pairs)
        return target

    def open_downsize_epoch(self) -> int:
        """Open a halving epoch on the largest subtable; returns it.

        The logical geometry halves immediately (so ``theta`` recovers
        at once); upper buckets merge down pair by pair in later slices,
        and only :meth:`~repro.core.subtable.Subtable.finish_migration`
        releases the physical rows.  Residual spills happen per slice,
        not here.
        """
        table = self._table
        tracer = table.telemetry.tracer
        faulty = table.faults.enabled
        if faulty:
            self._fire_abort("trigger")
        with tracer.span("resize.downsize_epoch", "resize"):
            with tracer.span("resize.plan", "resize"):
                target = self._pick_downsize_target()
                if target is None:
                    raise ResizeError(
                        "no subtable can be downsized (all at min_buckets)"
                    )
                st = table.subtables[target]
                if st.migration is not None:
                    self._finalize_one(target)
            if faulty:
                self._fire_abort("plan")
            snapshot = _TableSnapshot(table) if faulty else None
            san = getattr(table, "sanitizer", NULL_SANITIZER)
            if san.enabled:
                san.on_subtable_lock(target, "downsize", site=_SITE_DOWNSIZE)
            try:
                mig = st.begin_downsize_epoch()
                if faulty:
                    self._fire_abort("rehash", snapshot=snapshot)
            finally:
                if san.enabled:
                    san.on_subtable_unlock(target, site=_SITE_DOWNSIZE)
            table.stats.downsizes += 1
            if table.telemetry.enabled:
                table.telemetry.metrics.counter("resize.downsizes").inc()
                tracer.instant("resize.epoch_open", "resize",
                               subtable=target, kind="downsize",
                               pairs=mig.num_pairs)
            if table.profiler.enabled:
                table.profiler.sample_fill("downsize", table)
            if table.recorder.enabled:
                table.recorder.record("resize.epoch_open", subtable=target,
                                      direction="downsize",
                                      pairs=mig.num_pairs)
        return target

    def drain_migration(self, max_pairs: int | None = None) -> int:
        """Advance open epochs by one bounded slice; returns pairs moved.

        The batch-end hook: every public batched operation drains up to
        ``config.migration_budget`` pairs (0 = an eighth of the largest
        open epoch, at least 32).  The budget is a *per-batch total*,
        shared round-robin across however many epochs are open —
        concurrent epochs must not multiply the tax, or a churn wave
        that opens four epochs would hand the next batch four slices
        and recreate the spike the epochs exist to avoid.  An injected
        ``resize.abort.rehash`` skips one epoch's share (counted, the
        epoch stays open); the dual view keeps every key reachable
        regardless.
        """
        table = self._table
        epochs = self._open_epochs()
        if not epochs:
            return 0
        if max_pairs is not None:
            budget = max_pairs
        else:
            open_migs = [mig for t in epochs
                         if (mig := table.subtables[t].migration)
                         is not None]
            budget = table.config.migration_budget or max(
                32, max(mig.num_pairs for mig in open_migs) // 8)
        # Rotate the starting epoch so a small budget still makes
        # progress on every epoch over consecutive batches.
        cursor = self._drain_cursor % len(epochs)
        self._drain_cursor += 1
        moved = 0
        for target in epochs[cursor:] + epochs[:cursor]:
            if moved >= budget:
                break
            st = table.subtables[target]
            mig = st.migration
            if mig is None:  # pragma: no cover - epochs listed while open
                continue
            pairs = np.flatnonzero(~mig.migrated)[:budget - moved]
            if len(pairs) == 0:  # pragma: no cover - closed when drained
                self._finish_epoch(target, st)
                continue
            if table.faults.enabled:
                try:
                    self._fire_abort("rehash")
                except ResizeError:
                    continue
            moved += self._migrate_slice(target, pairs, reason="budget")
        return moved

    def migrate_on_access(self, target: int, pairs: np.ndarray) -> int:
        """Migrate specific pairs an operation needs right now.

        Used by the insert path when a placement lands on a full,
        unmigrated bucket of an upsizing subtable: splitting the bucket
        pair relieves the pressure exactly where it appeared, instead of
        starting an eviction chain against pre-resize density.
        """
        return self._migrate_slice(target, np.asarray(pairs, dtype=np.int64),
                                   reason="access")

    def finalize_migration(self) -> int:
        """Drain every open epoch to completion (manual resizes, saves)."""
        return sum(self._finalize_one(target)
                   for target in self._open_epochs())

    def _finish_epoch(self, target: int, st) -> None:
        """Close ``target``'s completed epoch.

        A downsize finalize truncates the physical arrays back to the
        new view, retiring the epoch's source rows — memcheck is told
        first, so a stale dual-view access afterwards is attributed as
        ``use-after-retire`` instead of a bare ``oob-access``.
        """
        mig = st.migration
        san = self._table.sanitizer
        if san.enabled and mig is not None and mig.kind == "downsize":
            san.on_epoch_retire(self._table, target, mig.old_n,
                                mig.new_n, site=_SITE_FINISH)
        st.finish_migration()

    def _finalize_one(self, target: int) -> int:
        """Drain one subtable's epoch to completion; returns pairs moved."""
        st = self._table.subtables[target]
        moved = 0
        while st.migration is not None:
            mig = st.migration
            pairs = np.flatnonzero(~mig.migrated)
            if len(pairs) == 0:
                self._finish_epoch(target, st)
                break
            moved += self._migrate_slice(target, pairs, reason="finalize")
        return moved

    def _migrate_slice(self, target: int, pairs: np.ndarray,
                       reason: str) -> int:
        """Move the entries of ``pairs`` to their new-view buckets.

        Upsize: entries of bucket ``s`` whose post-resize bucket is
        ``s + old_n`` scatter up (conflict-free, Figure 4).  Downsize:
        bucket ``s + new_n`` merges into ``s``; entries beyond capacity
        are residuals, spilled to their alternate subtables with this
        subtable excluded — and parked in the stash if even the spill
        stalls, so a slice never loses a key.  The sanitizer lock
        brackets exactly this slice (the one-subtable contract holds
        *per batch*, not across the epoch).  Charges the cost model 1
        read + 2 writes per upsize pair and 2 reads + 1 write per
        downsize pair — summed over the epoch, exactly the one-shot
        totals, just spread across batches.
        """
        table = self._table
        st = table.subtables[target]
        mig = st.migration
        assert mig is not None, "migrate slice on a subtable with no epoch"
        pairs = np.asarray(pairs, dtype=np.int64)
        up = mig.kind == "upsize"
        src_buckets = pairs if up else pairs + mig.new_n

        san = getattr(table, "sanitizer", NULL_SANITIZER)
        if san.enabled:
            san.on_subtable_lock(target, "migrate", site=_SITE_MIGRATE)
        try:
            examined = 0
            if not up:
                examined += int(np.count_nonzero(st.keys[pairs] != EMPTY))
            src_keys = st.keys[src_buckets]                    # (p, cap)
            occupied = src_keys != EMPTY
            examined += int(np.count_nonzero(occupied))
            row_idx, slot_idx = np.nonzero(occupied)
            codes = src_keys[row_idx, slot_idx]
            if up:
                raw = table.table_hashes[target].raw(codes)
                dest = UniversalHash.bucket_from_raw(raw, mig.new_n)
                move = dest != src_buckets[row_idx]
            else:
                dest = pairs[row_idx]
                move = np.ones(len(codes), dtype=bool)

            mv_rows = row_idx[move]
            mv_slots = slot_idx[move]
            mv_codes = codes[move]
            mv_values = st.values[src_buckets[mv_rows], mv_slots]
            mv_dest = dest[move]
            residual_codes = np.zeros(0, dtype=np.uint64)
            residual_values = np.zeros(0, dtype=np.uint64)
            if len(mv_codes):
                st.keys[src_buckets[mv_rows], mv_slots] = EMPTY
                st.size -= len(mv_codes)
                ranks, unique_dest, inverse = rank_within_group(mv_dest)
                free_mask = st.keys[unique_dest] == EMPTY
                free_counts = free_mask.sum(axis=1)
                fits = ranks < free_counts[inverse]
                if np.any(fits):
                    fit_rows = free_mask[inverse[fits]]
                    running = fit_rows.cumsum(axis=1)
                    slot_target = (ranks[fits] + 1)[:, None]
                    dslots = (running == slot_target).argmax(axis=1)
                    st.keys[mv_dest[fits], dslots] = mv_codes[fits]
                    st.values[mv_dest[fits], dslots] = mv_values[fits]
                    st.size += int(fits.sum())
                residual_codes = mv_codes[~fits]
                residual_values = mv_values[~fits]

            mig.migrated[pairs] = True
            mig.pending -= len(pairs)
            table.stats.migration_slices += 1
            table.stats.migrated_pairs += len(pairs)
            table.stats.rehashed_entries += examined
            table.stats.bucket_reads += len(pairs) * (1 if up else 2)
            table.stats.bucket_writes += len(pairs) * (2 if up else 1)

            if len(residual_codes):
                table.stats.residuals += len(residual_codes)
                self._spill_residuals(target, residual_codes, residual_values)
        finally:
            if san.enabled:
                san.on_subtable_unlock(target, site=_SITE_MIGRATE)

        if table.telemetry.enabled:
            table.telemetry.tracer.instant(
                "resize.migrate", "resize", subtable=target, reason=reason,
                pairs=len(pairs), moved=int(len(mv_codes)),
                remaining=mig.pending)
            table.telemetry.metrics.counter(
                "resize.rehashed_entries").inc(examined)
            table.telemetry.metrics.counter(
                "resize.migrated_pairs").inc(len(pairs))
        if table.profiler.enabled:
            table.profiler.sample_fill("migrate", table)
        if table.recorder.enabled:
            table.recorder.record("resize.migrate", subtable=target,
                                  reason=reason, pairs=len(pairs),
                                  remaining=mig.pending)
        if mig.complete:
            self._finish_epoch(target, st)
            if table.telemetry.enabled:
                table.telemetry.tracer.instant("resize.epoch_complete",
                                               "resize", subtable=target,
                                               kind=mig.kind)
            if table.recorder.enabled:
                table.recorder.record("resize.epoch_complete",
                                      subtable=target, direction=mig.kind)
        return len(pairs)

    def _spill_residuals(self, target: int, codes: np.ndarray,
                         values: np.ndarray) -> None:
        """Relocate merge residuals of one slice, never losing a key.

        An injected ``resize.abort.spill`` degrades the slice to the
        stash (counted as an abort) instead of unwinding the epoch —
        with the dual view there is nothing to unwind, and the stash
        already is the sanctioned degraded home for keys the table
        cannot place right now.
        """
        table = self._table
        if table.faults.enabled:
            fault = table.faults.fire("resize.abort.spill")
            if fault is not None:
                table.stats.resize_aborts += 1
                if table.telemetry.enabled:
                    table.telemetry.tracer.instant(
                        "fault.inject", "fault", site=fault.site,
                        index=fault.index, rolled_back=False)
                    table.telemetry.metrics.counter("faults.injected").inc()
                table._stash_pending(
                    codes, values,
                    reason="injected spill abort during migration slice")
                return
        current = np.full(len(codes), target, dtype=np.int64)
        alternates = table.pair_hash.alternate_table(codes, current)
        table._insert_pending(codes, values, alternates, excluded=target,
                              stall_to_stash=True)

    # ------------------------------------------------------------------
    # Single-subtable resizes
    # ------------------------------------------------------------------

    def _pick_upsize_target(self) -> int:
        """Index of the smallest subtable (ties: lowest index)."""
        sizes = [st.n_buckets for st in self._table.subtables]
        return int(np.argmin(sizes))

    def _pick_downsize_target(self) -> int | None:
        """Index of the largest shrinkable subtable, or ``None``."""
        table = self._table
        best = None
        best_size = -1
        for idx, st in enumerate(table.subtables):
            if st.n_buckets <= table.config.min_buckets:
                continue
            if st.n_buckets > best_size:
                best = idx
                best_size = st.n_buckets
        return best

    def upsize(self) -> int:
        """Double the smallest subtable; returns its index.

        The rehash is conflict-free: every entry either stays in its
        bucket or moves to ``bucket + old_n`` according to one additional
        hash bit, so distinct source buckets can never collide.  Growth
        past ``max_total_slots`` raises :class:`CapacityError` — the
        backstop against workloads no amount of doubling can absorb.
        """
        table = self._table
        tracer = table.telemetry.tracer
        faulty = table.faults.enabled
        if faulty:
            self._fire_abort("trigger")
        self.finalize_migration()
        with tracer.span("resize.upsize", "resize"):
            with tracer.span("resize.plan", "resize"):
                target = self._pick_upsize_target()
                st = table.subtables[target]
                ceiling = table.config.max_total_slots
                if ceiling and table.total_slots + st.total_slots > ceiling:
                    raise CapacityError(
                        f"upsizing subtable {target} would exceed "
                        f"max_total_slots={ceiling} (currently "
                        f"{table.total_slots} slots, "
                        f"{len(table)} live entries)")
            if faulty:
                self._fire_abort("plan")
            snapshot = _TableSnapshot(table) if faulty else None
            # The paper's one-subtable guarantee: a resize locks exactly
            # its target subtable for the mutating stages.  The bracket
            # is try/finally so an injected rehash abort still releases
            # — a leak here wedges the subtable for every later resize.
            san = getattr(table, "sanitizer", NULL_SANITIZER)
            if san.enabled:
                san.on_subtable_lock(target, "upsize", site=_SITE_UPSIZE)
            try:
                with tracer.span("resize.rehash", "resize", subtable=target,
                                 old_buckets=st.n_buckets,
                                 new_buckets=st.n_buckets * 2):
                    codes, values, _old_buckets = st.export_entries()
                    new_n = st.n_buckets * 2
                    new_buckets = table.table_hashes[target].bucket(codes,
                                                                    new_n)
                    st.rebuild(new_n, codes, values, new_buckets)
                    if faulty:
                        self._fire_abort("rehash", snapshot=snapshot)
                table.stats.upsizes += 1
                table.stats.rehashed_entries += len(codes)
                # One coalesced read + write per touched bucket pair.
                table.stats.bucket_reads += st.n_buckets // 2
                table.stats.bucket_writes += st.n_buckets
            finally:
                if san.enabled:
                    san.on_subtable_unlock(target, site=_SITE_UPSIZE)
            if table.telemetry.enabled:
                table.telemetry.metrics.counter("resize.upsizes").inc()
                table.telemetry.metrics.counter(
                    "resize.rehashed_entries").inc(len(codes))
            if table.profiler.enabled:
                table.profiler.sample_fill("upsize", table)
            if table.recorder.enabled:
                table.recorder.record("resize.upsize", subtable=target,
                                      new_buckets=st.n_buckets,
                                      rehashed=len(codes))
        return target

    def downsize(self) -> int:
        """Halve the largest subtable; returns its index.

        Residual entries that do not fit the merged buckets are spilled
        into their alternate subtables (the downsized subtable stays
        excluded, per Section IV-D).  On spill failure the downsize is
        rolled back and :class:`ResizeError` propagates.
        """
        table = self._table
        tracer = table.telemetry.tracer
        faulty = table.faults.enabled
        if faulty:
            self._fire_abort("trigger")
        self.finalize_migration()
        with tracer.span("resize.downsize", "resize"):
            with tracer.span("resize.plan", "resize"):
                target = self._pick_downsize_target()
                if target is None:
                    raise ResizeError(
                        "no subtable can be downsized (all at min_buckets)"
                    )
                st = table.subtables[target]
                snapshot = _TableSnapshot(table)
                # Rollback must be symmetric: everything below mutates
                # counters, so remember them all (not just `downsizes`)
                # before the first mutation.
                stats_before = table.stats.snapshot()
            if faulty:
                self._fire_abort("plan")
            # One-subtable guarantee (Section IV-D): only the downsizing
            # subtable is locked; the residual spill targets the *other*
            # subtables, which stay unlocked and service queries.  The
            # try/finally covers rehash, spill, and rollback so every
            # abort path releases.
            san = getattr(table, "sanitizer", NULL_SANITIZER)
            if san.enabled:
                san.on_subtable_lock(target, "downsize",
                                     site=_SITE_DOWNSIZE)
            try:
                with tracer.span("resize.rehash", "resize", subtable=target,
                                 old_buckets=st.n_buckets,
                                 new_buckets=st.n_buckets // 2):
                    codes, values, _old_buckets = st.export_entries()
                    new_n = st.n_buckets // 2
                    new_buckets = table.table_hashes[target].bucket(codes,
                                                                    new_n)
                    ranks, _unique, _inverse = rank_within_group(new_buckets)
                    keep = ranks < st.bucket_capacity
                    st.rebuild(new_n, codes[keep], values[keep],
                               new_buckets[keep])
                    if faulty:
                        self._fire_abort("rehash", snapshot=snapshot)
                table.stats.bucket_reads += new_n * 2
                table.stats.bucket_writes += new_n

                residual_codes = codes[~keep]
                residual_values = values[~keep]
                table.stats.downsizes += 1
                table.stats.rehashed_entries += len(codes)
                table.stats.residuals += len(residual_codes)
                with tracer.span("resize.spill", "resize", subtable=target,
                                 residuals=len(residual_codes)):
                    if len(residual_codes):
                        current = np.full(len(residual_codes), target,
                                          dtype=np.int64)
                        alternates = table.pair_hash.alternate_table(
                            residual_codes, current)
                        try:
                            if faulty:
                                self._fire_abort("spill")
                            table._insert_pending(residual_codes,
                                                  residual_values,
                                                  alternates,
                                                  excluded=target)
                        except ResizeError:
                            snapshot.restore(table)
                            self._restore_stats(stats_before)
                            tracer.instant("resize.rollback", "resize",
                                           subtable=target,
                                           residuals=len(residual_codes))
                            raise
            finally:
                if san.enabled:
                    san.on_subtable_unlock(target, site=_SITE_DOWNSIZE)
            # Telemetry counters are monotonic (no decrement exists), so
            # they are only published once the spill — the last stage
            # that can roll the downsize back — has succeeded.
            if table.telemetry.enabled:
                table.telemetry.metrics.counter("resize.downsizes").inc()
                table.telemetry.metrics.counter(
                    "resize.rehashed_entries").inc(len(codes))
                table.telemetry.metrics.counter(
                    "resize.residuals").inc(len(residual_codes))
            if table.profiler.enabled:
                table.profiler.sample_fill("downsize", table)
            if table.recorder.enabled:
                table.recorder.record("resize.downsize", subtable=target,
                                      new_buckets=st.n_buckets,
                                      rehashed=len(codes),
                                      residuals=len(residual_codes))
        return target

    def _restore_stats(self, stats_before: dict) -> None:
        """Roll every counter back to ``stats_before``.

        ``resize_aborts`` is exempt: an injected abort that triggered
        the rollback is a real event that must stay counted.
        """
        stats = self._table.stats
        aborts = stats.resize_aborts
        for name, value in stats_before.items():
            setattr(stats, name, value)
        stats.resize_aborts = max(aborts, stats.resize_aborts)


class _TableSnapshot:
    """Copy-on-demand snapshot used to roll back a failed resize or drain.

    Captures *all* places a key can live — subtable storage, any open
    migration epoch, and the overflow stash — so every rollback path
    restores a consistent ``len(table)``.  (The stash used to be backed
    up ad hoc by ``_drain_stash``; rollbacks that interleaved stash
    mutation with a resize would restore storage but not the stash.)

    Downsizing only happens at low filled factors, so copying the raw
    arrays is cheap relative to how rarely the rollback path runs.
    """

    def __init__(self, table: "DyCuckooTable") -> None:
        self._storage = [
            (st.n_buckets, st.keys.copy(), st.values.copy(), st.size,
             st.migration.copy() if st.migration is not None else None)
            for st in table.subtables
        ]
        self._stash = table.stash.copy()

    def restore(self, table: "DyCuckooTable") -> None:
        for st, (n_buckets, keys, values, size,
                 migration) in zip(table.subtables, self._storage):
            st.n_buckets = n_buckets
            st.keys = keys
            st.values = values
            st.size = size
            st.migration = migration
        table.stash = self._stash.copy()
