"""Subtable resizing policy (Sections IV-B and IV-D).

The policy keeps the global filled factor ``theta`` inside the user range
``[alpha, beta]`` while only ever touching one subtable:

* **Upsize** — double the *smallest* subtable.  Because bucket counts are
  powers of two and bucket indices are low hash bits, an entry in bucket
  ``loc`` moves to ``loc`` or ``loc + old_n``: a conflict-free scatter
  needing no locks (Figure 4).
* **Downsize** — halve the *largest* subtable.  Buckets ``loc`` and
  ``loc + new_n`` merge into ``loc``; entries beyond bucket capacity are
  *residuals*, spilled into the other subtables with the downsizing
  subtable excluded from the eviction graph.

The invariant that no subtable exceeds twice the size of any other is a
consequence of always picking the extreme subtable and is asserted by
:meth:`repro.core.table.DyCuckooTable.validate`.

A failed residual spill (possible in adversarial corner cases) rolls the
downsize back from a snapshot, so downsizing is all-or-nothing.

When a :class:`~repro.faults.FaultPlan` is attached to the table, every
resize consults it at four lifecycle stages — ``trigger`` (before
anything happens), ``plan`` (target picked, nothing mutated), ``rehash``
(storage already rebuilt) and ``spill`` (residual relocation) — and an
injected abort raises :class:`~repro.errors.ResizeError` after rolling
any mutation back from a :class:`_TableSnapshot`.  Resizes are therefore
all-or-nothing even under injected failure at the worst possible moment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.grouping import rank_within_group
from repro.errors import ResizeError
from repro.sanitizer import NULL_SANITIZER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.table import DyCuckooTable

_SITE_UPSIZE = "repro/core/resize.py:ResizeController.upsize"
_SITE_DOWNSIZE = "repro/core/resize.py:ResizeController.downsize"


class ResizeController:
    """Owns the resize policy for one :class:`DyCuckooTable`."""

    def __init__(self, table: "DyCuckooTable") -> None:
        self._table = table

    # ------------------------------------------------------------------
    # Bound enforcement
    # ------------------------------------------------------------------

    def enforce_bounds(self) -> None:
        """Upsize/downsize until ``theta`` is inside ``[alpha, beta]``.

        Downsizing stops early when every subtable is at minimum size or
        when halving the largest would overshoot ``beta``.
        """
        table = self._table
        config = table.config
        tel = table.telemetry
        while table.total_slots and table.load_factor > config.beta:
            if tel.enabled:
                tel.tracer.instant("resize.trigger", "resize",
                                   reason="theta>beta",
                                   theta=table.load_factor)
            try:
                self.upsize()
            except ResizeError:
                # Injected abort: theta stays above beta for now; the
                # next mutating batch re-enters this loop and retries.
                break
        while table.load_factor < config.alpha:
            if tel.enabled:
                tel.tracer.instant("resize.trigger", "resize",
                                   reason="theta<alpha",
                                   theta=table.load_factor)
            target = self._pick_downsize_target()
            if target is None:
                break
            largest = table.subtables[target]
            projected_slots = table.total_slots - largest.total_slots // 2
            if projected_slots and len(table) / projected_slots > config.beta:
                break
            try:
                self.downsize()
            except ResizeError:
                break

    def upsize_for_insert_failure(self) -> None:
        """Upsize in response to a stalled insert.

        By default performs a single doubling, matching the paper.  With
        ``anticipatory_upsize`` (our future-work extension), doublings
        repeat until the projected filled factor reaches the midpoint of
        ``[alpha, beta]``, avoiding the repeated upsize cascades the
        paper observes in Figure 12.
        """
        table = self._table
        if table.telemetry.enabled:
            table.telemetry.tracer.instant("resize.trigger", "resize",
                                           reason="insert_stall",
                                           theta=table.load_factor)
        self.upsize()
        if not table.config.anticipatory_upsize:
            return
        midpoint = (table.config.alpha + table.config.beta) / 2.0
        while table.load_factor > midpoint:
            self.upsize()

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def _fire_abort(self, stage: str,
                    snapshot: "_TableSnapshot | None" = None) -> None:
        """Abort the running resize if the fault plan says so.

        With ``snapshot`` given, storage is restored before raising —
        the already-mutated stages (``rehash``) stay all-or-nothing.
        Callers gate on ``table.faults.enabled`` so the fault-free path
        pays one attribute check.
        """
        table = self._table
        fault = table.faults.fire(f"resize.abort.{stage}")
        if fault is None:
            return
        if snapshot is not None:
            snapshot.restore(table)
        table.stats.resize_aborts += 1
        if table.telemetry.enabled:
            table.telemetry.tracer.instant(
                "fault.inject", "fault", site=fault.site, index=fault.index,
                rolled_back=snapshot is not None)
            table.telemetry.metrics.counter("faults.injected").inc()
        raise ResizeError(
            f"injected resize abort at {stage} stage"
            + (" (rolled back)" if snapshot is not None else ""))

    # ------------------------------------------------------------------
    # Single-subtable resizes
    # ------------------------------------------------------------------

    def _pick_upsize_target(self) -> int:
        """Index of the smallest subtable (ties: lowest index)."""
        sizes = [st.n_buckets for st in self._table.subtables]
        return int(np.argmin(sizes))

    def _pick_downsize_target(self) -> int | None:
        """Index of the largest shrinkable subtable, or ``None``."""
        table = self._table
        best = None
        best_size = -1
        for idx, st in enumerate(table.subtables):
            if st.n_buckets <= table.config.min_buckets:
                continue
            if st.n_buckets > best_size:
                best = idx
                best_size = st.n_buckets
        return best

    def upsize(self) -> int:
        """Double the smallest subtable; returns its index.

        The rehash is conflict-free: every entry either stays in its
        bucket or moves to ``bucket + old_n`` according to one additional
        hash bit, so distinct source buckets can never collide.  Growth
        past ``max_total_slots`` raises :class:`CapacityError` — the
        backstop against workloads no amount of doubling can absorb.
        """
        table = self._table
        tracer = table.telemetry.tracer
        faulty = table.faults.enabled
        if faulty:
            self._fire_abort("trigger")
        with tracer.span("resize.upsize", "resize"):
            with tracer.span("resize.plan", "resize"):
                target = self._pick_upsize_target()
                st = table.subtables[target]
                ceiling = table.config.max_total_slots
                if ceiling and table.total_slots + st.total_slots > ceiling:
                    from repro.errors import CapacityError

                    raise CapacityError(
                        f"upsizing subtable {target} would exceed "
                        f"max_total_slots={ceiling} (currently "
                        f"{table.total_slots} slots, "
                        f"{len(table)} live entries)")
            if faulty:
                self._fire_abort("plan")
            snapshot = _TableSnapshot(table) if faulty else None
            # The paper's one-subtable guarantee: a resize locks exactly
            # its target subtable for the mutating stages.  The bracket
            # is try/finally so an injected rehash abort still releases
            # — a leak here wedges the subtable for every later resize.
            san = getattr(table, "sanitizer", NULL_SANITIZER)
            if san.enabled:
                san.on_subtable_lock(target, "upsize", site=_SITE_UPSIZE)
            try:
                with tracer.span("resize.rehash", "resize", subtable=target,
                                 old_buckets=st.n_buckets,
                                 new_buckets=st.n_buckets * 2):
                    codes, values, _old_buckets = st.export_entries()
                    new_n = st.n_buckets * 2
                    new_buckets = table.table_hashes[target].bucket(codes,
                                                                    new_n)
                    st.rebuild(new_n, codes, values, new_buckets)
                    if faulty:
                        self._fire_abort("rehash", snapshot=snapshot)
                table.stats.upsizes += 1
                table.stats.rehashed_entries += len(codes)
                # One coalesced read + write per touched bucket pair.
                table.stats.bucket_reads += st.n_buckets // 2
                table.stats.bucket_writes += st.n_buckets
            finally:
                if san.enabled:
                    san.on_subtable_unlock(target, site=_SITE_UPSIZE)
            if table.telemetry.enabled:
                table.telemetry.metrics.counter("resize.upsizes").inc()
                table.telemetry.metrics.counter(
                    "resize.rehashed_entries").inc(len(codes))
            if table.profiler.enabled:
                table.profiler.sample_fill("upsize", table)
            if table.recorder.enabled:
                table.recorder.record("resize.upsize", subtable=target,
                                      new_buckets=st.n_buckets,
                                      rehashed=len(codes))
        return target

    def downsize(self) -> int:
        """Halve the largest subtable; returns its index.

        Residual entries that do not fit the merged buckets are spilled
        into their alternate subtables (the downsized subtable stays
        excluded, per Section IV-D).  On spill failure the downsize is
        rolled back and :class:`ResizeError` propagates.
        """
        table = self._table
        tracer = table.telemetry.tracer
        faulty = table.faults.enabled
        if faulty:
            self._fire_abort("trigger")
        with tracer.span("resize.downsize", "resize"):
            with tracer.span("resize.plan", "resize"):
                target = self._pick_downsize_target()
                if target is None:
                    raise ResizeError(
                        "no subtable can be downsized (all at min_buckets)"
                    )
                st = table.subtables[target]
                snapshot = _TableSnapshot(table)
                # Rollback must be symmetric: everything below mutates
                # counters, so remember them all (not just `downsizes`)
                # before the first mutation.
                stats_before = table.stats.snapshot()
            if faulty:
                self._fire_abort("plan")
            # One-subtable guarantee (Section IV-D): only the downsizing
            # subtable is locked; the residual spill targets the *other*
            # subtables, which stay unlocked and service queries.  The
            # try/finally covers rehash, spill, and rollback so every
            # abort path releases.
            san = getattr(table, "sanitizer", NULL_SANITIZER)
            if san.enabled:
                san.on_subtable_lock(target, "downsize",
                                     site=_SITE_DOWNSIZE)
            try:
                with tracer.span("resize.rehash", "resize", subtable=target,
                                 old_buckets=st.n_buckets,
                                 new_buckets=st.n_buckets // 2):
                    codes, values, _old_buckets = st.export_entries()
                    new_n = st.n_buckets // 2
                    new_buckets = table.table_hashes[target].bucket(codes,
                                                                    new_n)
                    ranks, _unique, _inverse = rank_within_group(new_buckets)
                    keep = ranks < st.bucket_capacity
                    st.rebuild(new_n, codes[keep], values[keep],
                               new_buckets[keep])
                    if faulty:
                        self._fire_abort("rehash", snapshot=snapshot)
                table.stats.bucket_reads += new_n * 2
                table.stats.bucket_writes += new_n

                residual_codes = codes[~keep]
                residual_values = values[~keep]
                table.stats.downsizes += 1
                table.stats.rehashed_entries += len(codes)
                table.stats.residuals += len(residual_codes)
                with tracer.span("resize.spill", "resize", subtable=target,
                                 residuals=len(residual_codes)):
                    if len(residual_codes):
                        current = np.full(len(residual_codes), target,
                                          dtype=np.int64)
                        alternates = table.pair_hash.alternate_table(
                            residual_codes, current)
                        try:
                            if faulty:
                                self._fire_abort("spill")
                            table._insert_pending(residual_codes,
                                                  residual_values,
                                                  alternates,
                                                  excluded=target)
                        except ResizeError:
                            snapshot.restore(table)
                            self._restore_stats(stats_before)
                            tracer.instant("resize.rollback", "resize",
                                           subtable=target,
                                           residuals=len(residual_codes))
                            raise
            finally:
                if san.enabled:
                    san.on_subtable_unlock(target, site=_SITE_DOWNSIZE)
            # Telemetry counters are monotonic (no decrement exists), so
            # they are only published once the spill — the last stage
            # that can roll the downsize back — has succeeded.
            if table.telemetry.enabled:
                table.telemetry.metrics.counter("resize.downsizes").inc()
                table.telemetry.metrics.counter(
                    "resize.rehashed_entries").inc(len(codes))
                table.telemetry.metrics.counter(
                    "resize.residuals").inc(len(residual_codes))
            if table.profiler.enabled:
                table.profiler.sample_fill("downsize", table)
            if table.recorder.enabled:
                table.recorder.record("resize.downsize", subtable=target,
                                      new_buckets=st.n_buckets,
                                      rehashed=len(codes),
                                      residuals=len(residual_codes))
        return target

    def _restore_stats(self, stats_before: dict) -> None:
        """Roll every counter back to ``stats_before``.

        ``resize_aborts`` is exempt: an injected abort that triggered
        the rollback is a real event that must stay counted.
        """
        stats = self._table.stats
        aborts = stats.resize_aborts
        for name, value in stats_before.items():
            setattr(stats, name, value)
        stats.resize_aborts = max(aborts, stats.resize_aborts)


class _TableSnapshot:
    """Copy-on-demand snapshot used to roll back a failed downsize.

    Downsizing only happens at low filled factors, so copying the raw
    arrays is cheap relative to how rarely the rollback path runs.
    """

    def __init__(self, table: "DyCuckooTable") -> None:
        self._storage = [
            (st.n_buckets, st.keys.copy(), st.values.copy(), st.size)
            for st in table.subtables
        ]

    def restore(self, table: "DyCuckooTable") -> None:
        for st, (n_buckets, keys, values, size) in zip(table.subtables,
                                                       self._storage):
            st.n_buckets = n_buckets
            st.keys = keys
            st.values = values
            st.size = size
