"""Hash-function machinery for the two-layer cuckoo scheme.

The paper (Section IV-A) uses a simple universal family

    h_i(k) = ((a_i * k + b_i) mod p) mod |h_i|

with random ``a_i, b_i`` and a large prime ``p``.  We implement exactly
that family over the Mersenne prime ``p = 2**31 - 1`` with a per-function
64-bit pre-mix so that 64-bit keys are first folded into ``[0, p)`` in a
function-dependent way (two keys that collide under one function's fold
are unlikely to collide under another's).  All operations are vectorized
over ``numpy`` ``uint64`` arrays.

The *first layer* (Section V-A) hashes a key to one of ``C(d, 2)``
unordered subtable pairs; :class:`PairHash` enumerates the pairs
lexicographically and provides both directions of the mapping.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfigError

#: Mersenne prime used by the universal family.
MERSENNE_P = np.uint64((1 << 31) - 1)

_U64 = np.uint64
_MASK31 = np.uint64((1 << 31) - 1)


def fold_to_31_bits(codes: np.ndarray) -> np.ndarray:
    """Fold ``uint64`` codes into ``[0, 2**31 - 1)`` via Mersenne folding.

    Splits the 64-bit value into three 31-bit limbs and sums them; because
    ``2**31 === 1 (mod 2**31 - 1)`` this is a true reduction modulo the
    Mersenne prime.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    c0 = codes & _MASK31
    c1 = (codes >> _U64(31)) & _MASK31
    c2 = codes >> _U64(62)
    total = c0 + c1 + c2  # < 2**33, no overflow
    total = (total & _MASK31) + (total >> _U64(31))
    # One more conditional fold: total may still equal or exceed p.
    return np.where(total >= MERSENNE_P, total - MERSENNE_P, total)


class UniversalHash:
    """One member of the universal family ``(a*k + b mod p) mod range``.

    Parameters
    ----------
    a, b:
        Multiplier and offset, ``1 <= a < p`` and ``0 <= b < p``.
    premix:
        64-bit constant XOR-mixed into the key before folding, making the
        fold itself function-dependent.
    """

    __slots__ = ("a", "b", "premix")

    def __init__(self, a: int, b: int, premix: int) -> None:
        if not 1 <= a < int(MERSENNE_P):
            raise InvalidConfigError(f"hash multiplier a out of range: {a}")
        if not 0 <= b < int(MERSENNE_P):
            raise InvalidConfigError(f"hash offset b out of range: {b}")
        self.a = np.uint64(a)
        self.b = np.uint64(b)
        self.premix = np.uint64(premix)

    @classmethod
    def random(cls, rng: np.random.Generator) -> "UniversalHash":
        """Draw a random member of the family from ``rng``."""
        a = int(rng.integers(1, int(MERSENNE_P)))
        b = int(rng.integers(0, int(MERSENNE_P)))
        premix = int(rng.integers(0, 1 << 63))
        return cls(a, b, premix)

    def raw(self, codes: np.ndarray) -> np.ndarray:
        """Return hash values in ``[0, p)`` for an array of uint64 codes."""
        folded = fold_to_31_bits(np.asarray(codes, dtype=np.uint64) ^ self.premix)
        # a < 2**31 and folded < 2**31, so the product fits in uint64.
        mixed = self.a * folded + self.b
        return fold_to_31_bits(mixed)

    def bucket(self, codes: np.ndarray, n_buckets: int) -> np.ndarray:
        """Return bucket indices in ``[0, n_buckets)``.

        ``n_buckets`` must be a power of two so that doubling a subtable
        moves an entry from bucket ``loc`` to either ``loc`` or
        ``loc + n_buckets`` (the conflict-free upsize property of
        Section IV-D).  Masking low bits of the 31-bit hash provides that
        property because ``h mod 2n`` is ``h mod n`` plus (possibly)
        ``n``.
        """
        return self.bucket_from_raw(self.raw(codes), n_buckets)

    @staticmethod
    def bucket_from_raw(raw: np.ndarray, n_buckets: int) -> np.ndarray:
        """Reduce precomputed :meth:`raw` values to bucket indices.

        ``raw`` does not depend on the table geometry, so batch code can
        hash a key set once and re-reduce it cheaply after every resize
        (see :class:`repro.core.batch_ops.EncodedBatch`).
        """
        if n_buckets & (n_buckets - 1):
            raise InvalidConfigError(
                f"n_buckets must be a power of two, got {n_buckets}"
            )
        return (np.asarray(raw, dtype=np.uint64)
                & np.uint64(n_buckets - 1)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"UniversalHash(a={int(self.a)}, b={int(self.b)}, "
                f"premix=0x{int(self.premix):x})")


class PairHash:
    """First-layer hash: key -> one of the ``C(d, 2)`` subtable pairs.

    The pairs ``(i, j)`` with ``i < j`` are enumerated lexicographically:
    for ``d = 4`` the order is ``(0,1), (0,2), (0,3), (1,2), (1,3),
    (2,3)``.  A key's partition index is ``hash(key) mod C(d, 2)``.
    """

    def __init__(self, num_tables: int, rng: np.random.Generator) -> None:
        if num_tables < 2:
            raise InvalidConfigError(
                f"PairHash needs at least two tables, got {num_tables}"
            )
        self.num_tables = num_tables
        self.hash = UniversalHash.random(rng)
        pairs = [(i, j)
                 for i in range(num_tables)
                 for j in range(i + 1, num_tables)]
        #: ``(C(d,2), 2)`` lookup array mapping partition -> (i, j).
        self.pairs = np.asarray(pairs, dtype=np.int64)

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    def partition(self, codes: np.ndarray) -> np.ndarray:
        """Return the partition index in ``[0, C(d,2))`` for each code."""
        return (self.raw_mod(codes)).astype(np.int64)

    def raw_mod(self, codes: np.ndarray) -> np.ndarray:
        return self.hash.raw(codes) % np.uint64(self.num_pairs)

    def tables_for(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return arrays ``(first, second)`` of the two candidate subtables."""
        part = self.partition(codes)
        chosen = self.pairs[part]
        return chosen[:, 0], chosen[:, 1]

    def alternate_table(self, codes: np.ndarray, current: np.ndarray
                        ) -> np.ndarray:
        """Return, per code, the pair member that is *not* ``current``.

        ``current`` must hold, for every code, one of its two candidate
        subtables; this is the invariant that every stored entry sits in a
        subtable of its own pair.
        """
        first, second = self.tables_for(codes)
        current = np.asarray(current, dtype=np.int64)
        alt = np.where(current == first, second, first)
        valid = (current == first) | (current == second)
        if not bool(np.all(valid)):
            raise AssertionError(
                "alternate_table called with a table outside the key's pair; "
                "the two-layer invariant was violated"
            )
        return alt


def make_table_hashes(num_tables: int, rng: np.random.Generator
                      ) -> list[UniversalHash]:
    """Create ``d`` independent second-layer hash functions."""
    return [UniversalHash.random(rng) for _ in range(num_tables)]
