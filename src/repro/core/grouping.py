"""Vectorized group-by helpers shared by table implementations.

Batched hash-table kernels repeatedly need *rank within group*: when
several operations in one device round target the same bucket, the k-th
of them may claim the k-th free slot, and only the first may evict.  On a
GPU the warp vote produces this ordering; in the vectorized simulation we
recover it with a stable argsort.
"""

from __future__ import annotations

import numpy as np


def rank_within_group(group_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank each element among elements sharing its ``group_id``.

    Returns
    -------
    ranks:
        ``ranks[i]`` is the 0-based position of element ``i`` among all
        elements with the same ``group_ids[i]``, in stable input order.
    unique_groups:
        Sorted unique group ids.
    inverse:
        Index into ``unique_groups`` for each element.
    """
    group_ids = np.asarray(group_ids)
    unique_groups, inverse = np.unique(group_ids, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    inverse_sorted = inverse[order]
    # Start offset of every group's run inside the sorted layout.
    group_start = np.searchsorted(inverse_sorted, np.arange(len(unique_groups)))
    ranks_sorted = np.arange(len(group_ids)) - group_start[inverse_sorted]
    ranks = np.empty(len(group_ids), dtype=np.int64)
    ranks[order] = ranks_sorted
    return ranks, unique_groups, inverse


def group_counts(group_ids: np.ndarray, num_groups: int) -> np.ndarray:
    """Count occurrences of each id in ``[0, num_groups)``."""
    return np.bincount(np.asarray(group_ids, dtype=np.int64),
                       minlength=num_groups)


def first_occurrence_mask(keys: np.ndarray) -> np.ndarray:
    """Mask selecting the first occurrence of each distinct key, in order."""
    keys = np.asarray(keys)
    _, first_idx = np.unique(keys, return_index=True)
    mask = np.zeros(len(keys), dtype=bool)
    mask[first_idx] = True
    return mask


def last_occurrence_mask(keys: np.ndarray) -> np.ndarray:
    """Mask selecting the last occurrence of each distinct key.

    Batched upserts use *last-writer-wins* semantics for duplicate keys
    inside one batch, matching the deterministic replay of the paper's
    batched execution model.
    """
    keys = np.asarray(keys)
    reversed_keys = keys[::-1]
    _, first_idx_rev = np.unique(reversed_keys, return_index=True)
    mask = np.zeros(len(keys), dtype=bool)
    mask[len(keys) - 1 - first_idx_rev] = True
    return mask
