"""Bounded stash (error table) for eviction-chain overflow.

The reference CUDA DyCuckoo carries an ``error_table_t``: a small,
fixed-length side table that absorbs keys whose cuckoo eviction chain
exceeds ``MaxEvictNum`` (``cg_error_handle`` bumps ``error_pt`` with an
``atomicAdd`` and parks the key).  Our reproduction normally responds
to an exhausted chain by upsizing (Section IV-B), so in a fault-free
run the stash stays empty — but when an upsize itself cannot complete
(an injected resize abort, the scenario the fault layer creates), the
stash is the paper-faithful degradation path: inserts land here instead
of being lost, FIND/DELETE remain correct, and a bounded drain-back
after the next successful resize moves entries home.

The stash is intentionally tiny and scalar (a dict over internal key
codes): it only ever holds the tail of a failed batch, and correctness
under chaos matters more than vector throughput on this path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfigError
from repro.sanitizer import NULL_SANITIZER

_SITE_PUSH = "repro/core/stash.py:Stash.push"


class Stash:
    """A bounded key-code → value side table.

    All arrays are internal *codes* (user key + 1), matching subtable
    storage; the owning table translates at its API boundary.
    """

    #: Sanitizer observing occupancy (memcheck's stash-overflow check);
    #: a class attribute so attaching one needs no constructor change.
    #: :meth:`repro.core.table.DyCuckooTable.set_sanitizer` sets it on
    #: the instance.
    sanitizer = NULL_SANITIZER

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise InvalidConfigError(
                f"stash capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: dict[int, int] = {}
        #: Largest occupancy ever observed (survival reporting).
        self.high_water = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, code: int) -> bool:
        return int(code) in self._entries

    @property
    def free(self) -> int:
        """Remaining capacity."""
        return self.capacity - len(self._entries)

    def export_entries(self) -> tuple[np.ndarray, np.ndarray]:
        """All live ``(codes, values)`` in insertion order."""
        if not self._entries:
            return (np.zeros(0, dtype=np.uint64),
                    np.zeros(0, dtype=np.uint64))
        codes = np.fromiter(self._entries.keys(), dtype=np.uint64,
                            count=len(self._entries))
        values = np.fromiter(self._entries.values(), dtype=np.uint64,
                             count=len(self._entries))
        return codes, values

    def validate(self) -> None:
        """Assert the capacity bound (used by ``check_invariants``)."""
        if len(self._entries) > self.capacity:
            raise AssertionError(
                f"stash holds {len(self._entries)} entries, capacity "
                f"{self.capacity}")

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def push(self, codes: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Absorb as many ``(code, value)`` pairs as capacity allows.

        Returns the mask of absorbed entries; the caller decides what a
        ``False`` (overflow) means — for the table it is a hard
        :class:`~repro.errors.StashOverflowError`.  Codes already
        stashed update in place without consuming capacity.
        """
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        absorbed = np.zeros(len(codes), dtype=bool)
        for i, (code, value) in enumerate(zip(codes, values)):
            code = int(code)
            if code in self._entries or len(self._entries) < self.capacity:
                self._entries[code] = int(value)
                absorbed[i] = True
        self.high_water = max(self.high_water, len(self._entries))
        if self.sanitizer.enabled and absorbed.any():
            self.sanitizer.on_stash_write(len(self._entries),
                                          self.capacity, site=_SITE_PUSH)
        return absorbed

    def lookup(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized probe; returns ``(values, found)``."""
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.zeros(len(codes), dtype=np.uint64)
        found = np.zeros(len(codes), dtype=bool)
        if self._entries:
            for i, code in enumerate(codes):
                hit = self._entries.get(int(code))
                if hit is not None:
                    values[i] = hit
                    found[i] = True
        return values, found

    def update(self, codes: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Overwrite values of codes already stashed; return updated mask."""
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        updated = np.zeros(len(codes), dtype=bool)
        if self._entries:
            for i, (code, value) in enumerate(zip(codes, values)):
                if int(code) in self._entries:
                    self._entries[int(code)] = int(value)
                    updated[i] = True
        return updated

    def erase(self, codes: np.ndarray) -> np.ndarray:
        """Remove matching codes; return the erased mask."""
        codes = np.asarray(codes, dtype=np.uint64)
        erased = np.zeros(len(codes), dtype=bool)
        if self._entries:
            for i, code in enumerate(codes):
                if self._entries.pop(int(code), None) is not None:
                    erased[i] = True
        return erased

    def pop_all(self) -> tuple[np.ndarray, np.ndarray]:
        """Drain every entry (drain-back after a successful resize)."""
        codes, values = self.export_entries()
        self._entries.clear()
        return codes, values

    def copy(self) -> "Stash":
        """Independent deep copy (same capacity, same entries)."""
        clone = Stash(self.capacity)
        clone._entries = dict(self._entries)
        clone.high_water = self.high_water
        clone.sanitizer = self.sanitizer
        return clone

    def clear(self) -> None:
        """Drop every entry (capacity and high-water mark retained)."""
        self._entries.clear()


__all__ = ["Stash"]
