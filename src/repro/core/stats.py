"""Operation counters and filled-factor bookkeeping.

Every table implementation (DyCuckoo and the baselines) carries a
:class:`TableStats` instance.  The counters feed two consumers:

* the **GPU cost model** (:mod:`repro.gpusim`), which converts event
  counts — memory transactions, atomic conflicts, eviction rounds — into
  simulated cycles and therefore Mops figures, and
* the **experiment harness**, which reports filled factors, resize counts
  and memory footprints (Figures 12, 14, 15 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class TableStats:
    """Mutable event counters accumulated by a hash table.

    All counters are cumulative since construction (or the last
    :meth:`reset`).  ``snapshot``/``delta`` support measuring a single
    batch.
    """

    #: Keys inserted (including updates of existing keys).
    inserts: int = 0
    #: Inserts that updated an existing key in place.
    updates: int = 0
    #: Find operations issued.
    finds: int = 0
    #: Finds that located their key.
    find_hits: int = 0
    #: Delete operations issued.
    deletes: int = 0
    #: Deletes that removed a key.
    delete_hits: int = 0
    #: Cuckoo evictions (an occupant displaced to its alternate bucket).
    evictions: int = 0
    #: Device-wide synchronous insert rounds executed.
    eviction_rounds: int = 0
    #: Bucket lock acquisitions that failed (voter revotes / spins).
    lock_conflicts: int = 0
    #: Bucket lock acquisitions that succeeded.
    lock_acquisitions: int = 0
    #: Standalone atomicExch writes (lock-free designs: MegaKV, CUDPP).
    atomic_exchanges: int = 0
    #: Coalesced bucket reads (one 128-byte transaction each).
    bucket_reads: int = 0
    #: Coalesced bucket writes.
    bucket_writes: int = 0
    #: Non-coalesced single-slot accesses (chaining baselines).
    random_accesses: int = 0
    #: Dependent probes beyond the first of a lookup chain: the second
    #: cuckoo bucket on a miss, each extra CUDPP function probe, every
    #: chain hop in SlabHash.  These serialize behind the previous
    #: access and expose memory latency the warp scheduler cannot fully
    #: hide, so the cost model charges them a latency term on top of
    #: their bandwidth.
    chain_hops: int = 0
    #: Upsize operations performed.
    upsizes: int = 0
    #: Downsize operations performed.
    downsizes: int = 0
    #: Full-table rehashes (static baselines' resize strategy).
    full_rehashes: int = 0
    #: Entries moved by any resize or rehash.
    rehashed_entries: int = 0
    #: Downsize residuals spilled into other subtables.
    residuals: int = 0
    #: Inserts that failed permanently (static tables without resizing).
    insert_failures: int = 0
    #: Entries parked in the overflow stash after a failed upsize.
    stash_pushes: int = 0
    #: Stash entries drained back into the main table after a resize.
    stash_drained: int = 0
    #: FIND probes answered from the stash.
    stash_hits: int = 0
    #: Resizes aborted mid-lifecycle (fault injection) and rolled back.
    resize_aborts: int = 0
    #: Bounded migration slices executed for incremental-resize epochs.
    migration_slices: int = 0
    #: Bucket pairs moved to their post-resize view by migration slices.
    migrated_pairs: int = 0
    #: Automatic upsizes blocked by the ``max_total_slots`` ceiling
    #: (theta stays above beta until deletes make room).
    capacity_blocked: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, int]:
        """Return a copy of all counters as a plain dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Return counter increments since ``before`` (a prior snapshot)."""
        return {name: getattr(self, name) - before.get(name, 0)
                for name in (f.name for f in fields(self))}

    def merge(self, other: "TableStats") -> None:
        """Accumulate another stats object into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass(frozen=True)
class MemoryFootprint:
    """Device-memory accounting for one table at one instant.

    ``slot_bytes`` covers key and value storage; ``overhead_bytes`` covers
    auxiliary structures (locks, slab-allocator reservations, chain
    pointers).  ``live_entries`` counts keys currently stored, so
    ``filled_factor`` is live entries over total slots.
    """

    total_slots: int
    live_entries: int
    slot_bytes: int
    overhead_bytes: int = 0

    @property
    def filled_factor(self) -> float:
        """Live entries divided by allocated slots (0.0 for empty tables)."""
        if self.total_slots == 0:
            return 0.0
        return self.live_entries / self.total_slots

    @property
    def total_bytes(self) -> int:
        return self.slot_bytes + self.overhead_bytes

    def __str__(self) -> str:
        return (f"{self.live_entries}/{self.total_slots} slots "
                f"({self.filled_factor:.1%}), {self.total_bytes / 1e6:.2f} MB")
