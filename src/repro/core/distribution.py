"""KV distribution across subtables (Theorem 1 of the paper).

Theorem 1 shows that the amortized number of insert conflicts is
minimized when ``C(m_i, 2) / n_i`` is equal across all ``d`` subtables
(``m_i`` live entries, ``n_i`` slots).  The paper therefore routes each
fresh key to subtable ``i`` with probability proportional to
``n_i / C(m_i, 2)``.

Under the two-layer scheme a key may only be stored in one of the *two*
subtables of its first-layer pair, so the routing decision is a weighted
coin flip between those two, using the same Theorem-1 weights.

:class:`WeightedRouter` implements that policy; :class:`UniformRouter`
is the ablation baseline that flips a fair coin.
"""

from __future__ import annotations

import numpy as np


def theorem1_weights(sizes: np.ndarray, loads: np.ndarray) -> np.ndarray:
    """Per-subtable routing weights ``n_i / C(m_i, 2)``.

    ``sizes`` holds slot counts ``n_i`` and ``loads`` live entries
    ``m_i``.  Subtables with fewer than two entries get the weight they
    would have at ``m_i = 2`` (a single pairwise term), which keeps the
    weight finite while still strongly preferring empty subtables.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    loads = np.asarray(loads, dtype=np.float64)
    pairwise = np.maximum(loads * (loads - 1.0) / 2.0, 1.0)
    return sizes / pairwise


class _KeyDerivedCoin:
    """Deterministic per-key uniform draw in ``[0, 1)``.

    Routing uses a key-derived coin rather than an RNG stream so that
    duplicate keys inside one batch route to the *same* subtable and
    therefore contend (and resolve) at the same bucket — the behaviour
    parallel GPU threads exhibit, and a prerequisite for the no-duplicate
    invariant under concurrent upserts.
    """

    def __init__(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        from repro.core.hashing import MERSENNE_P, UniversalHash
        self._hash = UniversalHash.random(rng)
        self._scale = float(int(MERSENNE_P))

    def draw(self, codes: np.ndarray) -> np.ndarray:
        return self._hash.raw(codes).astype(np.float64) / self._scale


class WeightedRouter:
    """Route fresh keys between their pair per Theorem 1."""

    def __init__(self, seed: int) -> None:
        self._coin = _KeyDerivedCoin(seed)

    def choose(self, codes: np.ndarray, first: np.ndarray,
               second: np.ndarray, sizes: np.ndarray,
               loads: np.ndarray) -> np.ndarray:
        """Pick a target subtable for each key.

        Parameters
        ----------
        codes:
            Internal key codes (drive the deterministic coin).
        first, second:
            The two candidate subtables per key (from the pair layer).
        sizes, loads:
            Current ``n_i`` (slots) and ``m_i`` (live entries) per
            subtable, indexed by subtable id.
        """
        first = np.asarray(first, dtype=np.int64)
        second = np.asarray(second, dtype=np.int64)
        if len(first) == 0:
            return first
        weights = theorem1_weights(sizes, loads)
        w_first = weights[first]
        w_second = weights[second]
        p_first = w_first / (w_first + w_second)
        draw = self._coin.draw(codes)
        return np.where(draw < p_first, first, second)


class UniformRouter:
    """Ablation baseline: ignore Theorem 1, flip a fair coin."""

    def __init__(self, seed: int) -> None:
        self._coin = _KeyDerivedCoin(seed)

    def choose(self, codes: np.ndarray, first: np.ndarray,
               second: np.ndarray, sizes: np.ndarray,
               loads: np.ndarray) -> np.ndarray:
        first = np.asarray(first, dtype=np.int64)
        second = np.asarray(second, dtype=np.int64)
        if len(first) == 0:
            return first
        draw = self._coin.draw(codes)
        return np.where(draw < 0.5, first, second)


def make_router(policy: str, seed: int):
    """Construct the router named by ``policy`` ('weighted' or 'uniform')."""
    if policy == "weighted":
        return WeightedRouter(seed)
    if policy == "uniform":
        return UniformRouter(seed)
    raise ValueError(f"unknown routing policy: {policy!r}")
