"""The paper's analytical results as executable, testable formulas.

Three pieces of theory underpin DyCuckoo's design; this module encodes
them so tests and benchmarks can check the implementation *against the
math*, not just against itself:

* **Theorem 1** — expected insert conflicts for a load split
  ``(m_1..m_d)`` over sizes ``(n_1..n_d)`` is ``sum C(m_i, 2) / n_i``.
  :func:`expected_conflicts` evaluates the objective;
  :func:`optimal_distribution` solves the constrained minimization
  exactly (KKT conditions of the convex program).

  *Reproduction note*: the paper states the minimum occurs when the
  terms ``C(m_i, 2) / n_i`` are all equal (its Jensen-inequality step
  bounds a transform of the objective, for which equal terms is the
  equality case).  The true minimizer of the sum itself equalizes the
  *marginal* conflict rates ``(2 m_i - 1) / (2 n_i)``, i.e. loads
  essentially proportional to sizes (near-equal filled factors).  For
  the balanced configurations DyCuckoo maintains, the two conditions
  coincide to first order, which is why the paper's routing heuristic
  works; tests verify the implementation tracks the *true* optimum.
* **Section IV-B's fill bound** — one upsize lowers the filled factor
  to at least ``beta * d / (d + 1)``, so a feasible lower bound must
  satisfy ``alpha < d / (d + 1)``.  :func:`post_upsize_fill` and
  :func:`max_feasible_alpha` encode both.
* **Section IV-D's amortized resize cost** — a resize touches at most
  ``m / d`` entries.  :func:`resize_work_bound` gives the bound that
  tests compare against measured ``rehashed_entries``.

The module also hosts :func:`check_invariants`, the single reusable
structural checker behind :meth:`repro.core.table.DyCuckooTable.validate`
and the property/fuzz test suites.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfigError


def pairwise(m: np.ndarray) -> np.ndarray:
    """``C(m, 2)`` elementwise."""
    m = np.asarray(m, dtype=np.float64)
    return m * (m - 1.0) / 2.0


def expected_conflicts(loads: np.ndarray, sizes: np.ndarray) -> float:
    """Theorem 1's objective: ``sum C(m_i, 2) / n_i``."""
    loads = np.asarray(loads, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    if loads.shape != sizes.shape:
        raise InvalidConfigError("loads and sizes must align")
    if bool((sizes <= 0).any()):
        raise InvalidConfigError("sizes must be positive")
    return float((pairwise(loads) / sizes).sum())


def optimal_distribution(total: float, sizes: np.ndarray,
                         iterations: int = 200) -> np.ndarray:
    """Solve Theorem 1's minimization for the load split ``m_i``.

    Minimizes ``sum C(m_i, 2) / n_i`` subject to ``sum m_i = total`` and
    ``m_i >= 0``.  The stationarity condition equalizes the derivatives
    ``(2 m_i - 1) / (2 n_i)``, i.e. ``m_i = lam * n_i + 1/2`` with the
    multiplier ``lam`` pinned by the budget — asymptotically the
    proportional split (equal filled factors), see the module docstring
    for how this relates to the paper's statement of Theorem 1.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    if total < 0:
        raise InvalidConfigError("total must be non-negative")
    if bool((sizes <= 0).any()):
        raise InvalidConfigError("sizes must be positive")
    d = len(sizes)
    # m_i = lam * n_i + 1/2 with sum m_i = total:
    lam = (total - d / 2.0) / sizes.sum()
    m = lam * sizes + 0.5
    # Project negatives to zero and re-solve over the support.
    for _ in range(iterations):
        negative = m < 0
        if not negative.any():
            break
        m[negative] = 0.0
        support = ~negative
        lam = (total - support.sum() / 2.0) / sizes[support].sum()
        m[support] = lam * sizes[support] + 0.5
    return np.maximum(m, 0.0)


def conflict_optimality_gap(loads: np.ndarray, sizes: np.ndarray) -> float:
    """Relative excess of a split's conflicts over the optimum.

    0.0 means the split achieves Theorem 1's minimum; 0.1 means 10%
    more expected conflicts than optimal.  Used by tests to verify the
    weighted router keeps the structure near the optimum.
    """
    loads = np.asarray(loads, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    actual = expected_conflicts(loads, sizes)
    best = expected_conflicts(optimal_distribution(loads.sum(), sizes),
                              sizes)
    if best <= 0:
        return 0.0
    return actual / best - 1.0


def post_upsize_fill(theta: float, num_doubled: int, num_tables: int
                     ) -> float:
    """Filled factor after one upsize (Section IV-B's derivation).

    With ``d'`` subtables already doubled (size ``2n``) and ``d - d'``
    at size ``n``, doubling one more changes total capacity from
    ``(d + d') n`` to ``(d + d' + 1) n``:

        theta' = theta * (d + d') / (d + d' + 1)
    """
    if not 0 <= num_doubled < num_tables:
        raise InvalidConfigError(
            f"num_doubled must be in [0, num_tables), got {num_doubled}")
    weight = num_tables + num_doubled
    return theta * weight / (weight + 1)


def max_feasible_alpha(num_tables: int) -> float:
    """The paper's bound: ``alpha`` must stay below ``d / (d + 1)``.

    One upsize at ``theta = beta`` lands at least at
    ``beta * d / (d + 1)``; a lower bound at or above ``d / (d + 1)``
    could exceed that landing point and force immediate re-shrinking.
    """
    if num_tables < 1:
        raise InvalidConfigError("num_tables must be >= 1")
    return num_tables / (num_tables + 1.0)


def resize_work_bound(total_entries: int, num_tables: int) -> float:
    """Entries one resize may touch: at most ``m / d`` (Section IV-D).

    The resized subtable is the smallest (upsize) or the largest at most
    twice any other (downsize), so its share of ``m`` is bounded by
    roughly ``m / d`` (upsize) and ``2m / (d + 1)`` (downsize); we
    return the looser downsize bound so one function covers both.
    """
    if num_tables < 1:
        raise InvalidConfigError("num_tables must be >= 1")
    return 2.0 * total_entries / (num_tables + 1.0)


def check_invariants(table, check_fill: bool = False) -> None:
    """Check every structural invariant of a DyCuckoo table.

    Raises ``AssertionError`` naming the first violated invariant.
    Checked unconditionally:

    * per-subtable storage consistency (``Subtable.validate``),
    * every stored key lives in a subtable of its layer-1 pair and in
      its hashed bucket,
    * no key is stored twice (across subtables, or in both a subtable
      and the overflow stash),
    * the 2x size discipline between subtables (Section IV-B),
    * the stash occupancy bound,
    * ``len(table)`` equals the sum of subtable loads plus the stash.

    With ``check_fill`` the global filled factor must additionally sit
    inside ``[alpha, beta]`` unless a legitimate stop condition of
    ``enforce_bounds`` explains the excursion: the ``max_total_slots``
    ceiling blocking an upsize; every subtable at ``min_buckets`` or a
    halving that would overshoot ``beta`` blocking a downsize; or a
    fault-injection plan attached / stash occupied (injected resize
    aborts legitimately strand ``theta`` out of bounds until a later
    batch retries).

    When the table has an enabled flight recorder attached, a failing
    check trips it (dumping a post-mortem bundle) before the
    ``AssertionError`` propagates.
    """
    try:
        _check_invariants(table, check_fill=check_fill)
    except AssertionError as exc:
        recorder = getattr(table, "recorder", None)
        if recorder is not None and recorder.enabled:
            recorder.trip("invariant_failure", message=str(exc))
        raise


def _check_invariants(table, check_fill: bool) -> None:
    all_codes = []
    for idx, st in enumerate(table.subtables):
        st.validate()
        codes, _values, buckets = st.export_entries()
        all_codes.append(codes)
        if len(codes):
            first, second = table.pair_hash.tables_for(codes)
            in_pair = (first == idx) | (second == idx)
            if not bool(np.all(in_pair)):
                raise AssertionError(
                    f"subtable {idx} stores a key outside its pair"
                )
            if st.migration is not None:
                # Mid-epoch the storage is dual-view: each entry sits in
                # the bucket its pair's migration flag currently selects.
                raw = table.table_hashes[idx].raw(codes)
                expected = st.migration.effective_buckets(raw)
            else:
                expected = table.table_hashes[idx].bucket(codes,
                                                          st.n_buckets)
            if not bool(np.all(expected == buckets)):
                raise AssertionError(
                    f"subtable {idx} has an entry in the wrong bucket"
                )
    merged = (np.concatenate(all_codes) if all_codes
              else np.zeros(0, dtype=np.uint64))
    if len(merged) != len(np.unique(merged)):
        raise AssertionError("duplicate key stored across subtables")
    sizes = [st.n_buckets for st in table.subtables]
    if max(sizes) > 2 * min(sizes):
        raise AssertionError(
            f"subtable size discipline violated: {sizes}"
        )
    table.stash.validate()
    if len(table.stash):
        stash_codes, _stash_values = table.stash.export_entries()
        if np.intersect1d(merged, stash_codes).size:
            raise AssertionError(
                "key stored in both a subtable and the stash"
            )
    expected_len = sum(st.size for st in table.subtables) + len(table.stash)
    if len(table) != expected_len:
        raise AssertionError(
            f"len(table)={len(table)} disagrees with subtable loads "
            f"plus stash ({expected_len})"
        )
    if check_fill:
        _check_fill_bounds(table)


def _check_fill_bounds(table) -> None:
    """Fill-bound half of :func:`check_invariants` (see its docstring)."""
    config = table.config
    if not config.auto_resize or table.total_slots == 0:
        return
    if getattr(table.faults, "enabled", False) or len(table.stash):
        return
    if any(st.migration is not None for st in table.subtables):
        # Mid-epoch the physical layout is transitional (the
        # residual-free downsize analysis below reads physical
        # exports); bounds are re-checked once the epoch drains.
        return
    theta = table.load_factor
    if theta > config.beta:
        smallest = min(st.total_slots for st in table.subtables)
        ceiling = config.max_total_slots
        if not (ceiling and table.total_slots + smallest > ceiling):
            raise AssertionError(
                f"filled factor {theta:.3f} above beta={config.beta} "
                "with nothing blocking an upsize"
            )
    if theta < config.alpha:
        target = None
        best_size = -1
        for idx, st in enumerate(table.subtables):
            if st.n_buckets <= config.min_buckets:
                continue
            if st.n_buckets > best_size:
                target = idx
                best_size = st.n_buckets
        if target is None:
            return  # every subtable at min_buckets: legal stop
        st = table.subtables[target]
        projected = table.total_slots - st.total_slots // 2
        if projected and len(table) / projected > config.beta:
            return  # halving would overshoot beta: legal stop
        # A downsize whose merge produces residuals can legitimately
        # fail (spill stall); only a provably residual-free downsize
        # makes the excursion a bug.
        codes, _values, _buckets = st.export_entries()
        new_n = st.n_buckets // 2
        if len(codes):
            new_buckets = table.table_hashes[target].bucket(codes, new_n)
            counts = np.bincount(new_buckets.astype(np.int64),
                                 minlength=new_n)
            residuals = int(np.maximum(counts - st.bucket_capacity, 0).sum())
        else:
            residuals = 0
        if residuals == 0:
            raise AssertionError(
                f"filled factor {theta:.3f} below alpha={config.alpha} "
                "with a residual-free downsize available"
            )
