"""Memory-budget eviction policy: cap a table's device footprint.

The paper's introduction motivates dynamic tables with coexisting
structures: several indexes share one GPU, so a hash table that hogs
device memory forces PCIe shuffling.  ``examples/memory_budget.py``
demonstrates the *measurement* side of that story; this module is the
*policy* side, promoted into core so scenario soaks (and users) can run
a table under a hard byte budget.

:class:`MemoryBudget` watches ``table.memory_footprint().total_bytes``
and, when the budget is exceeded, deletes seeded-random victim batches
until the footprint fits again.  Deleting entries lowers the filled
factor below ``alpha``, so the table's own ``enforce_bounds`` downsizes
a subtable and actually returns the memory — the policy only chooses
victims; reclamation is the table's normal resize path.  Under a budget
the table degrades to a *cache*: evicted keys simply miss afterwards.

Victim selection is a seeded uniform sample over the live key set in
canonical (sorted) order, so a run is bit-reproducible for a given
seed regardless of insertion order.  No wall-clock, no global RNG —
the determinism lint (``python -m repro sanitize --lint``) holds for
this module like the rest of ``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidConfigError


@dataclass(frozen=True)
class EvictionReport:
    """What one :meth:`MemoryBudget.enforce` call did."""

    bytes_before: int
    bytes_after: int
    evicted: int
    rounds: int
    within_budget: bool
    #: The exact victim keys, so differential harnesses can mirror the
    #: eviction into their model.
    evicted_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint64))


class MemoryBudget:
    """Hold a table's memory footprint under ``budget_bytes``.

    Parameters
    ----------
    budget_bytes:
        Hard ceiling on ``memory_footprint().total_bytes``.
    evict_fraction:
        Fraction of live entries deleted per round while over budget.
        Rounds repeat (up to ``max_rounds``) because freeing slots is
        indirect: deletions must drag the filled factor under ``alpha``
        before a downsize returns memory.
    max_rounds:
        Safety bound per enforcement; a budget below the table's
        minimum geometry (``min_buckets`` floors) can never be met.
    seed:
        Victim-selection seed; same seed + same table state = same
        victims.
    """

    def __init__(self, budget_bytes: int, *, evict_fraction: float = 0.25,
                 max_rounds: int = 8, seed: int = 0) -> None:
        if budget_bytes <= 0:
            raise InvalidConfigError(
                f"budget_bytes must be > 0, got {budget_bytes}")
        if not 0.0 < evict_fraction <= 1.0:
            raise InvalidConfigError(
                f"evict_fraction must be in (0, 1], got {evict_fraction}")
        if max_rounds < 1:
            raise InvalidConfigError(
                f"max_rounds must be >= 1, got {max_rounds}")
        self.budget_bytes = int(budget_bytes)
        self.evict_fraction = float(evict_fraction)
        self.max_rounds = int(max_rounds)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        #: Cumulative counters across enforcements (scorecard fodder).
        self.enforcements = 0
        self.total_evicted = 0
        self.total_rounds = 0
        self.peak_bytes = 0
        self.violations = 0  # enforcements that ended still over budget

    def over_budget(self, table) -> bool:
        return table.memory_footprint().total_bytes > self.budget_bytes

    def enforce(self, table) -> EvictionReport:
        """Evict until ``table`` fits the budget (or give up).

        Works on anything with ``memory_footprint()``, ``keys()``,
        ``delete()`` and ``__len__`` — both :class:`DyCuckooTable` and
        :class:`~repro.shard.ShardedDyCuckoo`.
        """
        bytes_before = int(table.memory_footprint().total_bytes)
        self.enforcements += 1
        self.peak_bytes = max(self.peak_bytes, bytes_before)
        evicted_parts: list[np.ndarray] = []
        rounds = 0
        current = bytes_before
        while (current > self.budget_bytes and len(table) > 0
               and rounds < self.max_rounds):
            live = np.sort(table.keys())
            count = max(1, int(len(live) * self.evict_fraction))
            count = min(count, len(live))
            picks = self._rng.choice(len(live), size=count, replace=False)
            victims = live[np.sort(picks)]
            table.delete(victims)
            evicted_parts.append(victims)
            rounds += 1
            current = int(table.memory_footprint().total_bytes)
        evicted_keys = (np.concatenate(evicted_parts) if evicted_parts
                        else np.empty(0, dtype=np.uint64))
        within = current <= self.budget_bytes
        self.total_evicted += int(evicted_keys.size)
        self.total_rounds += rounds
        if not within:
            self.violations += 1
        return EvictionReport(bytes_before=bytes_before,
                              bytes_after=current,
                              evicted=int(evicted_keys.size),
                              rounds=rounds,
                              within_budget=within,
                              evicted_keys=evicted_keys)

    def summary(self) -> dict:
        """Cumulative policy counters as a plain-JSON dict."""
        return {
            "budget_bytes": self.budget_bytes,
            "enforcements": self.enforcements,
            "evictions": self.total_evicted,
            "rounds": self.total_rounds,
            "peak_bytes": self.peak_bytes,
            "violations": self.violations,
        }
