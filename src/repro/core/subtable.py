"""Bucketized subtable storage (Figure 2 of the paper).

A subtable is a dense array of buckets.  Each bucket holds
``bucket_capacity`` key slots stored consecutively (one 128-byte cache
line for 32 four-byte keys) plus a parallel value array, so a warp reads
a whole bucket in a single coalesced transaction.  Keys and values live
in *separate* arrays ("structure of arrays"), which lets find/delete
avoid touching values entirely — exactly the layout argument of
Section IV-A.

The empty-slot sentinel is key code ``0``; the owning table encodes user
keys as ``key + 1`` so the full ``uint64`` user domain minus one value is
supported.

All methods are vectorized over arrays of bucket indices.  The subtable
knows nothing about hashing or the two-layer scheme: it only moves codes
in and out of slots.  Device-cost accounting (transactions, locks) is the
caller's job.
"""

from __future__ import annotations

import numpy as np

from repro.core.grouping import rank_within_group
from repro.errors import InvalidConfigError

#: Key code marking an empty slot.
EMPTY = np.uint64(0)


class MigrationState:
    """Dual-view bookkeeping for one in-flight incremental resize epoch.

    While a subtable is mid-migration its *logical* geometry
    (``Subtable.n_buckets``) is already the post-resize one, but entries
    of not-yet-migrated bucket pairs still sit at their pre-resize
    bucket.  Because bucket indices are low hash bits, the pre- and
    post-resize buckets of a key differ only in one masked bit, and both
    are addressed by the key's *pair index* ``raw % min(old_n, new_n)``:

    * upsize ``old_n -> 2*old_n``: pair ``s`` covers buckets ``s`` (old
      view) and ``{s, s + old_n}`` (new view);
    * downsize ``old_n -> old_n/2``: pair ``s`` covers buckets
      ``{s, s + new_n}`` (old view) and ``s`` (new view).

    ``migrated[s]`` says which view pair ``s`` currently lives in, so
    :meth:`effective_buckets` resolves any key to the single bucket it
    can occupy — the epoch check that preserves the paper's two-bucket
    FIND/DELETE guarantee at the cost of one extra masked index
    computation.
    """

    __slots__ = ("kind", "old_n", "new_n", "migrated", "pending")

    def __init__(self, kind: str, old_n: int, new_n: int) -> None:
        if kind not in ("upsize", "downsize"):
            raise InvalidConfigError(f"unknown migration kind {kind!r}")
        self.kind = kind
        self.old_n = old_n
        self.new_n = new_n
        pairs = min(old_n, new_n)
        #: Which bucket pairs have moved to the new view.
        self.migrated = np.zeros(pairs, dtype=bool)
        #: Count of pairs still in the old view.
        self.pending = pairs

    @property
    def num_pairs(self) -> int:
        return len(self.migrated)

    @property
    def complete(self) -> bool:
        return self.pending == 0

    def pair_of(self, buckets: np.ndarray) -> np.ndarray:
        """Pair index for bucket indices of *either* view."""
        return (np.asarray(buckets, dtype=np.int64)
                & np.int64(self.num_pairs - 1))

    def effective_buckets(self, raw: np.ndarray) -> np.ndarray:
        """Resolve raw hashes to each key's current (per-pair) bucket."""
        raw = np.asarray(raw, dtype=np.uint64)
        pair = (raw & np.uint64(self.num_pairs - 1)).astype(np.int64)
        mask = np.where(self.migrated[pair],
                        np.uint64(self.new_n - 1), np.uint64(self.old_n - 1))
        return (raw & mask).astype(np.int64)

    def copy(self) -> "MigrationState":
        clone = MigrationState(self.kind, self.old_n, self.new_n)
        clone.migrated = self.migrated.copy()
        clone.pending = self.pending
        return clone


class Subtable:
    """One cuckoo subtable: ``n_buckets`` buckets of fixed capacity."""

    def __init__(self, n_buckets: int, bucket_capacity: int) -> None:
        if n_buckets <= 0 or n_buckets & (n_buckets - 1):
            raise InvalidConfigError(
                f"n_buckets must be a positive power of two, got {n_buckets}"
            )
        if bucket_capacity < 1:
            raise InvalidConfigError(
                f"bucket_capacity must be >= 1, got {bucket_capacity}"
            )
        self.n_buckets = n_buckets
        self.bucket_capacity = bucket_capacity
        self.keys = np.zeros((n_buckets, bucket_capacity), dtype=np.uint64)
        self.values = np.zeros((n_buckets, bucket_capacity), dtype=np.uint64)
        #: Number of live (non-empty) slots.
        self.size = 0
        #: Open incremental-resize epoch, or ``None`` (the common case).
        #: While set, ``n_buckets`` is the *logical* (post-resize)
        #: geometry; the physical arrays hold ``max(old_n, new_n)`` rows.
        self.migration: MigrationState | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def total_slots(self) -> int:
        """Total key slots allocated in this subtable."""
        return self.n_buckets * self.bucket_capacity

    @property
    def filled_factor(self) -> float:
        """Live entries over allocated slots."""
        return self.size / self.total_slots if self.total_slots else 0.0

    @property
    def slot_bytes(self) -> int:
        """Bytes of key+value storage (8 bytes each)."""
        return self.keys.nbytes + self.values.nbytes

    def export_entries(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(codes, values, bucket_indices)`` of all live entries."""
        occupied = self.keys != EMPTY
        bucket_idx, _slot_idx = np.nonzero(occupied)
        return (self.keys[occupied].copy(),
                self.values[occupied].copy(),
                bucket_idx.astype(np.int64))

    def validate(self) -> None:
        """Assert internal consistency (used by tests)."""
        live = int(np.count_nonzero(self.keys != EMPTY))
        if live != self.size:
            raise AssertionError(
                f"size counter {self.size} != live slots {live}"
            )

    # ------------------------------------------------------------------
    # Read-only operations
    # ------------------------------------------------------------------

    def lookup(self, buckets: np.ndarray, codes: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Probe ``codes`` in their ``buckets``.

        Returns ``(found, values)``; ``values`` is meaningful only where
        ``found`` is True.
        """
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        if len(buckets) == 0:
            return (np.zeros(0, dtype=bool), np.zeros(0, dtype=np.uint64))
        bucket_keys = self.keys[buckets]                      # (n, cap)
        match = bucket_keys == codes[:, None]
        found = match.any(axis=1)
        slots = match.argmax(axis=1)
        values = self.values[buckets, slots]
        return found, values

    def contains(self, buckets: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Membership-only variant of :meth:`lookup` (no value gather)."""
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        if len(buckets) == 0:
            return np.zeros(0, dtype=bool)
        return (self.keys[buckets] == codes[:, None]).any(axis=1)

    # ------------------------------------------------------------------
    # Mutating operations
    # ------------------------------------------------------------------

    def update_existing(self, buckets: np.ndarray, codes: np.ndarray,
                        values: np.ndarray) -> np.ndarray:
        """Overwrite values of codes already present; return updated mask."""
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        if len(buckets) == 0:
            return np.zeros(0, dtype=bool)
        bucket_keys = self.keys[buckets]
        match = bucket_keys == codes[:, None]
        found = match.any(axis=1)
        slots = match.argmax(axis=1)
        self.values[buckets[found], slots[found]] = values[found]
        return found

    def erase(self, buckets: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Remove matching codes from their buckets; return erased mask.

        Duplicate ``(bucket, code)`` rows in one call all report
        ``True`` but clear (and count) the underlying slot exactly once,
        so ``size`` stays consistent for callers that do not pre-dedupe
        the way :meth:`DyCuckooTable._delete_batch` does.
        """
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        if len(buckets) == 0:
            return np.zeros(0, dtype=bool)
        bucket_keys = self.keys[buckets]
        match = bucket_keys == codes[:, None]
        found = match.any(axis=1)
        slots = match.argmax(axis=1)
        # Dedupe physical slots: the same (bucket, slot) may be matched
        # by several input rows, but it holds only one live entry.
        flat_slots = buckets[found] * self.bucket_capacity + slots[found]
        self.keys[buckets[found], slots[found]] = EMPTY
        self.size -= int(np.unique(flat_slots).size)
        return found

    def place_round(self, buckets: np.ndarray, codes: np.ndarray,
                    values: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One synchronous placement round into this subtable.

        Implements the slot-claiming step of a device round: operations
        targeting the same bucket are ranked (the warp-vote order); the
        k-th claims the k-th free slot.  Codes must be distinct.

        Returns
        -------
        updated:
            Mask of codes that already existed and had their value
            overwritten.
        placed:
            Mask of codes written into a free slot.
        full_leader:
            Mask of codes that found their bucket completely full *and*
            rank first for it — these are the eviction candidates.  Codes
            in none of the three masks must retry next round (their
            bucket was full, or became full, and another op leads it).
        """
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        n = len(buckets)
        if n == 0:
            zeros = np.zeros(0, dtype=bool)
            return zeros, zeros.copy(), zeros.copy()

        updated = self.update_existing(buckets, codes, values)
        placed = np.zeros(n, dtype=bool)
        full_leader = np.zeros(n, dtype=bool)

        rest = np.flatnonzero(~updated)
        if len(rest) == 0:
            return updated, placed, full_leader

        rest_buckets = buckets[rest]
        ranks, unique_buckets, inverse = rank_within_group(rest_buckets)
        free_mask = self.keys[unique_buckets] == EMPTY        # (u, cap)
        free_counts = free_mask.sum(axis=1)

        can_place = ranks < free_counts[inverse]
        if np.any(can_place):
            items = rest[can_place]
            item_rows = free_mask[inverse[can_place]]          # (m, cap)
            # The rank-th free slot: position where the running count of
            # free slots first reaches rank + 1.
            running = item_rows.cumsum(axis=1)
            target = (ranks[can_place] + 1)[:, None]
            slots = (running == target).argmax(axis=1)
            np_buckets = buckets[items]
            self.keys[np_buckets, slots] = codes[items]
            self.values[np_buckets, slots] = values[items]
            placed[items] = True
            self.size += len(items)

        bucket_full = free_counts[inverse] == 0
        leader = bucket_full & (ranks == 0)
        full_leader[rest[leader]] = True
        return updated, placed, full_leader

    def swap_slot(self, buckets: np.ndarray, slots: np.ndarray,
                  codes: np.ndarray, values: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Replace occupants at ``(bucket, slot)`` with new entries.

        Used for cuckoo evictions: the displaced ``(code, value)`` pairs
        are returned so the caller can reinsert them elsewhere.  Net live
        count is unchanged.
        """
        buckets = np.asarray(buckets, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        old_codes = self.keys[buckets, slots].copy()
        old_values = self.values[buckets, slots].copy()
        self.keys[buckets, slots] = np.asarray(codes, dtype=np.uint64)
        self.values[buckets, slots] = np.asarray(values, dtype=np.uint64)
        return old_codes, old_values

    def bucket_keys(self, buckets: np.ndarray) -> np.ndarray:
        """Gather the ``(n, capacity)`` key matrix for ``buckets``."""
        return self.keys[np.asarray(buckets, dtype=np.int64)]

    # ------------------------------------------------------------------
    # Incremental-resize epochs (dual-view storage)
    # ------------------------------------------------------------------

    def begin_upsize_epoch(self) -> MigrationState:
        """Open a doubling epoch: new geometry now, entries migrate later.

        The physical arrays grow to ``2 * old_n`` rows with the existing
        buckets in the lower half, so every old-view bucket keeps its
        index and the upper half starts empty.  (On device this models
        allocating the upper half next to the existing buckets — no
        entry moves yet, which is the whole point.)
        """
        if self.migration is not None:
            raise InvalidConfigError("subtable already has an open epoch")
        old_n = self.n_buckets
        new_n = old_n * 2
        grown_keys = np.zeros((new_n, self.bucket_capacity), dtype=np.uint64)
        grown_values = np.zeros((new_n, self.bucket_capacity),
                                dtype=np.uint64)
        grown_keys[:old_n] = self.keys
        grown_values[:old_n] = self.values
        self.keys = grown_keys
        self.values = grown_values
        self.n_buckets = new_n
        self.migration = MigrationState("upsize", old_n, new_n)
        return self.migration

    def begin_downsize_epoch(self) -> MigrationState:
        """Open a halving epoch: logical geometry halves, storage stays.

        The physical arrays keep their ``old_n`` rows until every upper
        bucket has merged down; :meth:`finish_migration` releases them.
        """
        if self.migration is not None:
            raise InvalidConfigError("subtable already has an open epoch")
        old_n = self.n_buckets
        new_n = old_n // 2
        if new_n < 1:
            raise InvalidConfigError("cannot downsize a one-bucket subtable")
        self.n_buckets = new_n
        self.migration = MigrationState("downsize", old_n, new_n)
        return self.migration

    def finish_migration(self) -> None:
        """Close a completed epoch, releasing any surplus physical rows."""
        mig = self.migration
        if mig is None:
            return
        if mig.pending:
            raise InvalidConfigError(
                f"epoch still has {mig.pending} unmigrated pairs")
        if mig.kind == "downsize":
            self.keys = self.keys[:mig.new_n].copy()
            self.values = self.values[:mig.new_n].copy()
        self.migration = None

    # ------------------------------------------------------------------
    # Bulk rebuild (resize support)
    # ------------------------------------------------------------------

    def rebuild(self, n_buckets: int, codes: np.ndarray, values: np.ndarray,
                buckets: np.ndarray) -> None:
        """Replace all storage, placing each entry in its assigned bucket.

        Entries assigned to one bucket are packed into slots
        ``0..count-1``.  The caller guarantees no bucket receives more
        than ``bucket_capacity`` entries.
        """
        if n_buckets <= 0 or n_buckets & (n_buckets - 1):
            raise InvalidConfigError(
                f"n_buckets must be a positive power of two, got {n_buckets}"
            )
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        buckets = np.asarray(buckets, dtype=np.int64)
        ranks, _, _ = rank_within_group(buckets)
        if len(ranks) and int(ranks.max()) >= self.bucket_capacity:
            raise InvalidConfigError(
                "rebuild received more entries than capacity for a bucket"
            )
        self.n_buckets = n_buckets
        self.keys = np.zeros((n_buckets, self.bucket_capacity), dtype=np.uint64)
        self.values = np.zeros((n_buckets, self.bucket_capacity), dtype=np.uint64)
        self.keys[buckets, ranks] = codes
        self.values[buckets, ranks] = values
        self.size = len(codes)
        self.migration = None
