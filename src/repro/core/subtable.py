"""Bucketized subtable storage (Figure 2 of the paper).

A subtable is a dense array of buckets.  Each bucket holds
``bucket_capacity`` key slots stored consecutively (one 128-byte cache
line for 32 four-byte keys) plus a parallel value array, so a warp reads
a whole bucket in a single coalesced transaction.  Keys and values live
in *separate* arrays ("structure of arrays"), which lets find/delete
avoid touching values entirely — exactly the layout argument of
Section IV-A.

The empty-slot sentinel is key code ``0``; the owning table encodes user
keys as ``key + 1`` so the full ``uint64`` user domain minus one value is
supported.

All methods are vectorized over arrays of bucket indices.  The subtable
knows nothing about hashing or the two-layer scheme: it only moves codes
in and out of slots.  Device-cost accounting (transactions, locks) is the
caller's job.
"""

from __future__ import annotations

import numpy as np

from repro.core.grouping import rank_within_group
from repro.errors import InvalidConfigError

#: Key code marking an empty slot.
EMPTY = np.uint64(0)


class Subtable:
    """One cuckoo subtable: ``n_buckets`` buckets of fixed capacity."""

    def __init__(self, n_buckets: int, bucket_capacity: int) -> None:
        if n_buckets <= 0 or n_buckets & (n_buckets - 1):
            raise InvalidConfigError(
                f"n_buckets must be a positive power of two, got {n_buckets}"
            )
        if bucket_capacity < 1:
            raise InvalidConfigError(
                f"bucket_capacity must be >= 1, got {bucket_capacity}"
            )
        self.n_buckets = n_buckets
        self.bucket_capacity = bucket_capacity
        self.keys = np.zeros((n_buckets, bucket_capacity), dtype=np.uint64)
        self.values = np.zeros((n_buckets, bucket_capacity), dtype=np.uint64)
        #: Number of live (non-empty) slots.
        self.size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def total_slots(self) -> int:
        """Total key slots allocated in this subtable."""
        return self.n_buckets * self.bucket_capacity

    @property
    def filled_factor(self) -> float:
        """Live entries over allocated slots."""
        return self.size / self.total_slots if self.total_slots else 0.0

    @property
    def slot_bytes(self) -> int:
        """Bytes of key+value storage (8 bytes each)."""
        return self.keys.nbytes + self.values.nbytes

    def export_entries(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(codes, values, bucket_indices)`` of all live entries."""
        occupied = self.keys != EMPTY
        bucket_idx, _slot_idx = np.nonzero(occupied)
        return (self.keys[occupied].copy(),
                self.values[occupied].copy(),
                bucket_idx.astype(np.int64))

    def validate(self) -> None:
        """Assert internal consistency (used by tests)."""
        live = int(np.count_nonzero(self.keys != EMPTY))
        if live != self.size:
            raise AssertionError(
                f"size counter {self.size} != live slots {live}"
            )

    # ------------------------------------------------------------------
    # Read-only operations
    # ------------------------------------------------------------------

    def lookup(self, buckets: np.ndarray, codes: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray]:
        """Probe ``codes`` in their ``buckets``.

        Returns ``(found, values)``; ``values`` is meaningful only where
        ``found`` is True.
        """
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        if len(buckets) == 0:
            return (np.zeros(0, dtype=bool), np.zeros(0, dtype=np.uint64))
        bucket_keys = self.keys[buckets]                      # (n, cap)
        match = bucket_keys == codes[:, None]
        found = match.any(axis=1)
        slots = match.argmax(axis=1)
        values = self.values[buckets, slots]
        return found, values

    def contains(self, buckets: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Membership-only variant of :meth:`lookup` (no value gather)."""
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        if len(buckets) == 0:
            return np.zeros(0, dtype=bool)
        return (self.keys[buckets] == codes[:, None]).any(axis=1)

    # ------------------------------------------------------------------
    # Mutating operations
    # ------------------------------------------------------------------

    def update_existing(self, buckets: np.ndarray, codes: np.ndarray,
                        values: np.ndarray) -> np.ndarray:
        """Overwrite values of codes already present; return updated mask."""
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        if len(buckets) == 0:
            return np.zeros(0, dtype=bool)
        bucket_keys = self.keys[buckets]
        match = bucket_keys == codes[:, None]
        found = match.any(axis=1)
        slots = match.argmax(axis=1)
        self.values[buckets[found], slots[found]] = values[found]
        return found

    def erase(self, buckets: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Remove matching codes from their buckets; return erased mask.

        Duplicate ``(bucket, code)`` rows in one call all report
        ``True`` but clear (and count) the underlying slot exactly once,
        so ``size`` stays consistent for callers that do not pre-dedupe
        the way :meth:`DyCuckooTable._delete_batch` does.
        """
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        if len(buckets) == 0:
            return np.zeros(0, dtype=bool)
        bucket_keys = self.keys[buckets]
        match = bucket_keys == codes[:, None]
        found = match.any(axis=1)
        slots = match.argmax(axis=1)
        # Dedupe physical slots: the same (bucket, slot) may be matched
        # by several input rows, but it holds only one live entry.
        flat_slots = buckets[found] * self.bucket_capacity + slots[found]
        self.keys[buckets[found], slots[found]] = EMPTY
        self.size -= int(np.unique(flat_slots).size)
        return found

    def place_round(self, buckets: np.ndarray, codes: np.ndarray,
                    values: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One synchronous placement round into this subtable.

        Implements the slot-claiming step of a device round: operations
        targeting the same bucket are ranked (the warp-vote order); the
        k-th claims the k-th free slot.  Codes must be distinct.

        Returns
        -------
        updated:
            Mask of codes that already existed and had their value
            overwritten.
        placed:
            Mask of codes written into a free slot.
        full_leader:
            Mask of codes that found their bucket completely full *and*
            rank first for it — these are the eviction candidates.  Codes
            in none of the three masks must retry next round (their
            bucket was full, or became full, and another op leads it).
        """
        buckets = np.asarray(buckets, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        n = len(buckets)
        if n == 0:
            zeros = np.zeros(0, dtype=bool)
            return zeros, zeros.copy(), zeros.copy()

        updated = self.update_existing(buckets, codes, values)
        placed = np.zeros(n, dtype=bool)
        full_leader = np.zeros(n, dtype=bool)

        rest = np.flatnonzero(~updated)
        if len(rest) == 0:
            return updated, placed, full_leader

        rest_buckets = buckets[rest]
        ranks, unique_buckets, inverse = rank_within_group(rest_buckets)
        free_mask = self.keys[unique_buckets] == EMPTY        # (u, cap)
        free_counts = free_mask.sum(axis=1)

        can_place = ranks < free_counts[inverse]
        if np.any(can_place):
            items = rest[can_place]
            item_rows = free_mask[inverse[can_place]]          # (m, cap)
            # The rank-th free slot: position where the running count of
            # free slots first reaches rank + 1.
            running = item_rows.cumsum(axis=1)
            target = (ranks[can_place] + 1)[:, None]
            slots = (running == target).argmax(axis=1)
            np_buckets = buckets[items]
            self.keys[np_buckets, slots] = codes[items]
            self.values[np_buckets, slots] = values[items]
            placed[items] = True
            self.size += len(items)

        bucket_full = free_counts[inverse] == 0
        leader = bucket_full & (ranks == 0)
        full_leader[rest[leader]] = True
        return updated, placed, full_leader

    def swap_slot(self, buckets: np.ndarray, slots: np.ndarray,
                  codes: np.ndarray, values: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Replace occupants at ``(bucket, slot)`` with new entries.

        Used for cuckoo evictions: the displaced ``(code, value)`` pairs
        are returned so the caller can reinsert them elsewhere.  Net live
        count is unchanged.
        """
        buckets = np.asarray(buckets, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        old_codes = self.keys[buckets, slots].copy()
        old_values = self.values[buckets, slots].copy()
        self.keys[buckets, slots] = np.asarray(codes, dtype=np.uint64)
        self.values[buckets, slots] = np.asarray(values, dtype=np.uint64)
        return old_codes, old_values

    def bucket_keys(self, buckets: np.ndarray) -> np.ndarray:
        """Gather the ``(n, capacity)`` key matrix for ``buckets``."""
        return self.keys[np.asarray(buckets, dtype=np.int64)]

    # ------------------------------------------------------------------
    # Bulk rebuild (resize support)
    # ------------------------------------------------------------------

    def rebuild(self, n_buckets: int, codes: np.ndarray, values: np.ndarray,
                buckets: np.ndarray) -> None:
        """Replace all storage, placing each entry in its assigned bucket.

        Entries assigned to one bucket are packed into slots
        ``0..count-1``.  The caller guarantees no bucket receives more
        than ``bucket_capacity`` entries.
        """
        if n_buckets <= 0 or n_buckets & (n_buckets - 1):
            raise InvalidConfigError(
                f"n_buckets must be a positive power of two, got {n_buckets}"
            )
        codes = np.asarray(codes, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        buckets = np.asarray(buckets, dtype=np.int64)
        ranks, _, _ = rank_within_group(buckets)
        if len(ranks) and int(ranks.max()) >= self.bucket_capacity:
            raise InvalidConfigError(
                "rebuild received more entries than capacity for a bucket"
            )
        self.n_buckets = n_buckets
        self.keys = np.zeros((n_buckets, self.bucket_capacity), dtype=np.uint64)
        self.values = np.zeros((n_buckets, self.bucket_capacity), dtype=np.uint64)
        self.keys[buckets, ranks] = codes
        self.values[buckets, ranks] = values
        self.size = len(codes)
