"""Deterministic fault injection for the table and the GPU simulator.

The paper's guarantees — fill factor inside ``[alpha, beta]``, the 2x
size discipline, two-bucket FIND/DELETE — are exactly the invariants
most likely to be violated under *rare* interleavings: CAS storms, a
resize aborted mid-flight, a downsize residual that cannot be placed.
This module makes those rare events reproducible on demand.

A :class:`FaultPlan` is attached to a :class:`~repro.core.table.
DyCuckooTable` (``table.set_fault_plan``) or passed to the gpusim
components (:class:`~repro.gpusim.kernel.LockArbiter`,
:class:`~repro.gpusim.atomics.AtomicMemory`,
:class:`~repro.gpusim.memory_manager.DeviceMemoryManager`).  Each
injection *site* calls :meth:`FaultPlan.fire` with its site name; the
plan deterministically decides — from ``(seed, site, invocation
index)`` alone, no global RNG state — whether that invocation fails.

Two construction modes:

* ``FaultPlan(seed=…, rates={site: probability})`` — seeded chaos.  The
  decision for invocation ``i`` of a site is a pure hash, so two plans
  with the same seed and rates fire identically no matter how the
  caller interleaves sites.
* ``FaultPlan.from_script(script)`` — exact replay.  A script lists the
  ``(site, index, param)`` triples to fire; every plan records what it
  fired (:meth:`to_script`), so any chaotic failure shrinks to a
  replayable script (the differential fuzz suite prints one on
  divergence).

Sites
-----
``atomics.cas``
    One :meth:`AtomicMemory.atomic_cas` spuriously loses its race (a
    competitor is modelled to have written first).  ``storms`` can arm
    several consecutive failures, modelling a CAS failure storm.
``lock.acquire``
    One bucket-lock acquisition fails even though the lock is free —
    the voter protocol must revote.
``lock.stall``
    The acquiring warp *keeps* the bucket lock for ``param`` extra
    device rounds (a lock-holder stall); competitors see it held.
``memory.alloc``
    A device allocation request fails with ``CapacityError``.
``insert.evict``
    A batched insert's eviction chain is declared exhausted this round,
    triggering the insert-failure path (upsize, or stash when the
    upsize itself is aborted).
``resize.abort.trigger`` / ``…plan`` / ``…rehash`` / ``…spill``
    A resize is aborted at the named lifecycle stage.  Aborts at
    ``rehash``/``spill`` happen *after* storage has been mutated and
    therefore exercise the ``_TableSnapshot`` rollback for real.

The disabled singleton :data:`NO_FAULTS` keeps every hook a single
attribute check, mirroring :data:`repro.telemetry.NULL_TELEMETRY`; with
it attached (the default) behaviour is bit-identical to a build without
the fault layer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigError
from repro.telemetry.recorder import NULL_RECORDER

#: Every site the library can inject at, in documentation order.
FAULT_SITES = (
    "atomics.cas",
    "lock.acquire",
    "lock.stall",
    "memory.alloc",
    "insert.evict",
    "resize.abort.trigger",
    "resize.abort.plan",
    "resize.abort.rehash",
    "resize.abort.spill",
)

#: Resize lifecycle stages (suffixes of the ``resize.abort.*`` sites).
RESIZE_STAGES = ("trigger", "plan", "rehash", "spill")

#: Default site-specific fault magnitude (``Fault.param``): extra rounds
#: a stalled lock stays held; 1 everywhere else.
DEFAULT_PARAMS = {"lock.stall": 3}

#: Script format version written by :meth:`FaultPlan.to_script`.
SCRIPT_VERSION = 1

_MASK64 = (1 << 64) - 1


def _fnv1a(text: str) -> int:
    """64-bit FNV-1a of ``text`` (stable across runs, unlike ``hash``)."""
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        acc = ((acc ^ byte) * 0x100000001B3) & _MASK64
    return acc


def _splitmix(x: int) -> int:
    """SplitMix64 finalizer: a high-quality 64-bit mixing function."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _splitmix_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_splitmix` over a ``uint64`` array.

    Bit-identical to the scalar form (uint64 arithmetic wraps exactly
    like the ``& _MASK64`` masking); the equivalence is pinned by a
    test so the vectorized fault-window check below can never drift
    from :meth:`FaultPlan._uniform`.
    """
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


@dataclass(frozen=True)
class Fault:
    """One injected fault: which site fired, at which invocation."""

    site: str
    #: Zero-based invocation index of the site when the fault fired.
    index: int
    #: Site-specific magnitude (stall rounds for ``lock.stall``).
    param: int = 1


class FaultPlan:
    """Deterministic, seedable source of injected faults.

    Parameters
    ----------
    seed:
        Root of the per-site decision hashes.  Same seed + same rates
        means the same decisions, always.
    rates:
        Mapping of site name to fire probability in ``[0, 1]``.  Sites
        not listed never fire.
    params:
        Overrides of :data:`DEFAULT_PARAMS` (per-fault magnitudes).
    storms:
        Mapping of site name to storm length ``k``: whenever the site
        fires probabilistically, the *next* ``k - 1`` invocations of
        that site are forced to fire too (a failure storm).
    """

    #: Gate checked by every hook; the null subclass overrides to False.
    enabled = True

    #: Flight recorder tripped on every fired fault.  Class attribute so
    #: existing plans (and replay scripts) need no constructor change;
    #: :meth:`repro.core.table.DyCuckooTable.set_recorder` sets it on
    #: the *instance* of an enabled plan, never on :data:`NO_FAULTS`.
    recorder = NULL_RECORDER

    def __init__(self, seed: int = 0,
                 rates: dict[str, float] | None = None,
                 params: dict[str, int] | None = None,
                 storms: dict[str, int] | None = None) -> None:
        rates = dict(rates or {})
        for site, rate in rates.items():
            if site not in FAULT_SITES:
                raise InvalidConfigError(f"unknown fault site: {site!r}")
            if not 0.0 <= rate <= 1.0:
                raise InvalidConfigError(
                    f"fault rate for {site!r} must be in [0, 1], got {rate}")
        for site, length in (storms or {}).items():
            if site not in FAULT_SITES:
                raise InvalidConfigError(f"unknown storm site: {site!r}")
            if length < 1:
                raise InvalidConfigError(
                    f"storm length for {site!r} must be >= 1, got {length}")
        self.seed = int(seed)
        self.rates = rates
        self.params = {**DEFAULT_PARAMS, **(params or {})}
        self.storms = dict(storms or {})
        #: Replay script, or ``None`` for probabilistic mode.
        self._script: dict[str, dict[int, int]] | None = None
        #: Per-site invocation counters.
        self._counters: dict[str, int] = {}
        #: Per-site forced fires remaining (storm arming).
        self._armed: dict[str, int] = {}
        #: Every fault fired so far, in firing order.
        self.fired: list[Fault] = []
        self._site_salt = {site: _fnv1a(site) for site in FAULT_SITES}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_script(cls, script) -> "FaultPlan":
        """Build a plan that replays exactly the faults in ``script``.

        ``script`` is either the dict produced by :meth:`to_script` or
        its JSON serialization.  Replay is exact: the fault fires at the
        recorded invocation index of its site regardless of rates.
        """
        if isinstance(script, (str, bytes)):
            script = json.loads(script)
        if not isinstance(script, dict) or "fired" not in script:
            raise InvalidConfigError(
                "fault script must be a dict with a 'fired' list")
        plan = cls(seed=int(script.get("seed", 0)))
        table: dict[str, dict[int, int]] = {}
        for entry in script["fired"]:
            site, index, param = str(entry[0]), int(entry[1]), int(entry[2])
            if site not in FAULT_SITES:
                raise InvalidConfigError(f"unknown fault site: {site!r}")
            table.setdefault(site, {})[index] = param
        plan._script = table
        return plan

    def to_script(self) -> dict:
        """Serialize the faults fired so far into a replayable script."""
        return {
            "version": SCRIPT_VERSION,
            "seed": self.seed,
            "fired": [[f.site, f.index, f.param] for f in self.fired],
        }

    def script_json(self) -> str:
        """One-line JSON form of :meth:`to_script` (for failure reports)."""
        return json.dumps(self.to_script(), separators=(",", ":"))

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------

    def _uniform(self, site: str, index: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for (seed, site, i)."""
        mixed = _splitmix(self.seed ^ self._site_salt[site] ^
                          _splitmix(index))
        return mixed / float(1 << 64)

    def fire(self, site: str) -> Fault | None:
        """Decide whether this invocation of ``site`` faults.

        Advances the site's invocation counter either way; returns the
        :class:`Fault` when it fires, ``None`` otherwise.  Every fired
        fault is appended to :attr:`fired` so the whole session can be
        serialized with :meth:`to_script`.
        """
        index = self._counters.get(site, 0)
        self._counters[site] = index + 1
        if self._script is not None:
            param = self._script.get(site, {}).get(index)
            if param is None:
                return None
            fault = Fault(site, index, param)
        elif self._armed.get(site, 0) > 0:
            self._armed[site] -= 1
            fault = Fault(site, index, self.params.get(site, 1))
        else:
            rate = self.rates.get(site, 0.0)
            if rate <= 0.0 or self._uniform(site, index) >= rate:
                return None
            fault = Fault(site, index, self.params.get(site, 1))
            storm = self.storms.get(site, 1)
            if storm > 1:
                self._armed[site] = self._armed.get(site, 0) + storm - 1
        self.fired.append(fault)
        if self.recorder.enabled:
            self.recorder.trip("fault", site=fault.site, index=fault.index,
                               param=fault.param)
        return fault

    # ------------------------------------------------------------------
    # Vectorized consult windows (SoA engine fast path)
    # ------------------------------------------------------------------

    def advance(self, site: str, n: int) -> None:
        """Bulk-advance ``site``'s counter past ``n`` non-firing consults.

        Only legal after :meth:`window_may_fire` returned ``False`` for
        the same ``(site, n)`` window: the skipped invocations must all
        be no-fire decisions, so skipping the per-invocation walk leaves
        :attr:`fired`, storm arming, and the counters exactly where ``n``
        individual :meth:`fire` calls would have.
        """
        if n > 0:
            self._counters[site] = self._counters.get(site, 0) + n

    def window_may_fire(self, site: str, n: int) -> bool:
        """Could any of the next ``n`` consults of ``site`` fire?

        ``False`` is an exact guarantee (every decision in the window is
        a no-fire), which lets a vectorized caller take the whole window
        in one :meth:`advance`.  ``True`` means the caller must fall
        back to per-invocation :meth:`fire` calls to reproduce the
        sequential decisions (including storm arming) exactly.
        """
        if n <= 0:
            return False
        if self._armed.get(site, 0) > 0:
            return True
        start = self._counters.get(site, 0)
        if self._script is not None:
            entries = self._script.get(site)
            if not entries:
                return False
            return any(start <= index < start + n for index in entries)
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        index = np.arange(start, start + n, dtype=np.uint64)
        salt = np.uint64((self.seed ^ self._site_salt[site]) & _MASK64)
        mixed = _splitmix_array(salt ^ _splitmix_array(index))
        # uint64 -> float64 rounds to nearest and the 2**64 divide is an
        # exact power-of-two scale: bit-identical to _uniform's
        # ``int / float`` path.
        draws = mixed.astype(np.float64) / float(1 << 64)
        return bool(np.any(draws < rate))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def fired_by_site(self) -> dict[str, int]:
        """Count of fired faults per site (for survival reports)."""
        counts: dict[str, int] = {}
        for fault in self.fired:
            counts[fault.site] = counts.get(fault.site, 0) + 1
        return counts

    def invocations(self) -> dict[str, int]:
        """How many times each site consulted the plan."""
        return dict(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "script" if self._script is not None else "rates"
        return (f"FaultPlan(seed={self.seed}, mode={mode}, "
                f"fired={len(self.fired)})")


class _NoFaults(FaultPlan):
    """Disabled plan: the default on every component.

    ``enabled`` is False so hot paths skip with one attribute check;
    ``fire`` is inert for callers that do not gate.
    """

    enabled = False

    def fire(self, site: str) -> None:  # noqa: ARG002 - site unused
        return None


#: Shared disabled-fault singleton.
NO_FAULTS = _NoFaults()

#: Rates used by :func:`default_chaos_plan` at intensity 1.0 — high
#: enough that a 10k-op session injects hundreds of faults across every
#: site, low enough that forward progress dominates.
DEFAULT_CHAOS_RATES = {
    "atomics.cas": 0.02,
    "lock.acquire": 0.05,
    "lock.stall": 0.02,
    "memory.alloc": 0.01,
    "insert.evict": 0.01,
    "resize.abort.trigger": 0.05,
    "resize.abort.plan": 0.05,
    "resize.abort.rehash": 0.05,
    "resize.abort.spill": 0.10,
}


def default_chaos_plan(seed: int = 0, intensity: float = 1.0) -> FaultPlan:
    """A ready-made chaos plan covering every site.

    ``intensity`` scales all default rates (clamped to 1.0); 0 yields a
    plan that never fires (but still counts invocations).
    """
    if intensity < 0:
        raise InvalidConfigError(
            f"intensity must be non-negative, got {intensity}")
    rates = {site: min(1.0, rate * intensity)
             for site, rate in DEFAULT_CHAOS_RATES.items()}
    return FaultPlan(seed=seed, rates=rates,
                     storms={"atomics.cas": 3, "lock.acquire": 2})


__all__ = [
    "Fault",
    "FaultPlan",
    "NO_FAULTS",
    "FAULT_SITES",
    "RESIZE_STAGES",
    "DEFAULT_CHAOS_RATES",
    "default_chaos_plan",
]
