"""Benchmark harness: runners and paper-style reporting.

* :mod:`repro.bench.runner` — static and dynamic experiment drivers
  producing simulated-GPU Mops and filled-factor series,
* :mod:`repro.bench.report` — text rendering of the paper's tables,
  series and qualitative shape checks.
"""

from repro.bench.artifacts import maybe_dump, maybe_dump_trace
from repro.bench.regression import (RegressionReport, compare_dirs,
                                    format_report)
from repro.bench.report import format_series, format_table, shape_check, sparkline
from repro.bench.runner import (BatchResult, DynamicRunResult,
                                StaticRunResult, execute_operations,
                                run_dynamic, run_static)

__all__ = [
    "run_static",
    "run_dynamic",
    "execute_operations",
    "BatchResult",
    "DynamicRunResult",
    "StaticRunResult",
    "format_table",
    "format_series",
    "sparkline",
    "shape_check",
    "maybe_dump",
    "maybe_dump_trace",
    "compare_dirs",
    "format_report",
    "RegressionReport",
]
