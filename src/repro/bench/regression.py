"""Regression comparison between two benchmark artifact dumps.

Workflow for maintainers::

    REPRO_BENCH_JSON=baseline/ pytest benchmarks/ --benchmark-only
    # ... make changes ...
    REPRO_BENCH_JSON=current/  pytest benchmarks/ --benchmark-only
    python -c "from repro.bench.regression import compare_dirs, format_report; \
               print(format_report(compare_dirs('baseline', 'current')))"

Numeric leaves are compared with a relative tolerance; structural
differences (added/removed results) are reported separately.  The
comparison is deliberately conservative: anything it cannot pair up is
surfaced rather than ignored.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class Deviation:
    """One numeric leaf that moved beyond tolerance."""

    artifact: str
    path: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline


@dataclass
class RegressionReport:
    """Outcome of comparing two artifact directories."""

    compared_leaves: int = 0
    deviations: list[Deviation] = field(default_factory=list)
    missing_in_current: list[str] = field(default_factory=list)
    added_in_current: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (not self.deviations and not self.missing_in_current
                and not self.added_in_current)


def _walk(value, prefix: str = ""):
    """Yield ``(path, leaf)`` for every scalar leaf of a JSON value."""
    if isinstance(value, dict):
        for key, child in value.items():
            yield from _walk(child, f"{prefix}/{key}" if prefix else str(key))
    elif isinstance(value, list):
        for i, child in enumerate(value):
            yield from _walk(child, f"{prefix}[{i}]")
    else:
        yield prefix, value


def _matches(name: str, patterns) -> bool:
    return any(fnmatch.fnmatch(name, pattern) for pattern in patterns)


def compare_payloads(artifact: str, baseline, current,
                     rel_tolerance: float, report: RegressionReport,
                     skip=()) -> None:
    base_leaves = dict(_walk(baseline))
    curr_leaves = dict(_walk(current))
    if skip:
        base_leaves = {path: leaf for path, leaf in base_leaves.items()
                       if not _matches(f"{artifact}:{path}", skip)}
        curr_leaves = {path: leaf for path, leaf in curr_leaves.items()
                       if not _matches(f"{artifact}:{path}", skip)}
    for path in sorted(set(base_leaves) - set(curr_leaves)):
        report.missing_in_current.append(f"{artifact}:{path}")
    for path in sorted(set(curr_leaves) - set(base_leaves)):
        report.added_in_current.append(f"{artifact}:{path}")
    for path in sorted(set(base_leaves) & set(curr_leaves)):
        base = base_leaves[path]
        curr = curr_leaves[path]
        if isinstance(base, bool) or isinstance(curr, bool) \
                or not isinstance(base, (int, float)) \
                or not isinstance(curr, (int, float)):
            if base != curr:
                report.deviations.append(
                    Deviation(artifact, path, float("nan"), float("nan")))
            continue
        report.compared_leaves += 1
        scale = max(abs(base), abs(curr), 1e-12)
        if abs(base - curr) / scale > rel_tolerance:
            report.deviations.append(
                Deviation(artifact, path, float(base), float(curr)))


def compare_dirs(baseline_dir, current_dir,
                 rel_tolerance: float = 0.05,
                 only=(), skip=()) -> RegressionReport:
    """Compare every ``*.json`` artifact shared by the two directories.

    ``only`` restricts the comparison to artifact file names matching
    any of the given fnmatch patterns (use it to enforce a curated
    committed baseline without flagging every other artifact as
    missing).  ``skip`` drops leaves whose qualified name
    (``artifact:path``) matches any pattern — typically wall-clock and
    throughput leaves that are too noisy to gate on.
    """
    baseline_dir = Path(baseline_dir)
    current_dir = Path(current_dir)
    report = RegressionReport()
    base_files = {p.name: p for p in baseline_dir.glob("*.json")}
    curr_files = {p.name: p for p in current_dir.glob("*.json")}
    if only:
        base_files = {n: p for n, p in base_files.items()
                      if _matches(n, only)}
        curr_files = {n: p for n, p in curr_files.items()
                      if _matches(n, only)}
    for name in sorted(set(base_files) - set(curr_files)):
        report.missing_in_current.append(name)
    for name in sorted(set(curr_files) - set(base_files)):
        report.added_in_current.append(name)
    for name in sorted(set(base_files) & set(curr_files)):
        baseline = json.loads(base_files[name].read_text())
        current = json.loads(curr_files[name].read_text())
        compare_payloads(name, baseline, current, rel_tolerance, report,
                         skip=skip)
    return report


def format_report(report: RegressionReport, limit: int = 40) -> str:
    """Human-readable rendering of a :class:`RegressionReport`."""
    lines = [f"compared {report.compared_leaves} numeric results"]
    if report.clean:
        lines.append("no regressions: all results within tolerance")
        return "\n".join(lines)
    for dev in report.deviations[:limit]:
        lines.append(f"  CHANGED {dev.artifact}:{dev.path}  "
                     f"{dev.baseline:.4g} -> {dev.current:.4g} "
                     f"({dev.ratio:.2f}x)")
    if len(report.deviations) > limit:
        lines.append(f"  ... and {len(report.deviations) - limit} more")
    for name in report.missing_in_current:
        lines.append(f"  MISSING {name}")
    for name in report.added_in_current:
        lines.append(f"  ADDED   {name}")
    return "\n".join(lines)
