"""Measurement harness: drive tables through workloads, produce Mops.

Two entry points mirror the paper's two experimental settings:

* :func:`run_static` — insert an entire dataset, then issue random FIND
  queries (Section VI-C),
* :func:`run_dynamic` — execute the batched insert/find/delete protocol
  while tracking throughput and the filled factor per batch
  (Section VI-D).

Throughput is *simulated* GPU throughput: each batch's event-counter
delta is priced by :class:`repro.gpusim.metrics.CostModel` on the paper's
GTX 1080.  Wall-clock host time is also recorded for pytest-benchmark.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import GpuHashTable
from repro.errors import UnsupportedOperationError
from repro.gpusim.metrics import CostModel
from repro.telemetry import NULL_PROFILER, NULL_TELEMETRY
from repro.workloads.batches import DynamicWorkload


@dataclass(frozen=True)
class BatchResult:
    """Measurements for one dynamic-protocol batch."""

    index: int
    phase: int
    ops: int
    simulated_seconds: float
    fill_factor: float
    live_entries: int
    total_slots: int
    memory_bytes: int

    @property
    def mops(self) -> float:
        if self.simulated_seconds <= 0:
            return float("inf")
        return self.ops / self.simulated_seconds / 1e6


@dataclass
class DynamicRunResult:
    """Aggregate of one dynamic run for one table."""

    table_name: str
    batches: list[BatchResult] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        return sum(b.ops for b in self.batches)

    @property
    def total_seconds(self) -> float:
        return sum(b.simulated_seconds for b in self.batches)

    @property
    def mops(self) -> float:
        if self.total_seconds <= 0:
            return float("inf")
        return self.total_ops / self.total_seconds / 1e6

    @property
    def fill_series(self) -> list[float]:
        """Filled factor after each batch (Figure 12's y-axis)."""
        return [b.fill_factor for b in self.batches]

    @property
    def peak_memory_bytes(self) -> int:
        return max((b.memory_bytes for b in self.batches), default=0)


@dataclass(frozen=True)
class StaticRunResult:
    """Insert-everything-then-query measurements (Figure 9)."""

    table_name: str
    insert_ops: int
    insert_seconds: float
    find_ops: int
    find_seconds: float
    fill_factor: float

    @property
    def insert_mops(self) -> float:
        return (self.insert_ops / self.insert_seconds / 1e6
                if self.insert_seconds > 0 else float("inf"))

    @property
    def find_mops(self) -> float:
        return (self.find_ops / self.find_seconds / 1e6
                if self.find_seconds > 0 else float("inf"))


def _batch_compute_ns(table: GpuHashTable, operations) -> float:
    """Op-count weighted per-op compute cost for one batch."""
    costs = table.KERNEL_COSTS
    per_kind = {"insert": costs.insert_ns, "find": costs.find_ns,
                "delete": costs.delete_ns}
    total = sum(len(op) for op in operations)
    if total == 0:
        return costs.find_ns
    weighted = sum(len(op) * per_kind[op.kind] for op in operations)
    return weighted / total


def execute_operations(table: GpuHashTable, operations) -> int:
    """Run a batch's operations; returns ops executed.

    DELETE batches are skipped for tables that do not support deletion
    (the paper excludes CUDPP from the dynamic comparison entirely, so
    in practice this only guards misuse).
    """
    executed = 0
    for op in operations:
        if op.kind == "insert":
            table.insert(op.keys, op.values)
        elif op.kind == "find":
            table.find(op.keys)
        elif op.kind == "delete":
            if not table.SUPPORTS_DELETE:
                raise UnsupportedOperationError(
                    f"{table.NAME} cannot execute delete batches"
                )
            table.delete(op.keys)
        executed += len(op)
    return executed


def _sample_fill_telemetry(telemetry, table: GpuHashTable,
                           footprint) -> None:
    """Record global and per-subtable fill-factor gauges for one batch.

    Per-subtable factors exist only for subtable designs (DyCuckoo); the
    global filled factor is sampled for every table.
    """
    fill = footprint.filled_factor
    telemetry.metrics.gauge("fill.global").set(fill)
    telemetry.tracer.counter("fill.global", fill)
    per_subtable = getattr(table, "subtable_load_factors", None)
    if per_subtable is not None:
        series = {}
        for idx, factor in enumerate(per_subtable):
            telemetry.metrics.gauge(f"fill.subtable{idx}").set(factor)
            series[f"subtable{idx}"] = factor
        telemetry.tracer.counter("fill.subtable", series)


def run_dynamic(table: GpuHashTable, workload: DynamicWorkload,
                cost_model: CostModel | None = None,
                max_batches: int | None = None) -> DynamicRunResult:
    """Drive the full dynamic protocol; collect per-batch measurements.

    When the table carries an enabled telemetry handle (see
    :meth:`repro.baselines.base.GpuHashTable.set_telemetry`), each batch
    is wrapped in a ``batch`` span whose duration is the batch's
    *simulated* GPU time — the exported trace timeline is laid out in
    simulated time — and per-subtable fill-factor gauges are sampled
    after every batch.  A table carrying an enabled deep profiler
    additionally gets a per-batch ``batch`` fill-timeline sample.
    """
    cost_model = cost_model or CostModel()
    telemetry = getattr(table, "telemetry", NULL_TELEMETRY)
    profiler = getattr(table, "profiler", NULL_PROFILER)
    result = DynamicRunResult(table_name=table.NAME)
    for batch in workload.batches():
        if max_batches is not None and batch.index >= max_batches:
            break
        batch_ctx = (telemetry.tracer.span("batch", "bench",
                                           index=batch.index,
                                           phase=batch.phase)
                     if telemetry.enabled else nullcontext())
        with batch_ctx:
            before = table.stats.snapshot()
            ops = execute_operations(table, batch.operations)
            delta = table.stats.delta(before)
            seconds = cost_model.batch_seconds(
                delta, ops, _batch_compute_ns(table, batch.operations),
                kernel_launches=len(batch.operations))
            footprint = table.memory_footprint()
            if telemetry.enabled:
                _sample_fill_telemetry(telemetry, table, footprint)
                # Lay the batch out over its simulated duration so the
                # span's width in the trace is the simulated GPU time.
                telemetry.tracer.advance(seconds)
            if profiler.enabled and hasattr(table, "subtable_load_factors"):
                profiler.sample_fill("batch", table)
        result.batches.append(BatchResult(
            index=batch.index,
            phase=batch.phase,
            ops=ops,
            simulated_seconds=seconds,
            fill_factor=footprint.filled_factor,
            live_entries=footprint.live_entries,
            total_slots=footprint.total_slots,
            memory_bytes=footprint.total_bytes,
        ))
    return result


def run_static(table: GpuHashTable, keys: np.ndarray, values: np.ndarray,
               num_finds: int, cost_model: CostModel | None = None,
               insert_chunk: int = 200_000, seed: int = 0
               ) -> StaticRunResult:
    """The static experiment: bulk insert, then random FIND queries."""
    cost_model = cost_model or CostModel()
    telemetry = getattr(table, "telemetry", NULL_TELEMETRY)
    keys = np.asarray(keys, dtype=np.uint64)
    values = np.asarray(values, dtype=np.uint64)

    insert_ctx = (telemetry.tracer.span("static.insert", "bench",
                                        n=len(keys))
                  if telemetry.enabled else nullcontext())
    with insert_ctx:
        before = table.stats.snapshot()
        chunks = 0
        for start in range(0, len(keys), insert_chunk):
            stop = min(start + insert_chunk, len(keys))
            table.insert(keys[start:stop], values[start:stop])
            chunks += 1
        insert_delta = table.stats.delta(before)
        insert_seconds = cost_model.batch_seconds(
            insert_delta, len(keys), table.KERNEL_COSTS.insert_ns,
            kernel_launches=chunks)
        telemetry.tracer.advance(insert_seconds)

    rng = np.random.default_rng(seed)
    queries = rng.choice(keys, size=num_finds, replace=True)
    find_ctx = (telemetry.tracer.span("static.find", "bench", n=num_finds)
                if telemetry.enabled else nullcontext())
    with find_ctx:
        before = table.stats.snapshot()
        table.find(queries)
        find_delta = table.stats.delta(before)
        find_seconds = cost_model.batch_seconds(
            find_delta, num_finds, table.KERNEL_COSTS.find_ns)
        telemetry.tracer.advance(find_seconds)

    return StaticRunResult(
        table_name=table.NAME,
        insert_ops=len(keys),
        insert_seconds=insert_seconds,
        find_ops=num_finds,
        find_seconds=find_seconds,
        fill_factor=table.load_factor,
    )
