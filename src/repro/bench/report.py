"""Paper-style result formatting for the benchmark harness.

The benchmarks print the same rows and series the paper plots, as plain
text: throughput tables (one row per approach, one column per dataset or
parameter setting) and tracked series (filled factor per batch) rendered
as compact sparklines plus summary statistics.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None, float_fmt: str = "{:.1f}") -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_fmt.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
                            for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)))
    return "\n".join(lines)


def sparkline(series: Sequence[float], lo: float | None = None,
              hi: float | None = None, width: int = 60) -> str:
    """Compress a series into a unicode sparkline of at most ``width``."""
    values = list(series)
    if not values:
        return ""
    if len(values) > width:
        # Average adjacent points down to the target width.
        chunk = len(values) / width
        values = [sum(values[int(i * chunk):max(int(i * chunk) + 1,
                                                int((i + 1) * chunk))])
                  / max(1, len(values[int(i * chunk):max(int(i * chunk) + 1,
                                                         int((i + 1) * chunk))]))
                  for i in range(width)]
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = (hi - lo) or 1.0
    chars = []
    for v in values:
        level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        level = max(0, min(len(_SPARK_LEVELS) - 1, level))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def format_series(title: str, series_by_name: Mapping[str, Sequence[float]],
                  lo: float | None = None, hi: float | None = None,
                  value_fmt: str = "{:.2f}") -> str:
    """Render several tracked series as labelled sparklines with stats."""
    lines = [title]
    name_width = max((len(n) for n in series_by_name), default=0)
    for name, series in series_by_name.items():
        series = list(series)
        if not series:
            lines.append(f"  {name.ljust(name_width)}  (empty)")
            continue
        stats = (f"min={value_fmt.format(min(series))} "
                 f"max={value_fmt.format(max(series))} "
                 f"last={value_fmt.format(series[-1])}")
        lines.append(f"  {name.ljust(name_width)}  "
                     f"{sparkline(series, lo, hi)}  {stats}")
    return "\n".join(lines)


def shape_check(label: str, condition: bool) -> str:
    """One-line PASS/FAIL marker for an expected qualitative shape."""
    marker = "PASS" if condition else "FAIL"
    return f"  [{marker}] {label}"
