"""Benchmark artifacts: machine-readable result dumps.

Benchmarks print human-readable tables; for regression tracking and
plotting, the same results can be written as JSON.  Set the environment
variable ``REPRO_BENCH_JSON`` to a directory and every benchmark run
through :func:`maybe_dump` (which `benchmarks.common.once` calls) drops
one ``<name>.json`` artifact there.

The serializer handles the types benchmark results actually contain —
numpy scalars/arrays, dataclass-like result objects, tuple-keyed dicts —
without requiring benches to pre-convert anything.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

import numpy as np

#: Environment variable naming the artifact output directory.
ENV_VAR = "REPRO_BENCH_JSON"


def _jsonable(value):
    """Best-effort conversion of benchmark results to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {_key(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "__dict__"):
        return {k: _jsonable(v) for k, v in vars(value).items()
                if not k.startswith("_")}
    return repr(value)


def _key(key) -> str:
    """Dictionary keys must be strings in JSON; tuples join with '/'."""
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def maybe_dump(name: str, results) -> Path | None:
    """Write ``results`` as ``<dir>/<name>.json`` if the env var is set.

    Returns the written path, or ``None`` when dumping is disabled.
    Never raises: artifact dumping must not fail a benchmark.
    """
    directory = os.environ.get(ENV_VAR)
    if not directory:
        return None
    try:
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        out = path / f"{name}.json"
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(_jsonable(results), handle, indent=2, sort_keys=True)
        return out
    except Exception:  # pragma: no cover - best-effort by design
        return None


def maybe_dump_trace(name: str, tracer,
                     metadata: dict | None = None) -> Path | None:
    """Write a Chrome-trace artifact ``<dir>/<name>.trace.json``.

    Like :func:`maybe_dump`, gated on :data:`ENV_VAR` and best-effort:
    telemetry persistence must never fail a benchmark.  The written file
    loads directly in ``chrome://tracing`` or Perfetto.
    """
    directory = os.environ.get(ENV_VAR)
    if not directory:
        return None
    try:
        from repro.telemetry.export import write_chrome_trace

        out = Path(directory) / f"{name}.trace.json"
        return write_chrome_trace(tracer, out, metadata)
    except Exception:  # pragma: no cover - best-effort by design
        return None
