"""Tests for mixed-operation batch execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_ops import (OP_DELETE, OP_FIND, OP_INSERT,
                                  execute_mixed)
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.errors import InvalidConfigError


def fresh_table():
    return DyCuckooTable(DyCuckooConfig(initial_buckets=8,
                                        bucket_capacity=4))


class TestExecuteMixed:
    def test_program_order_semantics(self):
        table = fresh_table()
        ops = np.array([OP_INSERT, OP_FIND, OP_DELETE, OP_FIND])
        keys = np.array([7, 7, 7, 7], dtype=np.uint64)
        values = np.array([70, 0, 0, 0], dtype=np.uint64)
        result = execute_mixed(table, ops, keys, values)
        assert result.found[1] and result.values[1] == 70
        assert result.removed[2]
        assert not result.found[3]
        assert result.runs == 4

    def test_runs_group_same_kind(self):
        table = fresh_table()
        ops = np.array([OP_INSERT, OP_INSERT, OP_FIND, OP_FIND])
        keys = np.array([1, 2, 1, 2], dtype=np.uint64)
        values = np.array([10, 20, 0, 0], dtype=np.uint64)
        result = execute_mixed(table, ops, keys, values)
        assert result.runs == 2
        assert result.found[2:].all()
        assert result.values[2] == 10 and result.values[3] == 20

    def test_insert_requires_values(self):
        table = fresh_table()
        with pytest.raises(InvalidConfigError):
            execute_mixed(table, np.array([OP_INSERT]),
                          np.array([1], dtype=np.uint64))

    def test_find_only_needs_no_values(self):
        table = fresh_table()
        result = execute_mixed(table, np.array([OP_FIND]),
                               np.array([1], dtype=np.uint64))
        assert not result.found[0]

    def test_rejects_unknown_op(self):
        table = fresh_table()
        with pytest.raises(InvalidConfigError):
            execute_mixed(table, np.array([9]), np.array([1], dtype=np.uint64))

    def test_rejects_misaligned(self):
        table = fresh_table()
        with pytest.raises(InvalidConfigError):
            execute_mixed(table, np.array([OP_FIND, OP_FIND]),
                          np.array([1], dtype=np.uint64))

    def test_empty_batch(self):
        table = fresh_table()
        result = execute_mixed(table, np.array([], dtype=np.int64),
                               np.array([], dtype=np.uint64))
        assert result.runs == 0

    @given(st.lists(
        st.tuples(st.sampled_from([OP_INSERT, OP_FIND, OP_DELETE]),
                  st.integers(min_value=0, max_value=30),
                  st.integers(min_value=1, max_value=1000)),
        min_size=1, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_matches_sequential_dict_model(self, program):
        """Mixed execution must equal a per-op sequential dict replay.

        Program order is the defined semantics, so a scalar replay of
        the same program against a dict must agree on every FIND result
        and DELETE outcome (modulo duplicate handling inside one run,
        which the replay reproduces with the same rules).
        """
        table = fresh_table()
        ops = np.array([op for op, _k, _v in program], dtype=np.int64)
        keys = np.array([k for _op, k, _v in program], dtype=np.uint64)
        values = np.array([v for _op, _k, v in program], dtype=np.uint64)
        result = execute_mixed(table, ops, keys, values)

        # Replay with the documented per-run rules.
        model: dict = {}
        i = 0
        while i < len(program):
            j = i
            while j < len(program) and program[j][0] == program[i][0]:
                j += 1
            kind = program[i][0]
            segment = program[i:j]
            if kind == OP_INSERT:
                for _op, k, v in segment:
                    model[k] = v  # last-wins within the run
            elif kind == OP_FIND:
                for pos, (_op, k, _v) in enumerate(segment, start=i):
                    assert bool(result.found[pos]) == (k in model)
                    if k in model:
                        assert int(result.values[pos]) == model[k]
            else:
                seen = set()
                for pos, (_op, k, _v) in enumerate(segment, start=i):
                    expected = k in model and k not in seen
                    assert bool(result.removed[pos]) == expected
                    seen.add(k)
                    model.pop(k, None)
            i = j
        table.validate()
        assert len(table) == len(model)
