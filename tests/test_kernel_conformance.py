"""Kernel-vs-vectorized conformance: identical batches, identical tables.

The lane-level kernels (:mod:`repro.kernels`) and the vectorized fast
path (:class:`repro.core.table.DyCuckooTable`) execute against the same
storage format and must agree on *contents* for any batch sequence —
slot placement may differ (scheduling), but the key set, the values,
and every structural invariant must match.

The scenarios deliberately include the historical trouble spots:

* delete-then-reinsert holes — a deleted slot below a stored key's slot
  must not seduce the upsert into writing a second copy of the key;
* duplicate keys inside one batch — the vectorized path guarantees
  last-occurrence-wins; the kernel path guarantees a *single* copy
  whose value is one of the duplicates (warp scheduling picks which);
* interleaved insert/delete/reinsert sequences driven through every
  path combination, checked against a plain-dict model.
"""

import numpy as np
import pytest

from repro.core.analysis import check_invariants
from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.kernels import (run_delete_kernel, run_find_kernel,
                           run_spin_insert_kernel, run_voter_insert_kernel)

from .conftest import unique_keys


def fresh_table(buckets=64, capacity=8, **kw):
    defaults = dict(initial_buckets=buckets, bucket_capacity=capacity,
                    auto_resize=False)
    defaults.update(kw)
    return DyCuckooTable(DyCuckooConfig(**defaults))


INSERT_PATHS = {
    "vectorized": lambda table, keys, values: table.insert(keys, values),
    "voter": run_voter_insert_kernel,
    "spin": run_spin_insert_kernel,
    "voter-cohort": lambda table, keys, values: run_voter_insert_kernel(
        table, keys, values, engine="cohort"),
    "spin-cohort": lambda table, keys, values: run_spin_insert_kernel(
        table, keys, values, engine="cohort"),
}

DELETE_PATHS = {
    "vectorized": lambda table, keys: table.delete(keys),
    "kernel": lambda table, keys: run_delete_kernel(table, keys)[0],
    "kernel-cohort": lambda table, keys: run_delete_kernel(
        table, keys, engine="cohort")[0],
}


def assert_conforms(table, model: dict) -> None:
    """Table contents equal the dict model; all invariants hold."""
    table.validate()
    check_invariants(table)
    assert table.to_dict() == model
    if model:
        model_keys = np.fromiter(model.keys(), dtype=np.uint64)
        values, found = table.find(model_keys)
        assert bool(found.all())
        expected = np.fromiter((model[int(k)] for k in model_keys),
                               dtype=np.uint64)
        assert np.array_equal(values, expected)
        # The kernel FIND must agree with the vectorized FIND — through
        # both execution engines, with identical cost counters.
        kernel_values, kernel_found, warp_stats = run_find_kernel(
            table, model_keys)
        assert np.array_equal(kernel_found, found)
        assert np.array_equal(kernel_values, values)
        cohort_values, cohort_found, cohort_stats = run_find_kernel(
            table, model_keys, engine="cohort")
        assert np.array_equal(cohort_found, found)
        assert np.array_equal(cohort_values, values)
        assert cohort_stats == warp_stats


class TestIdenticalBatches:
    @pytest.mark.parametrize("insert_path", sorted(INSERT_PATHS))
    def test_fresh_batch(self, insert_path):
        keys = unique_keys(500, seed=10)
        values = keys * np.uint64(3)
        table = fresh_table()
        INSERT_PATHS[insert_path](table, keys, values)
        assert_conforms(table, {int(k): int(v)
                                for k, v in zip(keys, values)})

    @pytest.mark.parametrize("insert_path", sorted(INSERT_PATHS))
    def test_upsert_existing_batch(self, insert_path):
        """Reinserting every key with new values updates in place."""
        keys = unique_keys(400, seed=11)
        table = fresh_table()
        INSERT_PATHS[insert_path](table, keys, keys)
        INSERT_PATHS[insert_path](table, keys, keys + np.uint64(1))
        assert len(table) == 400
        assert_conforms(table, {int(k): int(k) + 1 for k in keys})

    @pytest.mark.parametrize("insert_path", sorted(INSERT_PATHS))
    @pytest.mark.parametrize("delete_path", sorted(DELETE_PATHS))
    def test_interleaved_sequence(self, insert_path, delete_path):
        """insert / delete / reinsert / delete, model-checked each step."""
        keys = unique_keys(600, seed=12)
        table = fresh_table()
        model: dict[int, int] = {}

        INSERT_PATHS[insert_path](table, keys, keys)
        model.update((int(k), int(k)) for k in keys)
        assert_conforms(table, model)

        removed = DELETE_PATHS[delete_path](table, keys[:300])
        assert bool(np.asarray(removed).all())
        for k in keys[:300]:
            del model[int(k)]
        assert_conforms(table, model)

        # Reinsert a mix of deleted and still-present keys.
        mix = np.concatenate([keys[100:300], keys[400:500]])
        INSERT_PATHS[insert_path](table, mix, mix + np.uint64(9))
        model.update((int(k), int(k) + 9) for k in mix)
        assert_conforms(table, model)

        removed = DELETE_PATHS[delete_path](table, keys[450:550])
        assert bool(np.asarray(removed).all())
        for k in keys[450:550]:
            del model[int(k)]
        assert_conforms(table, model)


class TestDeleteHoles:
    """Delete-then-reinsert: holes must never yield duplicate copies."""

    @pytest.mark.parametrize("insert_path", sorted(INSERT_PATHS))
    @pytest.mark.parametrize("delete_path", sorted(DELETE_PATHS))
    def test_reinsert_into_holey_buckets(self, insert_path, delete_path):
        """Punch holes everywhere, then reinsert every surviving key.

        A dense small-bucket geometry guarantees many buckets hold
        several keys, so deleting every other key leaves holes *below*
        surviving keys — the exact layout that used to trick the warp
        upsert into duplicating the survivor into the hole.
        """
        keys = unique_keys(300, seed=13)
        table = fresh_table(buckets=16, capacity=8)
        INSERT_PATHS[insert_path](table, keys, keys)

        DELETE_PATHS[delete_path](table, keys[::2])
        survivors = keys[1::2]
        INSERT_PATHS[insert_path](table, survivors,
                                  survivors + np.uint64(5))
        assert len(table) == len(survivors)
        assert_conforms(table, {int(k): int(k) + 5 for k in survivors})

    @pytest.mark.parametrize("insert_path", sorted(INSERT_PATHS))
    def test_hole_then_fresh_key_reuses_slot(self, insert_path):
        """New keys may land in holes; old keys must update in place."""
        keys = unique_keys(200, seed=14)
        fresh = unique_keys(100, seed=15) + np.uint64(1 << 50)
        table = fresh_table(buckets=16, capacity=8)
        INSERT_PATHS[insert_path](table, keys, keys)
        table.delete(keys[:100])
        INSERT_PATHS[insert_path](table, fresh, fresh)
        model = {int(k): int(k) for k in keys[100:]}
        model.update((int(k), int(k)) for k in fresh)
        assert_conforms(table, model)


class TestDuplicateKeys:
    def test_vectorized_duplicates_last_wins(self):
        keys = np.array([7, 7, 8, 7, 8], dtype=np.uint64)
        values = np.array([1, 2, 3, 4, 5], dtype=np.uint64)
        table = fresh_table()
        table.insert(keys, values)
        assert_conforms(table, {7: 4, 8: 5})

    @pytest.mark.parametrize(
        "insert_path", ["voter", "spin", "voter-cohort", "spin-cohort"])
    def test_kernel_duplicates_single_copy(self, insert_path):
        """The kernel path stores exactly one copy per duplicated key.

        Warp scheduling decides *which* duplicate's value survives, so
        the guarantee is weaker than the vectorized last-wins rule: one
        copy, value drawn from that key's candidates (docs/sharding.md
        spells out the contract).
        """
        base = unique_keys(90, seed=16)
        keys = np.concatenate([base, base[:40], base[:20]])
        values = np.concatenate([
            np.full(90, 1, dtype=np.uint64),
            np.full(40, 2, dtype=np.uint64),
            np.full(20, 3, dtype=np.uint64),
        ])
        table = fresh_table()
        INSERT_PATHS[insert_path](table, keys, values)
        table.validate()
        check_invariants(table)
        assert len(table) == 90
        stored = table.to_dict()
        assert set(stored) == {int(k) for k in base}
        candidates = {}
        for k, v in zip(keys.tolist(), values.tolist()):
            candidates.setdefault(k, set()).add(v)
        for k, v in stored.items():
            assert v in candidates[k]
