"""Tests for the Theorem-1 KV distribution policy."""

import numpy as np

from repro.core.distribution import (UniformRouter, WeightedRouter,
                                     make_router, theorem1_weights)


class TestTheorem1Weights:
    def test_weight_formula(self):
        sizes = np.array([100, 200])
        loads = np.array([10, 10])
        weights = theorem1_weights(sizes, loads)
        # n / C(m, 2) with m = 10 -> 45 pairwise terms.
        assert np.allclose(weights, [100 / 45, 200 / 45])

    def test_small_loads_clamped(self):
        weights = theorem1_weights(np.array([100, 100]), np.array([0, 1]))
        # Pairwise term floors at 1 so weights stay finite.
        assert np.allclose(weights, [100.0, 100.0])

    def test_bigger_table_gets_more_weight_at_equal_load(self):
        weights = theorem1_weights(np.array([100, 200]), np.array([50, 50]))
        assert weights[1] > weights[0]

    def test_fuller_table_gets_less_weight_at_equal_size(self):
        weights = theorem1_weights(np.array([100, 100]), np.array([80, 20]))
        assert weights[1] > weights[0]


class TestRouters:
    def _setup(self, n=20_000, seed=0):
        rng = np.random.default_rng(seed)
        codes = rng.integers(1, 1 << 62, n).astype(np.uint64)
        first = np.zeros(n, dtype=np.int64)
        second = np.ones(n, dtype=np.int64)
        return codes, first, second

    def test_weighted_prefers_emptier_table(self):
        codes, first, second = self._setup()
        router = WeightedRouter(seed=1)
        sizes = np.array([1000, 1000])
        loads = np.array([900, 100])  # table 0 nearly full
        targets = router.choose(codes, first, second, sizes, loads)
        share_to_empty = (targets == 1).mean()
        assert share_to_empty > 0.9

    def test_uniform_is_roughly_even(self):
        codes, first, second = self._setup(seed=2)
        router = UniformRouter(seed=1)
        sizes = np.array([1000, 1000])
        loads = np.array([900, 100])
        targets = router.choose(codes, first, second, sizes, loads)
        assert 0.45 < (targets == 1).mean() < 0.55

    def test_deterministic_per_key(self):
        """Duplicate keys must route identically (GPU race consistency)."""
        codes, first, second = self._setup(n=100, seed=3)
        router = WeightedRouter(seed=5)
        sizes = np.array([512, 512])
        loads = np.array([100, 120])
        once = router.choose(codes, first, second, sizes, loads)
        twice = router.choose(codes, first, second, sizes, loads)
        assert np.array_equal(once, twice)

    def test_targets_are_pair_members(self):
        codes, first, second = self._setup(n=500, seed=4)
        for router in (WeightedRouter(0), UniformRouter(0)):
            targets = router.choose(codes, first, second,
                                    np.array([64, 64]), np.array([0, 0]))
            assert bool(np.all((targets == first) | (targets == second)))

    def test_empty_input(self):
        empty_i = np.array([], dtype=np.int64)
        empty_c = np.array([], dtype=np.uint64)
        router = WeightedRouter(0)
        out = router.choose(empty_c, empty_i, empty_i,
                            np.array([64, 64]), np.array([0, 0]))
        assert len(out) == 0


def test_make_router():
    assert isinstance(make_router("weighted", 0), WeightedRouter)
    assert isinstance(make_router("uniform", 0), UniformRouter)
    try:
        make_router("bogus", 0)
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")
