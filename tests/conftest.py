"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable


def pytest_collection_modifyitems(config, items):
    """Keep ``soak``-marked tests out of tier-1 unless asked for.

    Full-scale scenario soaks run minutes of simulated traffic; they
    are opt-in via ``pytest -m soak`` (any ``-m`` expression naming
    the marker enables them) while their scaled-down twins stay in the
    default run.
    """
    if "soak" in (config.getoption("-m") or ""):
        return
    skip_soak = pytest.mark.skip(
        reason="soak scenarios are opt-in: run with -m soak")
    for item in items:
        if "soak" in item.keywords:
            item.add_marker(skip_soak)


@pytest.fixture
def small_config() -> DyCuckooConfig:
    """A small table configuration exercising resizes quickly."""
    return DyCuckooConfig(initial_buckets=16, bucket_capacity=8, min_buckets=8)

@pytest.fixture
def small_table(small_config) -> DyCuckooTable:
    return DyCuckooTable(small_config)


@pytest.fixture
def static_table() -> DyCuckooTable:
    """A table with automatic resizing disabled."""
    return DyCuckooTable(DyCuckooConfig(initial_buckets=64, bucket_capacity=8,
                                        auto_resize=False))


def unique_keys(n: int, seed: int = 0, low: int = 1,
                high: int = 1 << 62) -> np.ndarray:
    """``n`` distinct uint64 keys drawn reproducibly."""
    rng = np.random.default_rng(seed)
    drawn = np.unique(rng.integers(low, high, int(n * 1.2) + 16,
                                   dtype=np.int64).astype(np.uint64))
    while len(drawn) < n:
        more = rng.integers(low, high, n, dtype=np.int64).astype(np.uint64)
        drawn = np.unique(np.concatenate([drawn, more]))
    return drawn[:n]
