"""Unit tests for the universal hash family and the pair layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (MERSENNE_P, PairHash, UniversalHash,
                                fold_to_31_bits, make_table_hashes)
from repro.errors import InvalidConfigError


class TestFoldTo31Bits:
    def test_matches_python_modulo(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1 << 63, 1000, dtype=np.int64).astype(np.uint64)
        folded = fold_to_31_bits(values)
        expected = np.array([int(v) % int(MERSENNE_P) for v in values],
                            dtype=np.uint64)
        assert np.array_equal(folded, expected)

    def test_extreme_values(self):
        values = np.array([0, 1, int(MERSENNE_P) - 1, int(MERSENNE_P),
                           int(MERSENNE_P) + 1, 2 ** 64 - 1], dtype=np.uint64)
        folded = fold_to_31_bits(values)
        expected = np.array([int(v) % int(MERSENNE_P) for v in values],
                            dtype=np.uint64)
        assert np.array_equal(folded, expected)

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    @settings(max_examples=200)
    def test_always_below_p(self, value):
        folded = fold_to_31_bits(np.array([value], dtype=np.uint64))
        assert int(folded[0]) == value % int(MERSENNE_P)


class TestUniversalHash:
    def test_rejects_out_of_range_constants(self):
        with pytest.raises(InvalidConfigError):
            UniversalHash(a=0, b=0, premix=0)
        with pytest.raises(InvalidConfigError):
            UniversalHash(a=int(MERSENNE_P), b=0, premix=0)
        with pytest.raises(InvalidConfigError):
            UniversalHash(a=1, b=int(MERSENNE_P), premix=0)

    def test_raw_matches_definition(self):
        h = UniversalHash(a=12345, b=678, premix=0xDEADBEEF)
        keys = np.array([0, 1, 99999, 2 ** 40], dtype=np.uint64)
        raw = h.raw(keys)
        p = int(MERSENNE_P)
        for key, value in zip(keys, raw):
            folded = (int(key) ^ 0xDEADBEEF) % p
            assert int(value) == (12345 * folded + 678) % p

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        h = UniversalHash.random(rng)
        keys = np.arange(100, dtype=np.uint64)
        assert np.array_equal(h.raw(keys), h.raw(keys))

    def test_distinct_functions_disagree(self):
        rng = np.random.default_rng(7)
        h1, h2 = UniversalHash.random(rng), UniversalHash.random(rng)
        keys = np.arange(1000, dtype=np.uint64)
        assert not np.array_equal(h1.raw(keys), h2.raw(keys))

    def test_bucket_requires_power_of_two(self):
        h = UniversalHash(a=3, b=5, premix=1)
        with pytest.raises(InvalidConfigError):
            h.bucket(np.array([1], dtype=np.uint64), 100)

    def test_bucket_range(self):
        rng = np.random.default_rng(1)
        h = UniversalHash.random(rng)
        keys = rng.integers(0, 1 << 62, 5000).astype(np.uint64)
        buckets = h.bucket(keys, 256)
        assert buckets.min() >= 0
        assert buckets.max() < 256

    def test_bucket_doubling_property(self):
        """Entry in bucket loc moves to loc or loc + n when n doubles.

        This is the conflict-free upsize property of Section IV-D.
        """
        rng = np.random.default_rng(2)
        h = UniversalHash.random(rng)
        keys = rng.integers(0, 1 << 62, 10_000).astype(np.uint64)
        small = h.bucket(keys, 512)
        large = h.bucket(keys, 1024)
        assert bool(np.all((large == small) | (large == small + 512)))

    def test_distribution_roughly_uniform(self):
        rng = np.random.default_rng(3)
        h = UniversalHash.random(rng)
        keys = rng.integers(0, 1 << 62, 64_000).astype(np.uint64)
        buckets = h.bucket(keys, 64)
        counts = np.bincount(buckets, minlength=64)
        # Each bucket expects 1000; allow generous 5-sigma slack.
        assert counts.min() > 1000 - 5 * np.sqrt(1000)
        assert counts.max() < 1000 + 5 * np.sqrt(1000)


class TestPairHash:
    def test_pair_enumeration(self):
        rng = np.random.default_rng(0)
        ph = PairHash(4, rng)
        expected = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        assert [tuple(p) for p in ph.pairs] == expected
        assert ph.num_pairs == 6

    def test_rejects_single_table(self):
        with pytest.raises(InvalidConfigError):
            PairHash(1, np.random.default_rng(0))

    def test_partition_in_range(self):
        rng = np.random.default_rng(1)
        ph = PairHash(5, rng)
        codes = rng.integers(1, 1 << 62, 2000).astype(np.uint64)
        parts = ph.partition(codes)
        assert parts.min() >= 0
        assert parts.max() < 10

    def test_tables_for_are_pair_members(self):
        rng = np.random.default_rng(2)
        ph = PairHash(4, rng)
        codes = rng.integers(1, 1 << 62, 500).astype(np.uint64)
        first, second = ph.tables_for(codes)
        assert bool(np.all(first < second))
        assert first.min() >= 0
        assert second.max() < 4

    def test_alternate_table_roundtrip(self):
        rng = np.random.default_rng(3)
        ph = PairHash(4, rng)
        codes = rng.integers(1, 1 << 62, 500).astype(np.uint64)
        first, second = ph.tables_for(codes)
        assert np.array_equal(ph.alternate_table(codes, first), second)
        assert np.array_equal(ph.alternate_table(codes, second), first)

    def test_alternate_table_rejects_foreign_table(self):
        rng = np.random.default_rng(4)
        ph = PairHash(3, rng)
        codes = np.array([123], dtype=np.uint64)
        first, second = ph.tables_for(codes)
        foreign = np.array([3 - int(first[0]) - int(second[0])], dtype=np.int64)
        with pytest.raises(AssertionError):
            ph.alternate_table(codes, foreign)

    def test_partitions_roughly_balanced(self):
        rng = np.random.default_rng(5)
        ph = PairHash(4, rng)
        codes = rng.integers(1, 1 << 62, 60_000).astype(np.uint64)
        counts = np.bincount(ph.partition(codes), minlength=6)
        assert counts.min() > 10_000 - 5 * np.sqrt(10_000)
        assert counts.max() < 10_000 + 5 * np.sqrt(10_000)


def test_make_table_hashes_distinct():
    hashes = make_table_hashes(4, np.random.default_rng(0))
    assert len(hashes) == 4
    keys = np.arange(1000, dtype=np.uint64)
    raws = [h.raw(keys) for h in hashes]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.array_equal(raws[i], raws[j])
