"""Tests for DyCuckooConfig validation and the Table-3 parameter grid."""

import pytest

from repro.core.config import (DEFAULT_BUCKET_CAPACITY, DEFAULT_NUM_TABLES,
                               PAPER_PARAMETERS, DyCuckooConfig,
                               replace_config)
from repro.errors import InvalidConfigError


class TestDefaults:
    def test_paper_defaults(self):
        config = DyCuckooConfig()
        assert config.num_tables == DEFAULT_NUM_TABLES == 4
        assert config.bucket_capacity == DEFAULT_BUCKET_CAPACITY == 32
        assert config.alpha == PAPER_PARAMETERS["alpha"]["default"] == 0.30
        assert config.beta == PAPER_PARAMETERS["beta"]["default"] == 0.85

    def test_table3_grid_complete(self):
        """The parameter grid matches Table 3 of the paper."""
        assert PAPER_PARAMETERS["filled_factor"]["settings"] == (
            0.70, 0.75, 0.80, 0.85, 0.90)
        assert PAPER_PARAMETERS["alpha"]["settings"] == (
            0.20, 0.25, 0.30, 0.35, 0.40)
        assert PAPER_PARAMETERS["beta"]["settings"] == (
            0.70, 0.75, 0.80, 0.85, 0.90)
        assert PAPER_PARAMETERS["ratio_r"]["settings"] == (
            0.1, 0.2, 0.3, 0.4, 0.5)
        assert PAPER_PARAMETERS["batch_size"]["default"] == 1_000_000

    def test_num_pairs(self):
        assert DyCuckooConfig(num_tables=2).num_pairs == 1
        assert DyCuckooConfig(num_tables=3).num_pairs == 3
        assert DyCuckooConfig(num_tables=4).num_pairs == 6
        assert DyCuckooConfig(num_tables=6).num_pairs == 15


class TestValidation:
    def test_rejects_single_table(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig(num_tables=1)

    def test_rejects_non_power_of_two_buckets(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig(initial_buckets=100)

    def test_rejects_zero_capacity(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig(bucket_capacity=0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig(alpha=0.9, beta=0.5)

    def test_rejects_alpha_at_or_above_d_over_d_plus_one(self):
        # Section IV-B: alpha must stay below d/(d+1).
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig(num_tables=2, alpha=0.67, beta=0.9)
        # And the same alpha is fine with more tables.
        DyCuckooConfig(num_tables=4, alpha=0.67, beta=0.9)

    def test_rejects_initial_below_min(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig(initial_buckets=8, min_buckets=16)

    def test_rejects_bad_routing(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig(routing="random")

    def test_rejects_zero_eviction_rounds(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig(max_eviction_rounds=0)


class TestSizedFor:
    def test_capacity_covers_entries(self):
        config = DyCuckooConfig().sized_for(1_000_000)
        slots = config.num_tables * config.initial_buckets * config.bucket_capacity
        # Sized near the [alpha, beta] midpoint, never overfull.
        assert slots >= 1_000_000

    def test_respects_target_fill(self):
        config = DyCuckooConfig().sized_for(100_000, target_fill=0.5)
        slots = config.num_tables * config.initial_buckets * config.bucket_capacity
        assert slots >= 200_000 / 2  # at least roughly sized
        assert 100_000 / slots <= 0.55

    def test_rejects_negative_entries(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig().sized_for(-1)

    def test_rejects_bad_fill(self):
        with pytest.raises(InvalidConfigError):
            DyCuckooConfig().sized_for(100, target_fill=0.0)


def test_replace_config_revalidates():
    config = DyCuckooConfig()
    bigger = replace_config(config, initial_buckets=256)
    assert bigger.initial_buckets == 256
    assert bigger.num_tables == config.num_tables
    with pytest.raises(InvalidConfigError):
        replace_config(config, initial_buckets=100)
