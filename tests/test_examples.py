"""Smoke tests: the shipped examples run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Fast examples run in CI; the streaming example is minutes-long and
#: exercised manually (its machinery is covered by unit tests).
FAST_EXAMPLES = ("quickstart.py", "hash_join.py", "memory_budget.py",
                 "multi_tenant_gpu.py")


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_output_content():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=240)
    assert "validate(): all invariants hold" in result.stdout
    assert "downsizes" in result.stdout


def test_memory_budget_shapes():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "memory_budget.py")],
        capture_output=True, text=True, timeout=240)
    assert "DyCuckoo" in result.stdout
    assert "saved" in result.stdout


def test_multi_tenant_story():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "multi_tenant_gpu.py")],
        capture_output=True, text=True, timeout=240)
    # The static deployment spills; the dynamic one should not.
    assert "spilled" in result.stdout
