"""Smoke tests: the shipped examples run cleanly end to end."""

import os
import sys
from pathlib import Path

import pytest

from benchmarks.common import clean_stderr, run_quiet

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Fast examples run in CI; the streaming example is minutes-long and
#: exercised manually (its machinery is covered by unit tests).
FAST_EXAMPLES = ("quickstart.py", "hash_join.py", "memory_budget.py",
                 "multi_tenant_gpu.py")


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = run_quiet([sys.executable, str(EXAMPLES_DIR / script)],
                       timeout=240)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_output_content():
    result = run_quiet([sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
                       timeout=240)
    assert "validate(): all invariants hold" in result.stdout
    assert "downsizes" in result.stdout


def test_memory_budget_shapes():
    result = run_quiet(
        [sys.executable, str(EXAMPLES_DIR / "memory_budget.py")],
        timeout=240)
    assert "DyCuckoo" in result.stdout
    assert "saved" in result.stdout
    # The default run is seeded (REPRO_SEED unset -> seed 3) and the
    # eviction-policy demo must hold the budget.
    assert "seed 3" in result.stdout
    assert "budget respected: yes" in result.stdout


def test_memory_budget_honors_repro_seed():
    """Same REPRO_SEED, same bytes on stdout — the example is fully
    reproducible, so its output can be asserted on."""
    env = {**os.environ, "REPRO_SEED": "11"}
    cmd = [sys.executable, str(EXAMPLES_DIR / "memory_budget.py")]
    first = run_quiet(cmd, timeout=240, env=env)
    second = run_quiet(cmd, timeout=240, env=env)
    assert first.returncode == 0, first.stderr
    assert "seed 11" in first.stdout
    assert first.stdout == second.stdout


def test_multi_tenant_story():
    result = run_quiet(
        [sys.executable, str(EXAMPLES_DIR / "multi_tenant_gpu.py")],
        timeout=240)
    # The static deployment spills; the dynamic one should not.
    assert "spilled" in result.stdout


class TestStderrFilter:
    def test_drops_conda_noise_keeps_real_errors(self):
        noisy = ("/root/.condarc: parse error\n"
                 "Traceback (most recent call last):\n"
                 "CondaError: something\n"
                 "ValueError: real failure\n")
        cleaned = clean_stderr(noisy)
        assert "condarc" not in cleaned
        assert "CondaError" not in cleaned
        assert "Traceback" in cleaned
        assert "ValueError: real failure" in cleaned

    def test_empty_passthrough(self):
        assert clean_stderr("") == ""
