"""Static protocol-contract analyzer (the sanitizer's sixth pass).

The dynamic passes only see code that executes; ``contracts.check_source``
proves the lock-release, kernel-bracket, and guarded-write obligations
on *all* paths of the AST.  Coverage here:

* each seeded bad source in ``BAD_CONTRACT_SOURCES`` trips exactly its
  rule, and the repaired variants are clean;
* the exception-safety idioms the real kernels use (release in
  ``finally``, release in an unwind method, except+straight-line
  ``end_kernel`` pairing) are recognized as safe;
* scope classification and the ``# sanitize: allow(...)`` suppression
  audit trail;
* the real source tree is contract-clean, pinned in CI via
  ``repro sanitize --contracts``.
"""

import pytest

from repro.sanitizer.contracts import (RULES, check_paths, check_source,
                                       contract_scope_paths,
                                       in_contract_scope, in_write_scope)
from repro.sanitizer.fixtures import BAD_CONTRACT_SOURCES


class TestSeededBadSources:
    @pytest.mark.parametrize("rule", sorted(BAD_CONTRACT_SOURCES))
    def test_bad_source_trips_exactly_its_rule(self, rule):
        findings = check_source(BAD_CONTRACT_SOURCES[rule],
                                path=f"<fixture:{rule}>")
        assert {f.rule for f in findings} == {rule}
        for f in findings:
            assert f.line > 0
            assert f.message

    def test_rules_and_fixtures_cover_each_other(self):
        assert set(BAD_CONTRACT_SOURCES) == set(RULES)


class TestUnreleasedLockPath:
    def test_release_in_finally_is_safe(self):
        source = (
            "class CarefulWarp:\n"
            "    def step(self):\n"
            "        if not self.arbiter.try_acquire(self.lock_id):\n"
            "            return\n"
            "        try:\n"
            "            self.write_slot()\n"
            "        finally:\n"
            "            self.arbiter.release(self.lock_id)\n")
        assert check_source(source, path="<t>") == []

    def test_release_in_unwind_method_is_safe(self):
        source = (
            "class UnwindingWarp:\n"
            "    def step(self):\n"
            "        self.arbiter.try_acquire(self.lock_id)\n"
            "    def unwind_locks(self):\n"
            "        self.arbiter.release(self.lock_id)\n")
        assert check_source(source, path="<t>") == []

    def test_arbiter_classes_are_exempt(self):
        source = (
            "class LockArbiter:\n"
            "    def try_acquire(self, lock_id, warp):\n"
            "        return self._cas(lock_id, warp)\n"
            "    def release(self, lock_id, warp):\n"
            "        self._clear(lock_id)\n")
        assert check_source(source, path="<t>") == []

    def test_module_level_function_checked_alone(self):
        source = (
            "def grab(arbiter, lock_id):\n"
            "    arbiter.try_acquire(lock_id)\n"
            "    arbiter.release(lock_id)\n")
        [f] = check_source(source, path="<t>")
        assert f.rule == "unreleased-lock-path"

    def test_subtable_lock_needs_finally_unlock(self):
        leaky = (
            "def resize(san, target):\n"
            "    san.on_subtable_lock(target, 'upsize')\n"
            "    migrate()\n"
            "    san.on_subtable_unlock(target)\n")
        [f] = check_source(leaky, path="<t>")
        assert f.rule == "unreleased-lock-path"
        assert "subtable" in f.message
        safe = (
            "def resize(san, target):\n"
            "    san.on_subtable_lock(target, 'upsize')\n"
            "    try:\n"
            "        migrate()\n"
            "    finally:\n"
            "        san.on_subtable_unlock(target)\n")
        assert check_source(safe, path="<t>") == []


class TestKernelBrackets:
    def test_end_in_finally_is_safe(self):
        source = (
            "def run(table, san):\n"
            "    san.begin_kernel('k')\n"
            "    try:\n"
            "        rounds(table)\n"
            "    finally:\n"
            "        san.end_kernel()\n")
        assert check_source(source, path="<t>") == []

    def test_except_plus_straight_line_pairing_is_safe(self):
        source = (
            "def run(table, san):\n"
            "    san.begin_kernel('k')\n"
            "    try:\n"
            "        rounds(table)\n"
            "    except Exception:\n"
            "        san.end_kernel()\n"
            "        raise\n"
            "    san.end_kernel()\n")
        assert check_source(source, path="<t>") == []

    def test_missing_end_is_flagged(self):
        source = (
            "def run(table, san):\n"
            "    san.begin_kernel('k')\n"
            "    rounds(table)\n")
        [f] = check_source(source, path="<t>")
        assert f.rule == "unpaired-kernel-bracket"
        assert "no end_kernel()" in f.message

    def test_receivers_do_not_cross_pair(self):
        source = (
            "def run(a, b):\n"
            "    a.begin_kernel('k')\n"
            "    try:\n"
            "        pass\n"
            "    finally:\n"
            "        b.end_kernel()\n")
        [f] = check_source(source, path="<t>")
        assert f.rule == "unpaired-kernel-bracket"


class TestStructuralWrites:
    def test_guarded_write_is_clean(self):
        source = (
            "def commit(st, san, bucket, slot, key):\n"
            "    san.record_access(0, 'write', 'bucket', bucket)\n"
            "    st.keys[bucket, slot] = key\n")
        assert check_source(source, path="<t>") == []

    def test_self_keys_lane_registers_exempt(self):
        source = (
            "class Warp:\n"
            "    def load(self, lane, key):\n"
            "        self.keys[lane] = key\n")
        assert check_source(source, path="<t>") == []

    def test_rule_scoped_out_of_resize_copy_over(self):
        source = (
            "def copy_over(st, rows):\n"
            "    st.keys[rows:, :] = 0\n")
        assert check_source(source, path="src/repro/core/resize.py") == []
        [f] = check_source(source, path="src/repro/kernels/insert.py")
        assert f.rule == "unguarded-structural-write"

    def test_suppression_marker_is_the_audit_trail(self):
        source = (
            "def copy(st, rows):\n"
            "    st.keys[rows, :] = 0"
            "  # sanitize: allow(unguarded-structural-write)\n")
        assert check_source(source, path="<t>") == []


class TestScopeAndRealTree:
    def test_scope_classification(self):
        assert in_contract_scope("src/repro/kernels/insert.py")
        assert in_contract_scope("src/repro/gpusim/cohort.py")
        assert in_contract_scope("src/repro/core/resize.py")
        assert not in_contract_scope("src/repro/core/table.py")
        assert not in_contract_scope("src/repro/cli.py")
        assert in_write_scope("src/repro/kernels/insert.py")
        assert not in_write_scope("src/repro/core/resize.py")

    def test_scope_covers_kernels_engines_and_resize(self):
        paths = contract_scope_paths()
        assert paths
        tails = {p.replace("\\", "/").rsplit("repro/", 1)[-1]
                 for p in paths}
        assert "core/resize.py" in tails
        assert any(t.startswith("kernels/") for t in tails)
        assert any(t.startswith("gpusim/") for t in tails)

    def test_real_tree_is_contract_clean(self):
        findings = check_paths()
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_syntax_error_becomes_parse_error(self):
        [f] = check_source("def broken(:\n", path="<t>")
        assert f.rule == "parse-error"

    def test_cli_contracts_selector(self, capsys):
        from repro.cli import main
        assert main(["sanitize", "--contracts"]) == 0
        assert "protocol contracts" in capsys.readouterr().out
