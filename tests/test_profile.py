"""Tests for the kernel profiling reports."""

import pytest

from repro.core.config import DyCuckooConfig
from repro.core.table import DyCuckooTable
from repro.gpusim import profile_batch, profile_operation

from .conftest import unique_keys


class TestProfileBatch:
    def test_find_profile_is_clean(self):
        """Read-only FIND: full warp efficiency, zero atomics."""
        profile = profile_batch("find", {"bucket_reads": 1500,
                                         "finds": 1000}, 1000)
        assert profile.warp_efficiency == 1.0
        assert profile.atomics_per_op == 0.0
        assert profile.transactions_per_op == 1.5
        assert profile.simulated_seconds > 0

    def test_contended_insert_lowers_efficiency(self):
        clean = profile_batch("insert", {
            "bucket_reads": 1000, "lock_acquisitions": 1000,
            "eviction_rounds": 1}, 1000)
        messy = profile_batch("insert", {
            "bucket_reads": 3000, "lock_acquisitions": 1000,
            "lock_conflicts": 2000, "evictions": 1000,
            "eviction_rounds": 20}, 1000)
        assert messy.warp_efficiency < clean.warp_efficiency
        assert messy.atomic_conflict_rate == pytest.approx(2.0)  # 2000/1000

    def test_memory_utilization_bounded(self):
        profile = profile_batch("x", {"bucket_reads": 10 ** 9}, 10 ** 6)
        assert 0.0 <= profile.memory_utilization <= 1.0

    def test_str_contains_essentials(self):
        profile = profile_batch("demo", {"bucket_reads": 10}, 10)
        text = str(profile)
        assert "demo" in text
        assert "warp eff" in text
        assert "tx/op" in text

    def test_zero_ops(self):
        profile = profile_batch("empty", {}, 0)
        assert profile.transactions_per_op == 0.0
        assert profile.atomics_per_op == 0.0


class TestProfileOperation:
    def test_profiles_real_table_calls(self):
        table = DyCuckooTable(DyCuckooConfig(initial_buckets=16,
                                             bucket_capacity=8))
        keys = unique_keys(2000, seed=1)
        insert_profile = profile_operation(table, "insert", table.insert,
                                           keys, keys)
        find_profile = profile_operation(table, "find", table.find, keys)
        assert insert_profile.num_ops == 2000
        assert find_profile.num_ops == 2000
        # FIND touches at most 2 buckets/op; insert does strictly more
        # work per op.
        assert find_profile.transactions_per_op <= 2.0
        assert (insert_profile.transactions_per_op
                > find_profile.transactions_per_op)
        assert find_profile.warp_efficiency >= insert_profile.warp_efficiency
